//! Athread fine-grained redesign of the Table-1 kernels (paper Sections
//! 7.3–7.5), running on the simulated SW26010 CPE cluster.
//!
//! The decomposition is the paper's Figure 2: a batch of 8 elements is
//! processed per sweep, one element per CPE *column*; the `nlev` layers are
//! split into 8 groups of `nlev/8`, one group per CPE *row*. Column scans
//! (pressure, geopotential, omega) become the three-stage
//! register-communication scan: local accumulation, partial-sum exchange
//! along the CPE column, global fix-up. The vertical remap gathers full
//! columns with the shuffle + register-communication transposition of
//! Section 7.5 (XOR-pairing phases). Tracer advection is Algorithm 2:
//! q-invariant arrays are DMA'd **once per element** and reused across the
//! tracer loop.
//!
//! Every variant computes the same answer as the reference kernels; the
//! simulator meanwhile accounts DMA traffic, register messages, shuffles
//! and (annotated) vector flops.

use super::{op_count, KernelData, KernelId};
use crate::euler::tracer_flux_divergence;
use crate::remap::remap_column_ppm;
use cubesphere::NPTS;
use sw26010::{CpeCluster, CpeCtx, KernelReport, SharedSlice, SharedSliceMut, V4F64, CPE_ROWS};

/// Send `vals` (length divisible by 4) to `target_row` along this CPE's
/// column, as 256-bit register messages.
fn send_col_values(ctx: &mut CpeCtx<'_>, target_row: usize, vals: &[f64]) {
    debug_assert_eq!(vals.len() % 4, 0);
    for c in vals.chunks_exact(4) {
        ctx.reg_send_col(target_row, V4F64::load(c));
    }
}

/// Receive `out.len()` values (divisible by 4) from `source_row`.
fn recv_col_values(ctx: &mut CpeCtx<'_>, source_row: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len() % 4, 0);
    for c in out.chunks_exact_mut(4) {
        ctx.reg_recv_col(source_row).store(c);
    }
}

/// The three-stage inclusive-prefix scan of the paper's Section 7.4,
/// specialised to "each row holds the partial sums of its level group".
///
/// Input: `local_total[p]` = this row's group total per GLL point.
/// Output: `prefix[p]` = sum of all *earlier* rows' group totals
/// (exclusive prefix), obtained by the blocking chain
/// `row 0 -> row 1 -> ... -> row 7`.
pub fn chain_exclusive_prefix(ctx: &mut CpeCtx<'_>, local_total: &[f64; NPTS]) -> [f64; NPTS] {
    let row = ctx.row();
    let mut prefix = [0.0; NPTS];
    if row > 0 {
        recv_col_values(ctx, row - 1, &mut prefix);
    }
    if row < CPE_ROWS - 1 {
        let mut fwd = [0.0; NPTS];
        for p in 0..NPTS {
            fwd[p] = prefix[p] + local_total[p];
        }
        ctx.charge_vflops(NPTS as u64);
        send_col_values(ctx, row + 1, &fwd);
    }
    prefix
}

/// Reverse chain: exclusive suffix from below (`row 7 -> row 0`).
pub fn chain_exclusive_suffix(ctx: &mut CpeCtx<'_>, local_total: &[f64; NPTS]) -> [f64; NPTS] {
    let row = ctx.row();
    let mut suffix = [0.0; NPTS];
    if row < CPE_ROWS - 1 {
        recv_col_values(ctx, row + 1, &mut suffix);
    }
    if row > 0 {
        let mut fwd = [0.0; NPTS];
        for p in 0..NPTS {
            fwd[p] = suffix[p] + local_total[p];
        }
        ctx.charge_vflops(NPTS as u64);
        send_col_values(ctx, row - 1, &fwd);
    }
    suffix
}

/// `compute_and_apply_rhs`, Athread variant.
///
/// Requires `nlev % 8 == 0`. Returns the cluster launch report.
pub fn compute_and_apply_rhs(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    assert_eq!(data.nlev % CPE_ROWS, 0, "athread RHS needs nlev divisible by 8");
    let nlev = data.nlev;
    let lpc = nlev / CPE_ROWS; // levels per CPE
    let nelem = data.nelem;
    let ops = &data.ops;
    let ptop = data.ptop;
    let counts = op_count(KernelId::ComputeAndApplyRhs, data);
    let flops_per_cpe = counts.flops / 64;

    let u = SharedSlice::new(&data.u);
    let v = SharedSlice::new(&data.v);
    let t = SharedSlice::new(&data.t);
    let dp = SharedSlice::new(&data.dp3d);
    let phis = SharedSlice::new(&data.phis);
    let tu = SharedSliceMut::new(&mut data.tend_u);
    let tv = SharedSliceMut::new(&mut data.tend_v);
    let tt = SharedSliceMut::new(&mut data.tend_t);
    let tdp = SharedSliceMut::new(&mut data.tend_dp);

    cluster.run(|ctx| {
        let row = ctx.row();
        let col = ctx.col();
        let k0 = row * lpc;
        let tile = lpc * NPTS;
        // LDM working set: 4 input tiles + 4 output tiles + column scratch.
        let mut buf_u = ctx.ldm_alloc(tile).expect("LDM");
        let mut buf_v = ctx.ldm_alloc(tile).expect("LDM");
        let mut buf_t = ctx.ldm_alloc(tile).expect("LDM");
        let mut buf_dp = ctx.ldm_alloc(tile).expect("LDM");
        let mut buf_phis = ctx.ldm_alloc(NPTS).expect("LDM");
        let mut out_u = ctx.ldm_alloc(tile).expect("LDM");
        let mut out_v = ctx.ldm_alloc(tile).expect("LDM");
        let mut out_t = ctx.ldm_alloc(tile).expect("LDM");
        let mut out_dp = ctx.ldm_alloc(tile).expect("LDM");

        let mut e = col;
        while e < nelem {
            let base = (e * nlev + k0) * NPTS;
            ctx.dma_get(u, base..base + tile, &mut buf_u);
            ctx.dma_get(v, base..base + tile, &mut buf_v);
            ctx.dma_get(t, base..base + tile, &mut buf_t);
            ctx.dma_get(dp, base..base + tile, &mut buf_dp);
            ctx.dma_get(phis, e * NPTS..(e + 1) * NPTS, &mut buf_phis);

            // ---- Stage 1 + 2 + 3: pressure scan over the CPE column -----
            let mut dp_total = [0.0; NPTS];
            for k in 0..lpc {
                for p in 0..NPTS {
                    dp_total[p] += buf_dp[k * NPTS + p];
                }
            }
            let dp_prefix = chain_exclusive_prefix(ctx, &dp_total);
            // Local p_int / p_mid for this group.
            let mut p_int = vec![0.0; (lpc + 1) * NPTS];
            let mut p_mid = vec![0.0; lpc * NPTS];
            for p in 0..NPTS {
                p_int[p] = ptop + dp_prefix[p];
            }
            for k in 0..lpc {
                for p in 0..NPTS {
                    let d = buf_dp[k * NPTS + p];
                    p_int[(k + 1) * NPTS + p] = p_int[k * NPTS + p] + d;
                    p_mid[k * NPTS + p] = p_int[k * NPTS + p] + 0.5 * d;
                }
            }

            // ---- geopotential: reverse chain -----------------------------
            let mut phi_local = [0.0; NPTS]; // group total of Rd T ln ratios
            for k in 0..lpc {
                for p in 0..NPTS {
                    phi_local[p] += cubesphere::RD
                        * buf_t[k * NPTS + p]
                        * (p_int[(k + 1) * NPTS + p] / p_int[k * NPTS + p]).ln();
                }
            }
            let phi_suffix = chain_exclusive_suffix(ctx, &phi_local);
            // phi at the bottom interface of this group.
            let mut phi_below = [0.0; NPTS];
            for p in 0..NPTS {
                phi_below[p] = buf_phis[p] + phi_suffix[p];
            }
            let mut phi_mid = vec![0.0; lpc * NPTS];
            for k in (0..lpc).rev() {
                for p in 0..NPTS {
                    let i = k * NPTS + p;
                    phi_mid[i] = phi_below[p]
                        + cubesphere::RD * buf_t[i] * (p_int[(k + 1) * NPTS + p] / p_mid[i]).ln();
                    phi_below[p] +=
                        cubesphere::RD * buf_t[i] * (p_int[(k + 1) * NPTS + p] / p_int[i]).ln();
                }
            }

            // ---- horizontal terms (element-local, per level) -------------
            let op = &ops[e];
            let mut divdp = vec![0.0; lpc * NPTS];
            let mut vgrad_p = vec![0.0; lpc * NPTS];
            for k in 0..lpc {
                let r = k * NPTS..(k + 1) * NPTS;
                let mut udp = [0.0; NPTS];
                let mut vdp = [0.0; NPTS];
                for p in 0..NPTS {
                    udp[p] = buf_u[k * NPTS + p] * buf_dp[k * NPTS + p];
                    vdp[p] = buf_v[k * NPTS + p] * buf_dp[k * NPTS + p];
                }
                let mut div = [0.0; NPTS];
                op.divergence_sphere(&udp, &vdp, &mut div);
                divdp[r.clone()].copy_from_slice(&div);
                let mut gpx = [0.0; NPTS];
                let mut gpy = [0.0; NPTS];
                op.gradient_sphere(&p_mid[r.clone()], &mut gpx, &mut gpy);
                for p in 0..NPTS {
                    vgrad_p[k * NPTS + p] =
                        buf_u[k * NPTS + p] * gpx[p] + buf_v[k * NPTS + p] * gpy[p];
                }
            }

            // ---- omega scan ----------------------------------------------
            let mut div_total = [0.0; NPTS];
            for k in 0..lpc {
                for p in 0..NPTS {
                    div_total[p] += divdp[k * NPTS + p];
                }
            }
            let div_prefix = chain_exclusive_prefix(ctx, &div_total);
            let mut omega_p = vec![0.0; lpc * NPTS];
            let mut acc = div_prefix;
            for k in 0..lpc {
                for p in 0..NPTS {
                    let i = k * NPTS + p;
                    omega_p[i] = (vgrad_p[i] - acc[p] - 0.5 * divdp[i]) / p_mid[i];
                    acc[p] += divdp[i];
                }
            }

            // ---- tendencies ----------------------------------------------
            let kappa = cubesphere::KAPPA;
            for k in 0..lpc {
                let r = k * NPTS..(k + 1) * NPTS;
                let uu = &buf_u[r.clone()];
                let vv = &buf_v[r.clone()];
                let tt_ = &buf_t[r.clone()];
                let mut vort = [0.0; NPTS];
                op.vorticity_sphere(uu, vv, &mut vort);
                let mut energy = [0.0; NPTS];
                for p in 0..NPTS {
                    energy[p] = phi_mid[k * NPTS + p] + 0.5 * (uu[p] * uu[p] + vv[p] * vv[p]);
                }
                let mut gex = [0.0; NPTS];
                let mut gey = [0.0; NPTS];
                op.gradient_sphere(&energy, &mut gex, &mut gey);
                let mut gpx = [0.0; NPTS];
                let mut gpy = [0.0; NPTS];
                op.gradient_sphere(&p_mid[r.clone()], &mut gpx, &mut gpy);
                let mut gtx = [0.0; NPTS];
                let mut gty = [0.0; NPTS];
                op.gradient_sphere(tt_, &mut gtx, &mut gty);
                for p in 0..NPTS {
                    let i = k * NPTS + p;
                    let abs_vort = op.fcor[p] + vort[p];
                    let rtp = cubesphere::RD * tt_[p] / p_mid[i];
                    out_u[i] = abs_vort * vv[p] - gex[p] - rtp * gpx[p];
                    out_v[i] = -abs_vort * uu[p] - gey[p] - rtp * gpy[p];
                    out_t[i] = -(uu[p] * gtx[p] + vv[p] * gty[p]) + kappa * tt_[p] * omega_p[i];
                    out_dp[i] = -divdp[i];
                }
            }
            ctx.charge_vflops(flops_per_cpe / (nelem as u64 / 8).max(1));

            ctx.dma_put(&tu, base, &out_u);
            ctx.dma_put(&tv, base, &out_v);
            ctx.dma_put(&tt, base, &out_t);
            ctx.dma_put(&tdp, base, &out_dp);
            e += 8;
        }
    })
}

/// `euler_step`, Athread variant — the paper's Algorithm 2: q-invariant
/// arrays (`u`, `v`, `dp`) DMA'd once per element and kept in LDM across
/// the tracer loop; `qdp` streamed per tracer.
pub fn euler_step(cluster: &CpeCluster, data: &mut KernelData, dt: f64) -> KernelReport {
    assert_eq!(data.nlev % CPE_ROWS, 0, "athread euler_step needs nlev divisible by 8");
    let nlev = data.nlev;
    let lpc = nlev / CPE_ROWS;
    let nelem = data.nelem;
    let qsize = data.qsize;
    let ops = &data.ops;
    let counts = op_count(KernelId::EulerStep, data);
    let sweeps = (nelem as u64).div_ceil(8);

    let u = SharedSlice::new(&data.u);
    let v = SharedSlice::new(&data.v);
    let dp = SharedSlice::new(&data.dp3d);
    let qdp = SharedSlice::new(&data.qdp);
    let out = SharedSliceMut::new(&mut data.out_a);

    cluster.run(|ctx| {
        let row = ctx.row();
        let col = ctx.col();
        let k0 = row * lpc;
        let tile = lpc * NPTS;
        let mut buf_u = ctx.ldm_alloc(tile).expect("LDM");
        let mut buf_v = ctx.ldm_alloc(tile).expect("LDM");
        let mut buf_dp = ctx.ldm_alloc(tile).expect("LDM");
        let mut buf_q = ctx.ldm_alloc(tile).expect("LDM");
        let mut buf_o = ctx.ldm_alloc(tile).expect("LDM");

        let mut e = col;
        while e < nelem {
            let base = (e * nlev + k0) * NPTS;
            // DMA the q-invariant arrays ONCE (the Algorithm 2 reuse).
            ctx.dma_get(u, base..base + tile, &mut buf_u);
            ctx.dma_get(v, base..base + tile, &mut buf_v);
            ctx.dma_get(dp, base..base + tile, &mut buf_dp);
            // The remaining q-invariant inputs of the real euler_step
            // (derived vn0/vstar, divdp, dpdiss, Qtens work arrays — eight
            // tiles — plus the per-element metric constants), loaded once
            // per element like u/v/dp.
            ctx.charge_dma_traffic(8 * tile * 8, true);
            ctx.charge_dma_traffic(5 * NPTS * 8, true);
            let op = &ops[e];
            for q in 0..qsize {
                let qbase = ((e * qsize + q) * nlev + k0) * NPTS;
                ctx.dma_get(qdp, qbase..qbase + tile, &mut buf_q);
                for k in 0..lpc {
                    let r = k * NPTS..(k + 1) * NPTS;
                    let mut tend = [0.0; NPTS];
                    tracer_flux_divergence(
                        op,
                        &buf_u[r.clone()],
                        &buf_v[r.clone()],
                        &buf_dp[r.clone()],
                        &buf_q[r.clone()],
                        &mut tend,
                    );
                    for p in 0..NPTS {
                        buf_o[k * NPTS + p] = buf_q[k * NPTS + p] + dt * tend[p];
                    }
                }
                // 28 flops/pt (op_count formula), vectorized.
                ctx.charge_vflops(28 * tile as u64);
                ctx.dma_put(&out, qbase, &buf_o);
            }
            e += 8;
        }
        let _ = (counts, sweeps);
    })
}

/// `vertical_remap`, Athread variant, with the Section 7.5 transposition:
/// level-major tiles are turned into full point-columns by 4x4 register
/// shuffles plus XOR-paired register-communication phases along each CPE
/// column; PPM runs on whole columns; results transpose back.
///
/// Requires `nlev % 32 == 0` (so each row's tile is a multiple of 4 levels)
/// — use `nlev = 32` in tests, 128 in benches (the paper's configuration).
pub fn vertical_remap(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    assert_eq!(data.nlev % 32, 0, "athread remap needs nlev divisible by 32");
    let nlev = data.nlev;
    let lpc = nlev / CPE_ROWS; // levels per CPE row (multiple of 4)
    let nelem = data.nelem;
    let qsize = data.qsize;
    let counts = op_count(KernelId::VerticalRemap, data);
    let flops_per_cpe = counts.flops / 64;

    let u = SharedSlice::new(&data.u);
    let v = SharedSlice::new(&data.v);
    let t = SharedSlice::new(&data.t);
    let dp = SharedSlice::new(&data.dp3d);
    let qdp = SharedSlice::new(&data.qdp);
    let tu = SharedSliceMut::new(&mut data.tend_u);
    let tv = SharedSliceMut::new(&mut data.tend_v);
    let tt = SharedSliceMut::new(&mut data.tend_t);
    let tdp = SharedSliceMut::new(&mut data.tend_dp);
    let out_q = SharedSliceMut::new(&mut data.out_a);

    // Fields to remap: u, v, t, dp, then qsize tracers (as mixing ratios).
    let nfields = 4 + qsize;

    cluster.run(|ctx| {
        let row = ctx.row();
        let col = ctx.col();
        let k0 = row * lpc;
        let tile = lpc * NPTS;
        // This CPE ends up owning point-columns [2*row, 2*row + 2).
        let my_p0 = 2 * row;

        let mut buf_in = ctx.ldm_alloc(tile).expect("LDM"); // level-major tile
        let mut buf_tr = ctx.ldm_alloc(tile).expect("LDM"); // point-major tile
        // Column workspace: 2 point-columns x nlev per field + dp columns.
        let mut col_dp = ctx.ldm_alloc(2 * nlev).expect("LDM");
        let mut col_val = ctx.ldm_alloc(2 * nlev).expect("LDM");
        let mut col_out = ctx.ldm_alloc(2 * nlev).expect("LDM");
        let mut dst_dp = ctx.ldm_alloc(nlev).expect("LDM");

        // Transpose the level-major tile [lpc][16] into point-major
        // [16][lpc] using 4x4 register shuffles.
        let transpose_tile = |ctx: &mut CpeCtx<'_>, src: &[f64], dst: &mut [f64]| {
            for kb in (0..lpc).step_by(4) {
                for pb in (0..NPTS).step_by(4) {
                    let rows = [
                        V4F64::load(&src[kb * NPTS + pb..]),
                        V4F64::load(&src[(kb + 1) * NPTS + pb..]),
                        V4F64::load(&src[(kb + 2) * NPTS + pb..]),
                        V4F64::load(&src[(kb + 3) * NPTS + pb..]),
                    ];
                    let cols = ctx.transpose4x4(rows);
                    for (dj, c) in cols.iter().enumerate() {
                        c.store(&mut dst[(pb + dj) * lpc + kb..(pb + dj) * lpc + kb + 4]);
                    }
                }
            }
        };

        // Exchange: after transposing, CPE (row) holds [16 pts][lpc levels].
        // It must ship points [2r', 2r'+2) to row r' and receive its own
        // 2 points' remaining level groups, in 7 XOR-paired phases.
        // col_val layout: [2][nlev] (point-column major).
        let exchange_gather =
            |ctx: &mut CpeCtx<'_>, tr: &[f64], colv: &mut [f64]| {
                // Own contribution first.
                for dp_ in 0..2 {
                    let p = my_p0 + dp_;
                    colv[dp_ * nlev + k0..dp_ * nlev + k0 + lpc]
                        .copy_from_slice(&tr[p * lpc..(p + 1) * lpc]);
                }
                for phase in 1..CPE_ROWS {
                    let partner = row ^ phase;
                    let send_first = row < partner;
                    let mut payload = vec![0.0; 2 * lpc];
                    payload[..lpc].copy_from_slice(&tr[(2 * partner) * lpc..(2 * partner + 1) * lpc]);
                    payload[lpc..].copy_from_slice(&tr[(2 * partner + 1) * lpc..(2 * partner + 2) * lpc]);
                    let mut incoming = vec![0.0; 2 * lpc];
                    if send_first {
                        send_col_values(ctx, partner, &payload);
                        recv_col_values(ctx, partner, &mut incoming);
                    } else {
                        recv_col_values(ctx, partner, &mut incoming);
                        send_col_values(ctx, partner, &payload);
                    }
                    let pk0 = partner * lpc;
                    colv[pk0..pk0 + lpc].copy_from_slice(&incoming[..lpc]);
                    colv[nlev + pk0..nlev + pk0 + lpc].copy_from_slice(&incoming[lpc..]);
                }
            };
        // Reverse: scatter remapped columns back to level-major owners.
        let exchange_scatter =
            |ctx: &mut CpeCtx<'_>, colv: &[f64], tr: &mut [f64]| {
                for dp_ in 0..2 {
                    let p = my_p0 + dp_;
                    tr[p * lpc..(p + 1) * lpc]
                        .copy_from_slice(&colv[dp_ * nlev + k0..dp_ * nlev + k0 + lpc]);
                }
                for phase in 1..CPE_ROWS {
                    let partner = row ^ phase;
                    let send_first = row < partner;
                    let pk0 = partner * lpc;
                    let mut payload = vec![0.0; 2 * lpc];
                    payload[..lpc].copy_from_slice(&colv[pk0..pk0 + lpc]);
                    payload[lpc..].copy_from_slice(&colv[nlev + pk0..nlev + pk0 + lpc]);
                    let mut incoming = vec![0.0; 2 * lpc];
                    if send_first {
                        send_col_values(ctx, partner, &payload);
                        recv_col_values(ctx, partner, &mut incoming);
                    } else {
                        recv_col_values(ctx, partner, &mut incoming);
                        send_col_values(ctx, partner, &payload);
                    }
                    tr[(2 * partner) * lpc..(2 * partner + 1) * lpc]
                        .copy_from_slice(&incoming[..lpc]);
                    tr[(2 * partner + 1) * lpc..(2 * partner + 2) * lpc]
                        .copy_from_slice(&incoming[lpc..]);
                }
            };

        // Un-transpose: point-major [16][lpc] back to level-major [lpc][16].
        let untranspose_tile = |ctx: &mut CpeCtx<'_>, src: &[f64], dst: &mut [f64]| {
            for pb in (0..NPTS).step_by(4) {
                for kb in (0..lpc).step_by(4) {
                    let rows = [
                        V4F64::load(&src[pb * lpc + kb..]),
                        V4F64::load(&src[(pb + 1) * lpc + kb..]),
                        V4F64::load(&src[(pb + 2) * lpc + kb..]),
                        V4F64::load(&src[(pb + 3) * lpc + kb..]),
                    ];
                    let cols = ctx.transpose4x4(rows);
                    for (dj, c) in cols.iter().enumerate() {
                        c.store(&mut dst[(kb + dj) * NPTS + pb..(kb + dj) * NPTS + pb + 4]);
                    }
                }
            }
        };

        let mut e = col;
        while e < nelem {
            let base = (e * nlev + k0) * NPTS;

            // --- gather full dp columns for my 2 points -------------------
            ctx.dma_get(dp, base..base + tile, &mut buf_in);
            transpose_tile(ctx, &buf_in, &mut buf_tr);
            exchange_gather(ctx, &buf_tr, &mut col_dp);
            // Target: uniform thickness (kernel-benchmark convention,
            // matching the reference implementation). One value per owned
            // point-column; written back through the scatter path as the
            // `dp` pseudo-field below (no slow per-point gst).
            let mut even_dp = [0.0; 2];
            for (dpt, even) in even_dp.iter_mut().enumerate() {
                let total: f64 = col_dp[dpt * nlev..(dpt + 1) * nlev].iter().sum();
                *even = total / nlev as f64;
            }

            // --- remap each field -----------------------------------------
            // Field order: u, v, T, dp (pseudo-field carrying the new
            // thicknesses back through the scatter path), then tracers.
            for f in 0..nfields {
                // Load the field tile (tracers load qdp; dp needs none).
                match f {
                    0 => ctx.dma_get(u, base..base + tile, &mut buf_in),
                    1 => ctx.dma_get(v, base..base + tile, &mut buf_in),
                    2 => ctx.dma_get(t, base..base + tile, &mut buf_in),
                    3 => {}
                    _ => {
                        let q = f - 4;
                        let qbase = ((e * qsize + q) * nlev + k0) * NPTS;
                        ctx.dma_get(qdp, qbase..qbase + tile, &mut buf_in)
                    }
                }
                if f != 3 {
                    transpose_tile(ctx, &buf_in, &mut buf_tr);
                    exchange_gather(ctx, &buf_tr, &mut col_val);
                }
                for dpt in 0..2 {
                    if f == 3 {
                        // The dp "remap" is just the new uniform thickness.
                        for k in 0..nlev {
                            col_val[dpt * nlev + k] = even_dp[dpt];
                        }
                        continue;
                    }
                    for k in 0..nlev {
                        dst_dp[k] = even_dp[dpt];
                    }
                    let cv = &mut col_val[dpt * nlev..(dpt + 1) * nlev];
                    let cdp = &col_dp[dpt * nlev..(dpt + 1) * nlev];
                    // Tracers remap as mixing ratio.
                    if f >= 4 {
                        for k in 0..nlev {
                            cv[k] /= cdp[k];
                        }
                    }
                    remap_column_ppm(cdp, cv, &dst_dp, &mut col_out[..nlev]).expect("remap");
                    if f >= 4 {
                        for k in 0..nlev {
                            col_out[k] *= dst_dp[k];
                        }
                    }
                    let off = dpt * nlev;
                    for k in 0..nlev {
                        col_val[off + k] = col_out[k];
                    }
                }
                exchange_scatter(ctx, &col_val, &mut buf_tr);
                untranspose_tile(ctx, &buf_tr, &mut buf_in);
                match f {
                    0 => ctx.dma_put(&tu, base, &buf_in),
                    1 => ctx.dma_put(&tv, base, &buf_in),
                    2 => ctx.dma_put(&tt, base, &buf_in),
                    3 => ctx.dma_put(&tdp, base, &buf_in),
                    _ => {
                        let q = f - 4;
                        let qbase = ((e * qsize + q) * nlev + k0) * NPTS;
                        ctx.dma_put(&out_q, qbase, &buf_in)
                    }
                }
            }
            ctx.charge_vflops(flops_per_cpe / (nelem as u64).div_ceil(8));
            e += 8;
        }
        ctx.ldm.free(buf_in);
        ctx.ldm.free(buf_tr);
        ctx.ldm.free(col_dp);
        ctx.ldm.free(col_val);
        ctx.ldm.free(col_out);
        ctx.ldm.free(dst_dp);
    })
}

/// Generic level-parallel Athread kernel for the viscosity family: each CPE
/// takes strided `(element, level)` pairs, DMAs the level tiles, applies
/// `f`, writes back. Used for `hypervis_dp1`, `hypervis_dp2` and
/// `biharmonic_dp3d`.
fn level_parallel<F>(
    cluster: &CpeCluster,
    nelem: usize,
    nlev: usize,
    inputs: Vec<SharedSlice<'_>>,
    outputs: Vec<SharedSliceMut<'_>>,
    flops_per_level: u64,
    f: F,
) -> KernelReport
where
    F: Fn(usize, &[Vec<f64>], &mut [Vec<f64>]) + Sync,
{
    let total = nelem * nlev;
    cluster.run(|ctx| {
        let nin = inputs.len();
        let nout = outputs.len();
        let mut bufs_in: Vec<Vec<f64>> = vec![vec![0.0; NPTS]; nin];
        let mut bufs_out: Vec<Vec<f64>> = vec![vec![0.0; NPTS]; nout];
        let ldm = ctx.ldm_alloc((nin + nout) * NPTS).expect("LDM");
        let mut idx = ctx.id();
        while idx < total {
            let e = idx / nlev;
            let base = idx * NPTS;
            for (s, b) in inputs.iter().zip(bufs_in.iter_mut()) {
                ctx.dma_get(*s, base..base + NPTS, b);
            }
            f(e, &bufs_in, &mut bufs_out);
            ctx.charge_vflops(flops_per_level);
            for (d, b) in outputs.iter().zip(&bufs_out) {
                ctx.dma_put(d, base, b);
            }
            idx += 64;
        }
        ctx.ldm.free(ldm);
    })
}

/// `hypervis_dp1`, Athread variant.
pub fn hypervis_dp1(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    let ops = data.ops.clone();
    let nelem = data.nelem;
    let nlev = data.nlev;
    let counts = op_count(KernelId::HypervisDp1, data);
    let flops_per_level = counts.flops / (nelem * nlev) as u64;
    let inputs = vec![
        SharedSlice::new(&data.u),
        SharedSlice::new(&data.v),
        SharedSlice::new(&data.t),
    ];
    let outputs = vec![
        SharedSliceMut::new(&mut data.tend_u),
        SharedSliceMut::new(&mut data.tend_v),
        SharedSliceMut::new(&mut data.tend_t),
    ];
    level_parallel(cluster, nelem, nlev, inputs, outputs, flops_per_level, |e, i, o| {
        let mut lu = [0.0; NPTS];
        let mut lv = [0.0; NPTS];
        ops[e].vlaplace_sphere(&i[0], &i[1], &mut lu, &mut lv);
        let mut lt = [0.0; NPTS];
        ops[e].laplace_sphere(&i[2], &mut lt);
        o[0].copy_from_slice(&lu);
        o[1].copy_from_slice(&lv);
        o[2].copy_from_slice(&lt);
    })
}

/// `hypervis_dp2`, Athread variant.
pub fn hypervis_dp2(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    let ops = data.ops.clone();
    let nelem = data.nelem;
    let nlev = data.nlev;
    let counts = op_count(KernelId::HypervisDp2, data);
    let flops_per_level = counts.flops / (nelem * nlev) as u64;
    let inputs = vec![
        SharedSlice::new(&data.u),
        SharedSlice::new(&data.v),
        SharedSlice::new(&data.t),
    ];
    let outputs = vec![
        SharedSliceMut::new(&mut data.tend_u),
        SharedSliceMut::new(&mut data.tend_v),
        SharedSliceMut::new(&mut data.tend_t),
    ];
    level_parallel(cluster, nelem, nlev, inputs, outputs, flops_per_level, |e, i, o| {
        let mut lu = [0.0; NPTS];
        let mut lv = [0.0; NPTS];
        ops[e].vlaplace_sphere(&i[0], &i[1], &mut lu, &mut lv);
        let mut lu2 = [0.0; NPTS];
        let mut lv2 = [0.0; NPTS];
        ops[e].vlaplace_sphere(&lu, &lv, &mut lu2, &mut lv2);
        let mut lt = [0.0; NPTS];
        ops[e].laplace_sphere(&i[2], &mut lt);
        let mut lt2 = [0.0; NPTS];
        ops[e].laplace_sphere(&lt, &mut lt2);
        o[0].copy_from_slice(&lu2);
        o[1].copy_from_slice(&lv2);
        o[2].copy_from_slice(&lt2);
    })
}

/// `biharmonic_dp3d`, Athread variant.
pub fn biharmonic_dp3d(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    let ops = data.ops.clone();
    let nelem = data.nelem;
    let nlev = data.nlev;
    let counts = op_count(KernelId::BiharmonicDp3d, data);
    let flops_per_level = counts.flops / (nelem * nlev) as u64;
    let inputs = vec![SharedSlice::new(&data.dp3d)];
    let outputs = vec![SharedSliceMut::new(&mut data.tend_dp)];
    level_parallel(cluster, nelem, nlev, inputs, outputs, flops_per_level, |e, i, o| {
        let mut l1 = [0.0; NPTS];
        ops[e].laplace_sphere(&i[0], &mut l1);
        let mut l2 = [0.0; NPTS];
        ops[e].laplace_sphere(&l1, &mut l2);
        o[0].copy_from_slice(&l2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::reference;

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn scan_chain_matches_serial_prefix() {
        let cluster = CpeCluster::with_defaults();
        let mut out = vec![0.0; 64 * NPTS];
        {
            let view = SharedSliceMut::new(&mut out);
            cluster.run(|ctx| {
                // Each row's "group total" is row + 1 at every point.
                let local = [(ctx.row() + 1) as f64; NPTS];
                let prefix = chain_exclusive_prefix(ctx, &local);
                let mut buf = [0.0; NPTS];
                buf.copy_from_slice(&prefix);
                ctx.dma_put(&view, ctx.id() * NPTS, &buf);
            });
        }
        for row in 0..8 {
            let expect: f64 = (1..=row).map(|r| r as f64).sum();
            for c in 0..8 {
                for p in 0..NPTS {
                    assert_eq!(out[(row * 8 + c) * NPTS + p], expect, "row {row}");
                }
            }
        }
    }

    #[test]
    fn reverse_chain_matches_serial_suffix() {
        let cluster = CpeCluster::with_defaults();
        let mut out = vec![0.0; 64 * NPTS];
        {
            let view = SharedSliceMut::new(&mut out);
            cluster.run(|ctx| {
                let local = [(ctx.row() + 1) as f64; NPTS];
                let suffix = chain_exclusive_suffix(ctx, &local);
                let mut buf = [0.0; NPTS];
                buf.copy_from_slice(&suffix);
                ctx.dma_put(&view, ctx.id() * NPTS, &buf);
            });
        }
        for row in 0..8 {
            let expect: f64 = (row + 2..=8).map(|r| r as f64).sum();
            for c in 0..8 {
                assert_eq!(out[(row * 8 + c) * NPTS], expect, "row {row}");
            }
        }
    }

    #[test]
    fn athread_rhs_matches_reference() {
        let cluster = CpeCluster::with_defaults();
        let mut ref_data = KernelData::synth(16, 16, 0, 77);
        let mut ath_data = ref_data.clone();
        reference::compute_and_apply_rhs(&mut ref_data);
        let report = compute_and_apply_rhs(&cluster, &mut ath_data);
        // Scans reassociate sums: tolerance is round-off scaled.
        assert!(max_diff(&ref_data.tend_u, &ath_data.tend_u) < 1e-9, "du");
        assert!(max_diff(&ref_data.tend_v, &ath_data.tend_v) < 1e-9, "dv");
        assert!(max_diff(&ref_data.tend_t, &ath_data.tend_t) < 1e-9, "dT");
        assert!(max_diff(&ref_data.tend_dp, &ath_data.tend_dp) < 1e-12, "ddp");
        assert!(report.counters.reg_sends > 0, "scan must use register comm");
        assert!(report.counters.dma_bytes_in > 0);
    }

    #[test]
    fn athread_euler_matches_reference_and_reuses_dma() {
        let cluster = CpeCluster::with_defaults();
        let mut ref_data = KernelData::synth(16, 16, 4, 78);
        let mut ath_data = ref_data.clone();
        reference::euler_step(&mut ref_data, 150.0);
        let report = euler_step(&cluster, &mut ath_data, 150.0);
        assert!(max_diff(&ref_data.out_a, &ath_data.out_a) < 1e-10);
        // Algorithm 2: the six q-invariant field tiles plus the metric
        // constants are read once per element; only qdp streams per tracer.
        let lpc = 16 / 8;
        let tile_bytes = lpc * NPTS * 8;
        let per_elem_row = (3 + 8) * tile_bytes + 5 * NPTS * 8 + 4 * tile_bytes;
        let expected_in = 16 * 8 * per_elem_row; // elems x rows
        assert_eq!(report.counters.dma_bytes_in as usize, expected_in);
    }

    #[test]
    fn athread_remap_matches_reference_and_uses_shuffles() {
        let cluster = CpeCluster::with_defaults();
        let mut ref_data = KernelData::synth(8, 32, 2, 79);
        let mut ath_data = ref_data.clone();
        reference::vertical_remap(&mut ref_data);
        let report = vertical_remap(&cluster, &mut ath_data);
        assert!(max_diff(&ref_data.tend_u, &ath_data.tend_u) < 1e-9, "u");
        assert!(max_diff(&ref_data.tend_t, &ath_data.tend_t) < 1e-9, "t");
        assert!(max_diff(&ref_data.tend_dp, &ath_data.tend_dp) < 1e-9, "dp");
        assert!(max_diff(&ref_data.out_a, &ath_data.out_a) < 1e-9, "qdp");
        assert!(report.counters.shuffles > 0, "transpose must use shuffles");
        assert!(report.counters.reg_sends > 0, "tile exchange must use register comm");
    }

    #[test]
    fn athread_viscosity_kernels_match_reference() {
        let cluster = CpeCluster::with_defaults();
        for which in 0..3 {
            let mut ref_data = KernelData::synth(6, 8, 0, 80 + which);
            let mut ath_data = ref_data.clone();
            match which {
                0 => {
                    reference::hypervis_dp1(&mut ref_data);
                    hypervis_dp1(&cluster, &mut ath_data);
                }
                1 => {
                    reference::hypervis_dp2(&mut ref_data);
                    hypervis_dp2(&cluster, &mut ath_data);
                }
                _ => {
                    reference::biharmonic_dp3d(&mut ref_data);
                    biharmonic_dp3d(&cluster, &mut ath_data);
                }
            }
            assert_eq!(ref_data.tend_u, ath_data.tend_u, "kernel {which} u");
            assert_eq!(ref_data.tend_t, ath_data.tend_t, "kernel {which} t");
            assert_eq!(ref_data.tend_dp, ath_data.tend_dp, "kernel {which} dp");
        }
    }
}
