//! Member-lane kernels: the four `V4F64` lanes are four ensemble members.
//!
//! PR 9's member *chunking* (`vlaplace_scalars_members_blocked`) batched
//! members at the coefficient-walk level but kept each member's fields in
//! row-vector form — at M = 4 the per-output working set
//! (`[[V4F64; NP]; M]` accumulators) spills out of the 16 ymm registers and
//! the batched walk runs slower per member than the serial one (measured:
//! 118 ms/member at M = 4 vs 60 serial on the full-step bench). This module
//! is ROADMAP item 4's lane-transposed alternative: fields live in
//! **member tiles** `[V4F64]` indexed by `(level, point)` where lane `m`
//! holds member `m`'s value at that grid point. Consequences:
//!
//! * Every operator coefficient and metric term is the *same* for all four
//!   lanes, so it enters the kernel as a scalar splat from the existing
//!   [`BlockedOps`] tables — no new operator layout, no lane shuffles, and
//!   the per-output working set is one accumulator per quantity regardless
//!   of how many members ride along.
//! * No operation ever mixes lanes. Lane `m` of every intermediate is
//!   produced by exactly the scalar `f64` sequence the single-member
//!   blocked kernel applies to member `m` (the blocked kernels' lanes are
//!   independent GLL columns, so their per-lane arithmetic *is* a scalar
//!   sequence). Member `m` of a lane-batched run is therefore **bitwise
//!   identical** to its standalone run — the ensemble parity pin.
//! * A ragged batch (N mod 4 ≠ 0) duplicates the last live member into the
//!   dead lanes on gather ([`gather_member_tile`]) and simply never stores
//!   them on scatter ([`scatter_member_tile`]) — duplicated arithmetic is
//!   finite and harmless, and a poisoned member can never contaminate a
//!   neighbour because nothing crosses lanes.
//!
//! Gather/scatter between the per-member flat SoA arenas and the tiles is
//! pure 4×4 shuffle transposition ([`sw26010::interleave4`] /
//! [`sw26010::deinterleave4`]), paid once per step phase and amortized over
//! the hyperviscosity subcycles and RK stages that reuse the tiles.

use crate::kernels::blocked::BlockedOps;
use cubesphere::consts::{CP, RD};
use cubesphere::{NP, NPTS};
use sw26010::{deinterleave4, interleave4, V4F64};

/// Which member-batching strategy `Dycore::apply_hypervis_members` and the
/// ensemble engine dispatch to when several members are resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemberKernelPath {
    /// PR 9's register-blocked member chunking (pairs at a time), retained
    /// as the A/B baseline.
    Chunked,
    /// Lane-transposed member tiles — lanes are members (this module).
    #[default]
    Lanes,
}

/// Gather up to four members' flat field windows into a lane tile:
/// `tile[i][m] = srcs[m][i]`. A ragged batch (fewer than four sources)
/// duplicates the last live member into the dead lanes, so every lane
/// always carries finite member data.
///
/// # Panics
/// Panics if `srcs` is empty or holds more than 4 slices, or on the length
/// mismatches [`interleave4`] rejects.
pub fn gather_member_tile(srcs: &[&[f64]], tile: &mut [V4F64]) {
    assert!(!srcs.is_empty() && srcs.len() <= 4, "gather_member_tile: 1..=4 members");
    let last = srcs.len() - 1;
    let pick = |m: usize| srcs[m.min(last)];
    interleave4([pick(0), pick(1), pick(2), pick(3)], tile);
}

/// Scatter a lane tile back to the live members' flat field windows:
/// `dsts[m][i] = tile[i][m]`. `dsts.len()` is the lane mask — duplicated
/// dead lanes are never stored.
pub fn scatter_member_tile(tile: &[V4F64], dsts: &mut [&mut [f64]]) {
    deinterleave4(tile, dsts);
}

/// Fused hyperviscosity Laplacian over one level's member tile: the vector
/// Laplacian of `(u, v)` and `NS` scalar weak Laplacians, lane-exact image
/// of [`vlaplace_scalars_blocked`](crate::kernels::blocked::vlaplace_scalars_blocked).
///
/// The blocked kernel's row vectors hold four GLL columns; here the output
/// is produced per grid point `(i, j)` with every coefficient a scalar
/// splat (`dvv[i][kk]`, `dvvt[kk][j]`, the metric entries at the point),
/// and every accumulator updated in the standalone kernel's exact term
/// order — so lane `m` runs member `m`'s standalone scalar sequence and the
/// committed bits match the single-member kernel per member. The per-output
/// working set is `3 + 2·NS` accumulators plus two splats: no register
/// spill at any batch width, which is precisely what the M = 4 chunked
/// variant could not achieve.
#[inline]
pub fn vlaplace_scalars_member_lanes<const NS: usize>(
    bop: &BlockedOps,
    u: &[V4F64; NPTS],
    v: &[V4F64; NPTS],
    s: &[[V4F64; NPTS]; NS],
) -> ([V4F64; NPTS], [V4F64; NPTS], [[V4F64; NPTS]; NS]) {
    // Walk-1 prologue: contravariant mass flux and covariant components,
    // per point, metric terms splat across the member lanes.
    let mut gv1 = [V4F64::zero(); NPTS];
    let mut gv2 = [V4F64::zero(); NPTS];
    let mut ucov = [V4F64::zero(); NPTS];
    let mut vcov = [V4F64::zero(); NPTS];
    for r in 0..NP {
        for j in 0..NP {
            let p = r * NP + j;
            let c1 = V4F64::splat(bop.dinv[0][0][r][j]) * u[p]
                + V4F64::splat(bop.dinv[0][1][r][j]) * v[p];
            let c2 = V4F64::splat(bop.dinv[1][0][r][j]) * u[p]
                + V4F64::splat(bop.dinv[1][1][r][j]) * v[p];
            let md = V4F64::splat(bop.metdet[r][j]);
            gv1[p] = md * c1;
            gv2[p] = md * c2;
            ucov[p] =
                V4F64::splat(bop.d[0][0][r][j]) * u[p] + V4F64::splat(bop.d[1][0][r][j]) * v[p];
            vcov[p] =
                V4F64::splat(bop.d[0][1][r][j]) * u[p] + V4F64::splat(bop.d[1][1][r][j]) * v[p];
        }
    }
    // Walk 1: div + vort + every scalar's weak-gradient fluxes. For output
    // point (i, j) the blocked kernel's lane-j sequence is
    // `+= dvv[i][kk]·X(kk,j)` then `+= dvv[j][kk]·Y(i,kk)` per `kk` — both
    // coefficients scalar, both reproduced here as splats.
    let mut div = [V4F64::zero(); NPTS];
    let mut vort = [V4F64::zero(); NPTS];
    let mut c1s = [[V4F64::zero(); NPTS]; NS];
    let mut c2s = [[V4F64::zero(); NPTS]; NS];
    for i in 0..NP {
        for j in 0..NP {
            let p = i * NP + j;
            let mut acc_div = V4F64::zero();
            let mut dv_da = V4F64::zero();
            let mut du_db = V4F64::zero();
            let mut s_a = [V4F64::zero(); NS];
            let mut s_b = [V4F64::zero(); NS];
            for kk in 0..NP {
                let ca = V4F64::splat(bop.dvv[i][kk]);
                let cb = V4F64::splat(bop.dvvt[kk][j]);
                acc_div = acc_div + ca * gv1[kk * NP + j];
                acc_div = acc_div + cb * gv2[i * NP + kk];
                dv_da = dv_da + ca * vcov[kk * NP + j];
                du_db = du_db + cb * ucov[i * NP + kk];
                for t in 0..NS {
                    s_a[t] = s_a[t] + ca * s[t][kk * NP + j];
                    s_b[t] = s_b[t] + cb * s[t][i * NP + kk];
                }
            }
            let rm = V4F64::splat(bop.rmetdet[i][j]);
            div[p] = acc_div * bop.dscale * rm;
            vort[p] = (dv_da - du_db) * bop.dscale * rm;
            for t in 0..NS {
                let (da, db) = (s_a[t] * bop.dscale, s_b[t] * bop.dscale);
                let gx = V4F64::splat(bop.dinv[0][0][i][j]) * da
                    + V4F64::splat(bop.dinv[1][0][i][j]) * db;
                let gy = V4F64::splat(bop.dinv[0][1][i][j]) * da
                    + V4F64::splat(bop.dinv[1][1][i][j]) * db;
                let smp = V4F64::splat(bop.spheremp[i][j]);
                c1s[t][p] = smp
                    * (V4F64::splat(bop.dinv[0][0][i][j]) * gx
                        + V4F64::splat(bop.dinv[0][1][i][j]) * gy);
                c2s[t][p] = smp
                    * (V4F64::splat(bop.dinv[1][0][i][j]) * gx
                        + V4F64::splat(bop.dinv[1][1][i][j]) * gy);
            }
        }
    }
    // Walk 2: second weak-form contraction + grad(div) − curl(vort). The
    // scalars keep their `i` terms strictly before their `j` terms, exactly
    // as `laplace_wk` orders them.
    let mut lu = [V4F64::zero(); NPTS];
    let mut lv = [V4F64::zero(); NPTS];
    let mut ls = [[V4F64::zero(); NPTS]; NS];
    for a in 0..NP {
        for b in 0..NP {
            let p = a * NP + b;
            let mut acc = [V4F64::zero(); NS];
            let mut d_a = V4F64::zero();
            let mut d_b = V4F64::zero();
            let mut v_a = V4F64::zero();
            let mut v_b = V4F64::zero();
            for i in 0..NP {
                let ci = V4F64::splat(bop.dvv[i][a]);
                for t in 0..NS {
                    acc[t] = acc[t] + ci * c1s[t][i * NP + b];
                }
                let ca = V4F64::splat(bop.dvv[a][i]);
                let cb = V4F64::splat(bop.dvvt[i][b]);
                d_a = d_a + ca * div[i * NP + b];
                d_b = d_b + cb * div[a * NP + i];
                v_a = v_a + ca * vort[i * NP + b];
                v_b = v_b + cb * vort[a * NP + i];
            }
            for j in 0..NP {
                let cj = V4F64::splat(bop.dvv[j][b]);
                for t in 0..NS {
                    acc[t] = acc[t] + cj * c2s[t][a * NP + j];
                }
            }
            for t in 0..NS {
                ls[t][p] = acc[t] * (-bop.dscale) / V4F64::splat(bop.spheremp[a][b]);
            }
            let (da, db) = (d_a * bop.dscale, d_b * bop.dscale);
            let gdx =
                V4F64::splat(bop.dinv[0][0][a][b]) * da + V4F64::splat(bop.dinv[1][0][a][b]) * db;
            let gdy =
                V4F64::splat(bop.dinv[0][1][a][b]) * da + V4F64::splat(bop.dinv[1][1][a][b]) * db;
            let (da, db) = (v_a * bop.dscale, v_b * bop.dscale);
            let rm = V4F64::splat(bop.rmetdet[a][b]);
            let cc1 = db * rm;
            let cc2 = -da * rm;
            let cx = V4F64::splat(bop.d[0][0][a][b]) * cc1 + V4F64::splat(bop.d[0][1][a][b]) * cc2;
            let cy = V4F64::splat(bop.d[1][0][a][b]) * cc1 + V4F64::splat(bop.d[1][1][a][b]) * cc2;
            lu[p] = gdx - cx;
            lv[p] = gdy - cy;
        }
    }
    (lu, lv, ls)
}

/// First hyperviscosity pass over every level of one element's member
/// tiles, out of place. Lane `m` is bitwise identical to
/// [`hypervis_pass_element_blocked`](crate::kernels::blocked::hypervis_pass_element_blocked)
/// on member `m`.
#[allow(clippy::too_many_arguments)]
pub fn hypervis_pass_member_lanes(
    bop: &BlockedOps,
    nlev: usize,
    su: &[V4F64],
    sv: &[V4F64],
    st: &[V4F64],
    sdp: &[V4F64],
    ou: &mut [V4F64],
    ov: &mut [V4F64],
    ot: &mut [V4F64],
    odp: &mut [V4F64],
) {
    for k in 0..nlev {
        let o = k * NPTS;
        let u: [V4F64; NPTS] = su[o..o + NPTS].try_into().unwrap();
        let v: [V4F64; NPTS] = sv[o..o + NPTS].try_into().unwrap();
        let s: [[V4F64; NPTS]; 2] =
            [st[o..o + NPTS].try_into().unwrap(), sdp[o..o + NPTS].try_into().unwrap()];
        let (lu, lv, ls) = vlaplace_scalars_member_lanes(bop, &u, &v, &s);
        ou[o..o + NPTS].copy_from_slice(&lu);
        ov[o..o + NPTS].copy_from_slice(&lv);
        ot[o..o + NPTS].copy_from_slice(&ls[0]);
        odp[o..o + NPTS].copy_from_slice(&ls[1]);
    }
}

/// In-place second (biharmonic) hyperviscosity pass over member tiles.
/// Lane `m` is bitwise identical to
/// [`hypervis_pass_levels_blocked`](crate::kernels::blocked::hypervis_pass_levels_blocked)
/// on member `m`.
pub fn hypervis_pass_levels_member_lanes(
    bop: &BlockedOps,
    nlev: usize,
    u: &mut [V4F64],
    v: &mut [V4F64],
    t: &mut [V4F64],
    dp: &mut [V4F64],
) {
    for k in 0..nlev {
        let o = k * NPTS;
        let ur: [V4F64; NPTS] = u[o..o + NPTS].try_into().unwrap();
        let vr: [V4F64; NPTS] = v[o..o + NPTS].try_into().unwrap();
        let s: [[V4F64; NPTS]; 2] =
            [t[o..o + NPTS].try_into().unwrap(), dp[o..o + NPTS].try_into().unwrap()];
        let (lu, lv, ls) = vlaplace_scalars_member_lanes(bop, &ur, &vr, &s);
        u[o..o + NPTS].copy_from_slice(&lu);
        v[o..o + NPTS].copy_from_slice(&lv);
        t[o..o + NPTS].copy_from_slice(&ls[0]);
        dp[o..o + NPTS].copy_from_slice(&ls[1]);
    }
}

/// Sponge-layer Laplacian over the top `ks` levels of one element's member
/// tiles, out of place (`NS = 1`). Lane `m` is bitwise identical to
/// [`sponge_pass_element_blocked`](crate::kernels::blocked::sponge_pass_element_blocked)
/// on member `m`.
#[allow(clippy::too_many_arguments)]
pub fn sponge_pass_member_lanes(
    bop: &BlockedOps,
    ks: usize,
    su: &[V4F64],
    sv: &[V4F64],
    st: &[V4F64],
    ou: &mut [V4F64],
    ov: &mut [V4F64],
    ot: &mut [V4F64],
) {
    for k in 0..ks {
        let o = k * NPTS;
        let u: [V4F64; NPTS] = su[o..o + NPTS].try_into().unwrap();
        let v: [V4F64; NPTS] = sv[o..o + NPTS].try_into().unwrap();
        let s: [[V4F64; NPTS]; 1] = [st[o..o + NPTS].try_into().unwrap()];
        let (lu, lv, ls) = vlaplace_scalars_member_lanes(bop, &u, &v, &s);
        ou[o..o + NPTS].copy_from_slice(&lu);
        ov[o..o + NPTS].copy_from_slice(&lv);
        ot[o..o + NPTS].copy_from_slice(&ls[0]);
    }
}

/// Member-lane forward pressure scan, lane-exact image of
/// [`pressure_scan_blocked`](crate::rhs::pressure_scan_blocked): midpoint
/// before the carry update, per point.
pub fn pressure_scan_member_lanes(
    nlev: usize,
    ptop: f64,
    dp: &[V4F64],
    p_int: &mut [V4F64],
    p_mid: &mut [V4F64],
) {
    debug_assert_eq!(dp.len(), nlev * NPTS);
    debug_assert_eq!(p_int.len(), (nlev + 1) * NPTS);
    debug_assert_eq!(p_mid.len(), nlev * NPTS);
    let mut carry = [V4F64::splat(ptop); NPTS];
    p_int[..NPTS].copy_from_slice(&carry);
    let half = V4F64::splat(0.5);
    for ((dpk, pik), pmk) in dp
        .chunks_exact(NPTS)
        .zip(p_int[NPTS..].chunks_exact_mut(NPTS))
        .zip(p_mid.chunks_exact_mut(NPTS))
    {
        for p in 0..NPTS {
            pmk[p] = carry[p] + half * dpk[p];
            carry[p] = carry[p] + dpk[p];
        }
        pik.copy_from_slice(&carry);
    }
}

/// Member-lane reverse geopotential scan, lane-exact image of
/// [`geopotential_scan_blocked`](crate::rhs::geopotential_scan_blocked).
/// `V4F64::ln` is lane-wise scalar `f64::ln`, so the bits match per member.
pub fn geopotential_scan_member_lanes(
    nlev: usize,
    phis: &[V4F64],
    t: &[V4F64],
    p_int: &[V4F64],
    p_mid: &[V4F64],
    phi_mid: &mut [V4F64],
) {
    debug_assert_eq!(phis.len(), NPTS);
    let rd = V4F64::splat(RD);
    let mut phi_below = [V4F64::zero(); NPTS];
    phi_below.copy_from_slice(&phis[..NPTS]);
    for k in (0..nlev).rev() {
        let o = k * NPTS;
        for p in 0..NPTS {
            let rdt = rd * t[o + p];
            phi_mid[o + p] = phi_below[p] + rdt * (p_int[o + NPTS + p] / p_mid[o + p]).ln();
            phi_below[p] = phi_below[p] + rdt * (p_int[o + NPTS + p] / p_int[o + p]).ln();
        }
    }
}

/// Scan scratch for the member-lane RHS: the three column-scan tiles of
/// one element, sized once at construction (zero steady-state allocation).
#[derive(Debug, Clone)]
pub struct MemberRhsScratch {
    /// Interface pressure tile, `(nlev + 1) * NPTS`.
    pub p_int: Vec<V4F64>,
    /// Midpoint pressure tile, `nlev * NPTS`.
    pub p_mid: Vec<V4F64>,
    /// Midpoint geopotential tile, `nlev * NPTS`.
    pub phi_mid: Vec<V4F64>,
}

impl MemberRhsScratch {
    pub fn new(nlev: usize) -> Self {
        MemberRhsScratch {
            p_int: vec![V4F64::zero(); (nlev + 1) * NPTS],
            p_mid: vec![V4F64::zero(); nlev * NPTS],
            phi_mid: vec![V4F64::zero(); nlev * NPTS],
        }
    }
}

/// Fused member-lane RHS: both column scans, every horizontal operator, the
/// omega scan, and the `out = base + c_dt * tend` apply for one element's
/// member tiles — lane-exact image of
/// [`element_rhs_apply_blocked`](crate::kernels::blocked::element_rhs_apply_blocked),
/// so lane `m` is bitwise identical to the blocked RHS on member `m`.
#[allow(clippy::too_many_arguments)]
pub fn element_rhs_apply_member_lanes(
    bop: &BlockedOps,
    nlev: usize,
    ptop: f64,
    eval_u: &[V4F64],
    eval_v: &[V4F64],
    eval_t: &[V4F64],
    eval_dp3d: &[V4F64],
    phis: &[V4F64],
    base_u: &[V4F64],
    base_v: &[V4F64],
    base_t: &[V4F64],
    base_dp3d: &[V4F64],
    c_dt: f64,
    out_u: &mut [V4F64],
    out_v: &mut [V4F64],
    out_t: &mut [V4F64],
    out_dp3d: &mut [V4F64],
    scratch: &mut MemberRhsScratch,
) {
    pressure_scan_member_lanes(nlev, ptop, eval_dp3d, &mut scratch.p_int, &mut scratch.p_mid);
    geopotential_scan_member_lanes(
        nlev,
        phis,
        eval_t,
        &scratch.p_int,
        &scratch.p_mid,
        &mut scratch.phi_mid,
    );

    let kappa = RD / CP;
    let half = V4F64::splat(0.5);
    // Running omega accumulator: sum of divdp over the levels above.
    let mut acc = [V4F64::zero(); NPTS];
    for k in 0..nlev {
        let o = k * NPTS;
        let u: [V4F64; NPTS] = eval_u[o..o + NPTS].try_into().unwrap();
        let v: [V4F64; NPTS] = eval_v[o..o + NPTS].try_into().unwrap();
        let t: [V4F64; NPTS] = eval_t[o..o + NPTS].try_into().unwrap();
        let dp: [V4F64; NPTS] = eval_dp3d[o..o + NPTS].try_into().unwrap();
        let pm: [V4F64; NPTS] = scratch.p_mid[o..o + NPTS].try_into().unwrap();
        let phi: [V4F64; NPTS] = scratch.phi_mid[o..o + NPTS].try_into().unwrap();

        let mut energy = [V4F64::zero(); NPTS];
        let mut gv1 = [V4F64::zero(); NPTS];
        let mut gv2 = [V4F64::zero(); NPTS];
        let mut ucov = [V4F64::zero(); NPTS];
        let mut vcov = [V4F64::zero(); NPTS];
        for r in 0..NP {
            for j in 0..NP {
                let p = r * NP + j;
                let udp = u[p] * dp[p];
                let vdp = v[p] * dp[p];
                energy[p] = phi[p] + half * (u[p] * u[p] + v[p] * v[p]);
                let c1 = V4F64::splat(bop.dinv[0][0][r][j]) * udp
                    + V4F64::splat(bop.dinv[0][1][r][j]) * vdp;
                let c2 = V4F64::splat(bop.dinv[1][0][r][j]) * udp
                    + V4F64::splat(bop.dinv[1][1][r][j]) * vdp;
                let md = V4F64::splat(bop.metdet[r][j]);
                gv1[p] = md * c1;
                gv2[p] = md * c2;
                ucov[p] =
                    V4F64::splat(bop.d[0][0][r][j]) * u[p] + V4F64::splat(bop.d[1][0][r][j]) * v[p];
                vcov[p] =
                    V4F64::splat(bop.d[0][1][r][j]) * u[p] + V4F64::splat(bop.d[1][1][r][j]) * v[p];
            }
        }
        // The fused nine-accumulator contraction of the blocked RHS, per
        // output point, term order unchanged per lane.
        let mut divdp = [V4F64::zero(); NPTS];
        let mut vort = [V4F64::zero(); NPTS];
        let mut gpx = [V4F64::zero(); NPTS];
        let mut gpy = [V4F64::zero(); NPTS];
        let mut gex = [V4F64::zero(); NPTS];
        let mut gey = [V4F64::zero(); NPTS];
        let mut gtx = [V4F64::zero(); NPTS];
        let mut gty = [V4F64::zero(); NPTS];
        for i in 0..NP {
            for j in 0..NP {
                let p = i * NP + j;
                let mut acc_div = V4F64::zero();
                let mut dv_da = V4F64::zero();
                let mut du_db = V4F64::zero();
                let mut pm_a = V4F64::zero();
                let mut pm_b = V4F64::zero();
                let mut en_a = V4F64::zero();
                let mut en_b = V4F64::zero();
                let mut t_a = V4F64::zero();
                let mut t_b = V4F64::zero();
                for kk in 0..NP {
                    let ca = V4F64::splat(bop.dvv[i][kk]);
                    let cb = V4F64::splat(bop.dvvt[kk][j]);
                    acc_div = acc_div + ca * gv1[kk * NP + j];
                    acc_div = acc_div + cb * gv2[i * NP + kk];
                    dv_da = dv_da + ca * vcov[kk * NP + j];
                    du_db = du_db + cb * ucov[i * NP + kk];
                    pm_a = pm_a + ca * pm[kk * NP + j];
                    pm_b = pm_b + cb * pm[i * NP + kk];
                    en_a = en_a + ca * energy[kk * NP + j];
                    en_b = en_b + cb * energy[i * NP + kk];
                    t_a = t_a + ca * t[kk * NP + j];
                    t_b = t_b + cb * t[i * NP + kk];
                }
                let rm = V4F64::splat(bop.rmetdet[i][j]);
                divdp[p] = acc_div * bop.dscale * rm;
                vort[p] = (dv_da - du_db) * bop.dscale * rm;
                let (da, db) = (pm_a * bop.dscale, pm_b * bop.dscale);
                gpx[p] = V4F64::splat(bop.dinv[0][0][i][j]) * da
                    + V4F64::splat(bop.dinv[1][0][i][j]) * db;
                gpy[p] = V4F64::splat(bop.dinv[0][1][i][j]) * da
                    + V4F64::splat(bop.dinv[1][1][i][j]) * db;
                let (da, db) = (en_a * bop.dscale, en_b * bop.dscale);
                gex[p] = V4F64::splat(bop.dinv[0][0][i][j]) * da
                    + V4F64::splat(bop.dinv[1][0][i][j]) * db;
                gey[p] = V4F64::splat(bop.dinv[0][1][i][j]) * da
                    + V4F64::splat(bop.dinv[1][1][i][j]) * db;
                let (da, db) = (t_a * bop.dscale, t_b * bop.dscale);
                gtx[p] = V4F64::splat(bop.dinv[0][0][i][j]) * da
                    + V4F64::splat(bop.dinv[1][0][i][j]) * db;
                gty[p] = V4F64::splat(bop.dinv[0][1][i][j]) * da
                    + V4F64::splat(bop.dinv[1][1][i][j]) * db;
            }
        }

        for r in 0..NP {
            for j in 0..NP {
                let p = r * NP + j;
                let po = o + p;
                let vgrad = u[p] * gpx[p] + v[p] * gpy[p];
                let omega = (vgrad - acc[p] - half * divdp[p]) / pm[p];
                acc[p] = acc[p] + divdp[p];
                let abs_vort = V4F64::splat(bop.fcor[r][j]) + vort[p];
                let rtp = V4F64::splat(RD) * t[p] / pm[p];
                let tend_u = abs_vort * v[p] - gex[p] - rtp * gpx[p];
                let tend_v = -abs_vort * u[p] - gey[p] - rtp * gpy[p];
                let tend_t =
                    -(u[p] * gtx[p] + v[p] * gty[p]) + V4F64::splat(kappa) * t[p] * omega;
                let tend_dp = -divdp[p];
                out_u[po] = base_u[po] + tend_u * c_dt;
                out_v[po] = base_v[po] + tend_v * c_dt;
                out_t[po] = base_t[po] + tend_t * c_dt;
                out_dp3d[po] = base_dp3d[po] + tend_dp * c_dt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deriv::build_ops;
    use crate::kernels::blocked::{
        element_rhs_apply_blocked, hypervis_pass_element_blocked, hypervis_pass_levels_blocked,
        sponge_pass_element_blocked,
    };
    use crate::rhs::{geopotential_scan_blocked, pressure_scan_blocked, RhsScratch};
    use cubesphere::CubedSphere;

    fn lcg_field(n: usize, seed: &mut u64, lo: f64, hi: f64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = ((*seed >> 11) as f64) / ((1u64 << 53) as f64);
                lo + u * (hi - lo)
            })
            .collect()
    }

    fn bits(x: &[f64]) -> Vec<u64> {
        x.iter().map(|v| v.to_bits()).collect()
    }

    fn gather(members: &[Vec<f64>], n: usize) -> Vec<V4F64> {
        let mut tile = vec![V4F64::zero(); n];
        let srcs: Vec<&[f64]> = members.iter().map(|m| m.as_slice()).collect();
        gather_member_tile(&srcs, &mut tile);
        tile
    }

    fn scatter(tile: &[V4F64], live: usize, n: usize) -> Vec<Vec<f64>> {
        let mut outs = vec![vec![0.0f64; n]; live];
        let mut views: Vec<&mut [f64]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
        scatter_member_tile(tile, &mut views);
        outs
    }

    #[test]
    fn lane_hypervis_passes_match_blocked_per_member_bitwise() {
        let ops = build_ops(&CubedSphere::new(2));
        let mut seed = 0x1a2b_3c4d_u64;
        for (idx, nlev) in [1usize, 3, 8].into_iter().enumerate() {
            let bop = crate::kernels::blocked::BlockedOps::new(&ops[idx * 5 % ops.len()]);
            let n = nlev * NPTS;
            for live in 1..=4usize {
                let u: Vec<Vec<f64>> =
                    (0..live).map(|_| lcg_field(n, &mut seed, -40.0, 40.0)).collect();
                let v: Vec<Vec<f64>> =
                    (0..live).map(|_| lcg_field(n, &mut seed, -40.0, 40.0)).collect();
                let t: Vec<Vec<f64>> =
                    (0..live).map(|_| lcg_field(n, &mut seed, 220.0, 310.0)).collect();
                let dp: Vec<Vec<f64>> =
                    (0..live).map(|_| lcg_field(n, &mut seed, 200.0, 900.0)).collect();

                // Per-member single-member oracle.
                let mut eu = vec![vec![0.0; n]; live];
                let mut ev = vec![vec![0.0; n]; live];
                let mut et = vec![vec![0.0; n]; live];
                let mut edp = vec![vec![0.0; n]; live];
                for m in 0..live {
                    hypervis_pass_element_blocked(
                        &bop, nlev, &u[m], &v[m], &t[m], &dp[m], &mut eu[m], &mut ev[m],
                        &mut et[m], &mut edp[m],
                    );
                }

                // Lane path: gather (ragged tail duplicates the last live
                // member), out-of-place pass, then the in-place pass on the
                // result — the biharmonic sequence.
                let (tu, tv, tt, tdp) =
                    (gather(&u, n), gather(&v, n), gather(&t, n), gather(&dp, n));
                let mut ou = vec![V4F64::zero(); n];
                let mut ov = vec![V4F64::zero(); n];
                let mut ot = vec![V4F64::zero(); n];
                let mut odp = vec![V4F64::zero(); n];
                hypervis_pass_member_lanes(
                    &bop, nlev, &tu, &tv, &tt, &tdp, &mut ou, &mut ov, &mut ot, &mut odp,
                );
                for (m, e) in eu.iter().enumerate() {
                    let got = scatter(&ou, live, n);
                    assert_eq!(bits(e), bits(&got[m]), "nlev={nlev} live={live} m={m} u");
                }
                for (f, e, name) in
                    [(&ov, &ev, "v"), (&ot, &et, "t"), (&odp, &edp, "dp3d")]
                {
                    let got = scatter(f, live, n);
                    for m in 0..live {
                        assert_eq!(
                            bits(&e[m]),
                            bits(&got[m]),
                            "nlev={nlev} live={live} m={m} {name}"
                        );
                    }
                }

                for m in 0..live {
                    hypervis_pass_levels_blocked(
                        &bop, nlev, &mut eu[m], &mut ev[m], &mut et[m], &mut edp[m],
                    );
                }
                hypervis_pass_levels_member_lanes(&bop, nlev, &mut ou, &mut ov, &mut ot, &mut odp);
                for (f, e, name) in [
                    (&ou, &eu, "u"),
                    (&ov, &ev, "v"),
                    (&ot, &et, "t"),
                    (&odp, &edp, "dp3d"),
                ] {
                    let got = scatter(f, live, n);
                    for m in 0..live {
                        assert_eq!(
                            bits(&e[m]),
                            bits(&got[m]),
                            "in-place nlev={nlev} live={live} m={m} {name}"
                        );
                    }
                }

                // Sponge pass over the top levels.
                let ks = nlev.min(2);
                let mut su = vec![vec![0.0; ks * NPTS]; live];
                let mut sv = vec![vec![0.0; ks * NPTS]; live];
                let mut stf = vec![vec![0.0; ks * NPTS]; live];
                for m in 0..live {
                    sponge_pass_element_blocked(
                        &bop, ks, &u[m], &v[m], &t[m], &mut su[m], &mut sv[m], &mut stf[m],
                    );
                }
                let mut lu = vec![V4F64::zero(); ks * NPTS];
                let mut lv = vec![V4F64::zero(); ks * NPTS];
                let mut lt = vec![V4F64::zero(); ks * NPTS];
                sponge_pass_member_lanes(&bop, ks, &tu, &tv, &tt, &mut lu, &mut lv, &mut lt);
                for (f, e, name) in [(&lu, &su, "u"), (&lv, &sv, "v"), (&lt, &stf, "t")] {
                    let got = scatter(f, live, ks * NPTS);
                    for m in 0..live {
                        assert_eq!(
                            bits(&e[m]),
                            bits(&got[m]),
                            "sponge nlev={nlev} live={live} m={m} {name}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lane_scans_match_blocked_per_member_bitwise() {
        let mut seed = 0x5ca9_5ca9_u64;
        for nlev in [1usize, 3, 26, 128] {
            let n = nlev * NPTS;
            let ptop = 225.0;
            let dp: Vec<Vec<f64>> = (0..4).map(|_| lcg_field(n, &mut seed, 150.0, 900.0)).collect();
            let t: Vec<Vec<f64>> = (0..4).map(|_| lcg_field(n, &mut seed, 230.0, 310.0)).collect();
            let phis: Vec<Vec<f64>> =
                (0..4).map(|_| lcg_field(NPTS, &mut seed, 0.0, 5000.0)).collect();

            let mut e_pi = vec![vec![0.0; n + NPTS]; 4];
            let mut e_pm = vec![vec![0.0; n]; 4];
            let mut e_phi = vec![vec![0.0; n]; 4];
            for m in 0..4 {
                pressure_scan_blocked(nlev, ptop, &dp[m], &mut e_pi[m], &mut e_pm[m]);
                geopotential_scan_blocked(
                    nlev, &phis[m], &t[m], &e_pi[m], &e_pm[m], &mut e_phi[m],
                );
            }

            let tdp = gather(&dp, n);
            let tt = gather(&t, n);
            let tphis = gather(&phis, NPTS);
            let mut pi = vec![V4F64::zero(); n + NPTS];
            let mut pmid = vec![V4F64::zero(); n];
            let mut phim = vec![V4F64::zero(); n];
            pressure_scan_member_lanes(nlev, ptop, &tdp, &mut pi, &mut pmid);
            geopotential_scan_member_lanes(nlev, &tphis, &tt, &pi, &pmid, &mut phim);

            for (f, e, name) in
                [(&pi, &e_pi, "p_int"), (&pmid, &e_pm, "p_mid"), (&phim, &e_phi, "phi_mid")]
            {
                let got = scatter(f, 4, f.len());
                for m in 0..4 {
                    assert_eq!(bits(&e[m]), bits(&got[m]), "nlev={nlev} m={m} {name}");
                }
            }
        }
    }

    #[test]
    fn lane_rhs_matches_blocked_per_member_bitwise() {
        let ops = build_ops(&CubedSphere::new(2));
        let mut seed = 0x0f0e_0d0c_u64;
        for (idx, nlev) in [1usize, 3, 8].into_iter().enumerate() {
            let bop = crate::kernels::blocked::BlockedOps::new(&ops[(idx * 7 + 1) % ops.len()]);
            let n = nlev * NPTS;
            let ptop = 225.0;
            let c_dt = 77.5;
            for live in [3usize, 4] {
                let mk = |seed: &mut u64, lo, hi| -> Vec<Vec<f64>> {
                    (0..live).map(|_| lcg_field(n, seed, lo, hi)).collect()
                };
                let u = mk(&mut seed, -30.0, 30.0);
                let v = mk(&mut seed, -30.0, 30.0);
                let t = mk(&mut seed, 220.0, 310.0);
                let dp = mk(&mut seed, 200.0, 900.0);
                let bu = mk(&mut seed, -30.0, 30.0);
                let bv = mk(&mut seed, -30.0, 30.0);
                let bt = mk(&mut seed, 220.0, 310.0);
                let bdp = mk(&mut seed, 200.0, 900.0);
                let phis: Vec<Vec<f64>> =
                    (0..live).map(|_| lcg_field(NPTS, &mut seed, 0.0, 5000.0)).collect();

                let mut eo = vec![[vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]]; live];
                let mut rs = RhsScratch::new(nlev);
                for m in 0..live {
                    let [ou, ov, ot, odp] = &mut eo[m];
                    element_rhs_apply_blocked(
                        &bop, nlev, ptop, &u[m], &v[m], &t[m], &dp[m], &phis[m], &bu[m], &bv[m],
                        &bt[m], &bdp[m], c_dt, ou, ov, ot, odp, &mut rs,
                    );
                }

                let tiles: Vec<Vec<V4F64>> = [&u, &v, &t, &dp, &bu, &bv, &bt, &bdp]
                    .iter()
                    .map(|f| gather(f, n))
                    .collect();
                let tphis = gather(&phis, NPTS);
                let mut lo = vec![vec![V4F64::zero(); n]; 4];
                let mut ms = MemberRhsScratch::new(nlev);
                {
                    let (o0, rest) = lo.split_at_mut(1);
                    let (o1, rest) = rest.split_at_mut(1);
                    let (o2, o3) = rest.split_at_mut(1);
                    element_rhs_apply_member_lanes(
                        &bop, nlev, ptop, &tiles[0], &tiles[1], &tiles[2], &tiles[3], &tphis,
                        &tiles[4], &tiles[5], &tiles[6], &tiles[7], c_dt, &mut o0[0], &mut o1[0],
                        &mut o2[0], &mut o3[0], &mut ms,
                    );
                }
                for (f, fi) in lo.iter().enumerate() {
                    let got = scatter(fi, live, n);
                    for m in 0..live {
                        assert_eq!(
                            bits(&eo[m][f]),
                            bits(&got[m]),
                            "nlev={nlev} live={live} m={m} field={f}"
                        );
                    }
                }
            }
        }
    }
}
