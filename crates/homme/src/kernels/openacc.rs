//! OpenACC directive variants of the Table-1 kernels (paper Section 7.2,
//! Algorithm 1).
//!
//! Each kernel is described to the `swacc` tools as a loop nest with array
//! clauses; the tools pick the collapse and the LDM tiling, and the
//! directive executor charges the schedule's characteristic costs:
//! per-iteration re-transfer of collapse-invariant arrays (no staging point
//! between collapsed loops), scalar-only flops, spawn overhead per region.
//! The bodies compute the same answers as the reference kernels.

use super::{KernelData, KernelId};
use crate::euler::tracer_flux_divergence;
use crate::remap::remap_column_ppm;
use crate::rhs::element_rhs_raw;
use cubesphere::NPTS;
use swacc::{AccRegion, ArrayRef, Intent, Loop, LoopNest};
use sw26010::{CpeCluster, KernelReport, SharedSlice, SharedSliceMut};

/// Compile the directive region for `kernel` on a `data`-shaped workspace.
pub fn region_for(kernel: KernelId, data: &KernelData) -> AccRegion {
    let (nelem, nlev, qsize) = (data.nelem, data.nlev, data.qsize);
    let nest = match kernel {
        KernelId::EulerStep => LoopNest {
            name: "euler_step".into(),
            loops: vec![
                Loop::parallel("ie", nelem),
                Loop::parallel("q", qsize),
                Loop::parallel("k", nlev),
            ],
            arrays: vec![
                ArrayRef {
                    name: "qdp".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 1, 2],
                    elems_per_point: NPTS,
                    intent: Intent::InOut,
                },
                ArrayRef {
                    name: "u".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 2],
                    elems_per_point: NPTS,
                    intent: Intent::In,
                },
                ArrayRef {
                    name: "v".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 2],
                    elems_per_point: NPTS,
                    intent: Intent::In,
                },
                ArrayRef {
                    name: "dp3d".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 2],
                    elems_per_point: NPTS,
                    intent: Intent::In,
                },
                // The remaining q-invariant inputs of the real euler_step
                // (derived vn0/vstar x2 each, divdp, dpdiss_biharmonic and
                // two Qtens work arrays) plus the per-element metric
                // constants — all re-read per (ie, q) iteration under the
                // collapse(2) schedule.
                ArrayRef {
                    name: "derived".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 2],
                    elems_per_point: 8 * NPTS,
                    intent: Intent::In,
                },
                ArrayRef {
                    name: "metric".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0],
                    elems_per_point: 5 * NPTS / 16, // amortized per level point
                    intent: Intent::In,
                },
            ],
            flops_per_point: 28 * NPTS as u64,
        },
        KernelId::ComputeAndApplyRhs => LoopNest {
            name: "compute_and_apply_rhs".into(),
            loops: vec![
                Loop::parallel("ie", nelem),
                // The vertical scans serialize the level loop: the directive
                // compiler cannot parallelize it (this is the kernel the
                // paper reports as *slower* than one Intel core pre-redesign).
                Loop::sequential("k", nlev),
            ],
            arrays: vec![
                ArrayRef {
                    name: "state".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 1],
                    elems_per_point: 4 * NPTS, // u v t dp
                    intent: Intent::In,
                },
                ArrayRef {
                    name: "tend".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 1],
                    elems_per_point: 4 * NPTS,
                    intent: Intent::Out,
                },
            ],
            flops_per_point: 165 * NPTS as u64,
        },
        KernelId::VerticalRemap => LoopNest {
            name: "vertical_remap".into(),
            loops: vec![Loop::parallel("ie", nelem), Loop::parallel("p", NPTS)],
            arrays: vec![ArrayRef {
                name: "columns".into(),
                elem_bytes: 8,
                // Column-strided access: the whole column of every remapped
                // field per (ie, p) iteration.
                indexed_by: vec![0, 1],
                elems_per_point: nlev * (4 + qsize) * 2,
                intent: Intent::InOut,
            }],
            flops_per_point: (40 * (3 + qsize) * nlev) as u64,
        },
        KernelId::HypervisDp1 | KernelId::HypervisDp2 | KernelId::BiharmonicDp3d => {
            let (name, fields, flops): (&str, usize, u64) = match kernel {
                KernelId::HypervisDp1 => ("hypervis_dp1", 3, 122),
                KernelId::HypervisDp2 => ("hypervis_dp2", 3, 244),
                _ => ("biharmonic_dp3d", 1, 94),
            };
            LoopNest {
                name: name.into(),
                loops: vec![Loop::parallel("ie", nelem), Loop::parallel("k", nlev)],
                arrays: vec![
                    ArrayRef {
                        name: "in".into(),
                        elem_bytes: 8,
                        indexed_by: vec![0, 1],
                        elems_per_point: fields * NPTS,
                        intent: Intent::In,
                    },
                    ArrayRef {
                        name: "out".into(),
                        elem_bytes: 8,
                        indexed_by: vec![0, 1],
                        elems_per_point: fields * NPTS,
                        intent: Intent::Out,
                    },
                ],
                flops_per_point: flops * NPTS as u64,
            }
        }
    };
    AccRegion::compile(nest).expect("directive region compiles")
}

/// `euler_step`, OpenACC variant (Algorithm 1: re-reads `u`, `v`, `dp`
/// every tracer iteration).
pub fn euler_step(cluster: &CpeCluster, data: &mut KernelData, dt: f64) -> KernelReport {
    let region = region_for(KernelId::EulerStep, data);
    let (nlev, qsize) = (data.nlev, data.qsize);
    let ops = &data.ops;
    let u = SharedSlice::new(&data.u);
    let v = SharedSlice::new(&data.v);
    let dp = SharedSlice::new(&data.dp3d);
    let qdp = SharedSlice::new(&data.qdp);
    let out = SharedSliceMut::new(&mut data.out_a);
    region.run(cluster, |ctx, idx, krange| {
        // Collapse may take 2 or 3 loops depending on sizes.
        let (ie, q, ks) = match idx.len() {
            2 => (idx[0], idx[1], None),
            _ => (idx[0], idx[1], Some(idx[2])),
        };
        let levels: Vec<usize> = match ks {
            Some(k) => vec![k],
            None => krange.collect(),
        };
        for k in levels {
            let r = (ie * nlev + k) * NPTS..(ie * nlev + k + 1) * NPTS;
            let rq = ((ie * qsize + q) * nlev + k) * NPTS..((ie * qsize + q) * nlev + k + 1) * NPTS;
            let mut tend = [0.0; NPTS];
            tracer_flux_divergence(
                &ops[ie],
                u.range(r.clone()),
                v.range(r.clone()),
                dp.range(r.clone()),
                qdp.range(rq.clone()),
                &mut tend,
            );
            let mut o = [0.0; NPTS];
            for p in 0..NPTS {
                o[p] = qdp.range(rq.clone())[p] + dt * tend[p];
            }
            out.write(rq.start, &o, ctx.id());
        }
    })
}

/// `compute_and_apply_rhs`, OpenACC variant.
///
/// The Fortran kernel interleaves the RHS with the DSS accumulation, so the
/// element loop carries a cross-element dependence the directive compiler
/// cannot break, and the vertical scans serialize the level loop. The
/// Sunway OpenACC fallback therefore runs the kernel *serially on one CPE*,
/// tile-copying its working set — the configuration the paper measures at
/// 6x slower than one Intel core (Table 1: 75.11 s vs 12.69 s).
pub fn compute_and_apply_rhs(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    let nelem = data.nelem;
    let nlev = data.nlev;
    let ptop = data.ptop;
    let ops = &data.ops;
    let flops = super::op_count(KernelId::ComputeAndApplyRhs, data).flops;
    let u = SharedSlice::new(&data.u);
    let v = SharedSlice::new(&data.v);
    let t = SharedSlice::new(&data.t);
    let dp = SharedSlice::new(&data.dp3d);
    let phis = SharedSlice::new(&data.phis);
    let tu = SharedSliceMut::new(&mut data.tend_u);
    let tv = SharedSliceMut::new(&mut data.tend_v);
    let tt = SharedSliceMut::new(&mut data.tend_t);
    let tdp = SharedSliceMut::new(&mut data.tend_dp);
    cluster.run(|ctx| {
        if ctx.id() != 0 {
            return; // serialized: 63 CPEs idle
        }
        let n = nlev * NPTS;
        let mut out_u = vec![0.0; n];
        let mut out_v = vec![0.0; n];
        let mut out_t = vec![0.0; n];
        let mut out_dp = vec![0.0; n];
        let mut scratch = crate::rhs::RhsScratch::new(nlev);
        for ie in 0..nelem {
            let r = ie * n..(ie + 1) * n;
            // Tiled copyin of the 5 input fields and copyout of 4 outputs.
            ctx.charge_dma_traffic(5 * n * 8, true);
            element_rhs_raw(
                &ops[ie],
                nlev,
                ptop,
                u.range(r.clone()),
                v.range(r.clone()),
                t.range(r.clone()),
                dp.range(r.clone()),
                phis.range(ie * NPTS..(ie + 1) * NPTS),
                &mut out_u,
                &mut out_v,
                &mut out_t,
                &mut out_dp,
                &mut scratch,
            );
            tu.write(r.start, &out_u, ctx.id());
            tv.write(r.start, &out_v, ctx.id());
            tt.write(r.start, &out_t, ctx.id());
            tdp.write(r.start, &out_dp, ctx.id());
            ctx.charge_dma_traffic(4 * n * 8, false);
        }
        // All arithmetic retires scalar on the single active CPE.
        ctx.charge_sflops(flops);
    })
}

/// `vertical_remap`, OpenACC variant: per-(element, point) column remap
/// with strided column gathers (the axis-switch penalty the Athread
/// transposition removes).
pub fn vertical_remap(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    let region = region_for(KernelId::VerticalRemap, data);
    let (nlev, qsize) = (data.nlev, data.qsize);
    let u = SharedSlice::new(&data.u);
    let v = SharedSlice::new(&data.v);
    let t = SharedSlice::new(&data.t);
    let dp = SharedSlice::new(&data.dp3d);
    let qdp = SharedSlice::new(&data.qdp);
    let tu = SharedSliceMut::new(&mut data.tend_u);
    let tv = SharedSliceMut::new(&mut data.tend_v);
    let tt = SharedSliceMut::new(&mut data.tend_t);
    let tdp = SharedSliceMut::new(&mut data.tend_dp);
    let out_q = SharedSliceMut::new(&mut data.out_a);
    region.run(cluster, |ctx, idx, _range| {
        let (ie, p) = (idx[0], idx[1]);
        let mut src = vec![0.0; nlev];
        let mut dst = vec![0.0; nlev];
        let mut col = vec![0.0; nlev];
        let mut out = vec![0.0; nlev];
        let at = |k: usize| (ie * nlev + k) * NPTS + p;
        let mut total = 0.0;
        for k in 0..nlev {
            src[k] = dp.get(at(k));
            total += src[k];
        }
        for k in 0..nlev {
            dst[k] = total / nlev as f64;
        }
        for (f, (input, output)) in
            [(&u, &tu), (&v, &tv), (&t, &tt)].into_iter().enumerate()
        {
            let _ = f;
            for k in 0..nlev {
                col[k] = input.get(at(k));
            }
            remap_column_ppm(&src, &col, &dst, &mut out).expect("remap");
            for k in 0..nlev {
                output.set(at(k), out[k], ctx.id());
            }
        }
        for q in 0..qsize {
            let atq = |k: usize| ((ie * qsize + q) * nlev + k) * NPTS + p;
            for k in 0..nlev {
                col[k] = qdp.get(atq(k)) / src[k];
            }
            remap_column_ppm(&src, &col, &dst, &mut out).expect("remap");
            for k in 0..nlev {
                out_q.set(atq(k), out[k] * dst[k], ctx.id());
            }
        }
        for k in 0..nlev {
            tdp.set(at(k), dst[k], ctx.id());
        }
    })
}

/// The three viscosity kernels share a per-(element, level) schedule.
fn viscosity(
    cluster: &CpeCluster,
    data: &mut KernelData,
    kernel: KernelId,
) -> KernelReport {
    let region = region_for(kernel, data);
    let nlev = data.nlev;
    let ops = &data.ops;
    let u = SharedSlice::new(&data.u);
    let v = SharedSlice::new(&data.v);
    let t = SharedSlice::new(&data.t);
    let dp = SharedSlice::new(&data.dp3d);
    let tu = SharedSliceMut::new(&mut data.tend_u);
    let tv = SharedSliceMut::new(&mut data.tend_v);
    let tt = SharedSliceMut::new(&mut data.tend_t);
    let tdp = SharedSliceMut::new(&mut data.tend_dp);
    region.run(cluster, |ctx, idx, _| {
        let (ie, k) = (idx[0], idx[1]);
        let r = (ie * nlev + k) * NPTS..(ie * nlev + k + 1) * NPTS;
        let op = &ops[ie];
        match kernel {
            KernelId::HypervisDp1 => {
                let mut lu = [0.0; NPTS];
                let mut lv = [0.0; NPTS];
                op.vlaplace_sphere(u.range(r.clone()), v.range(r.clone()), &mut lu, &mut lv);
                let mut lt = [0.0; NPTS];
                op.laplace_sphere(t.range(r.clone()), &mut lt);
                tu.write(r.start, &lu, ctx.id());
                tv.write(r.start, &lv, ctx.id());
                tt.write(r.start, &lt, ctx.id());
            }
            KernelId::HypervisDp2 => {
                let mut lu = [0.0; NPTS];
                let mut lv = [0.0; NPTS];
                op.vlaplace_sphere(u.range(r.clone()), v.range(r.clone()), &mut lu, &mut lv);
                let mut lu2 = [0.0; NPTS];
                let mut lv2 = [0.0; NPTS];
                op.vlaplace_sphere(&lu, &lv, &mut lu2, &mut lv2);
                let mut lt = [0.0; NPTS];
                op.laplace_sphere(t.range(r.clone()), &mut lt);
                let mut lt2 = [0.0; NPTS];
                op.laplace_sphere(&lt, &mut lt2);
                tu.write(r.start, &lu2, ctx.id());
                tv.write(r.start, &lv2, ctx.id());
                tt.write(r.start, &lt2, ctx.id());
            }
            _ => {
                let mut l1 = [0.0; NPTS];
                op.laplace_sphere(dp.range(r.clone()), &mut l1);
                let mut l2 = [0.0; NPTS];
                op.laplace_sphere(&l1, &mut l2);
                tdp.write(r.start, &l2, ctx.id());
            }
        }
    })
}

/// `hypervis_dp1`, OpenACC variant.
pub fn hypervis_dp1(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    viscosity(cluster, data, KernelId::HypervisDp1)
}

/// `hypervis_dp2`, OpenACC variant.
pub fn hypervis_dp2(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    viscosity(cluster, data, KernelId::HypervisDp2)
}

/// `biharmonic_dp3d`, OpenACC variant.
pub fn biharmonic_dp3d(cluster: &CpeCluster, data: &mut KernelData) -> KernelReport {
    viscosity(cluster, data, KernelId::BiharmonicDp3d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::reference;
    use crate::kernels::KernelData;

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn openacc_euler_matches_reference_with_redundant_traffic() {
        let cluster = CpeCluster::with_defaults();
        let mut ref_data = KernelData::synth(16, 16, 4, 21);
        let mut acc_data = ref_data.clone();
        reference::euler_step(&mut ref_data, 120.0);
        let report = euler_step(&cluster, &mut acc_data, 120.0);
        assert_eq!(ref_data.out_a, acc_data.out_a, "same floating-point answer");
        // The directive schedule re-reads u, v, dp for every tracer: DMA-in
        // must scale with qsize even though only qdp depends on q.
        let field = 16 * 16 * NPTS * 8; // one 3-D field in bytes
        assert!(
            report.counters.dma_bytes_in as usize >= 4 * field * 4,
            "expected q-redundant transfers, got {}",
            report.counters.dma_bytes_in
        );
        assert_eq!(report.counters.vflops, 0, "directives cannot vectorize");
    }

    #[test]
    fn openacc_rhs_matches_reference() {
        let cluster = CpeCluster::with_defaults();
        let mut ref_data = KernelData::synth(12, 16, 0, 22);
        let mut acc_data = ref_data.clone();
        reference::compute_and_apply_rhs(&mut ref_data);
        let report = compute_and_apply_rhs(&cluster, &mut acc_data);
        assert_eq!(ref_data.tend_u, acc_data.tend_u);
        assert_eq!(ref_data.tend_t, acc_data.tend_t);
        // Only 12 elements of parallelism for 64 CPEs.
        assert!(!region_for(KernelId::ComputeAndApplyRhs, &ref_data).plan.sufficient_parallelism);
        let _ = report;
    }

    #[test]
    fn openacc_remap_matches_reference() {
        let cluster = CpeCluster::with_defaults();
        let mut ref_data = KernelData::synth(6, 16, 2, 23);
        let mut acc_data = ref_data.clone();
        reference::vertical_remap(&mut ref_data);
        vertical_remap(&cluster, &mut acc_data);
        assert!(max_diff(&ref_data.tend_u, &acc_data.tend_u) < 1e-12);
        assert!(max_diff(&ref_data.out_a, &acc_data.out_a) < 1e-12);
        assert!(max_diff(&ref_data.tend_dp, &acc_data.tend_dp) < 1e-12);
    }

    #[test]
    fn openacc_viscosity_matches_reference() {
        let cluster = CpeCluster::with_defaults();
        let mut ref_data = KernelData::synth(6, 8, 0, 24);
        let mut acc_data = ref_data.clone();
        reference::hypervis_dp1(&mut ref_data);
        hypervis_dp1(&cluster, &mut acc_data);
        assert_eq!(ref_data.tend_u, acc_data.tend_u);
        let mut ref2 = KernelData::synth(6, 8, 0, 25);
        let mut acc2 = ref2.clone();
        reference::biharmonic_dp3d(&mut ref2);
        biharmonic_dp3d(&cluster, &mut acc2);
        assert_eq!(ref2.tend_dp, acc2.tend_dp);
        let mut ref3 = KernelData::synth(6, 8, 0, 26);
        let mut acc3 = ref3.clone();
        reference::hypervis_dp2(&mut ref3);
        hypervis_dp2(&cluster, &mut acc3);
        assert_eq!(ref3.tend_u, acc3.tend_u);
        assert_eq!(ref3.tend_t, acc3.tend_t);
    }
}
