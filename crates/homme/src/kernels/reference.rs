//! Reference (plain Rust / "Intel") implementations of the six kernels.
//!
//! These are the ground truth every other variant must match bit-for-bit
//! (or to strict tolerance where summation order differs), and the code the
//! single-rank dycore driver runs. Timing on conventional CPUs is modeled
//! by pricing [`crate::kernels::op_count`] on a
//! [`sw26010::CpuCoreModel`] / [`sw26010::Mpe`] roofline.

use super::KernelData;
use crate::euler::tracer_flux_divergence;
use crate::remap::remap_column_ppm;
use crate::rhs::{element_rhs_raw, RhsScratch};
use cubesphere::NPTS;

/// `compute_and_apply_rhs`: tendencies into `tend_*`.
pub fn compute_and_apply_rhs(data: &mut KernelData) {
    let nlev = data.nlev;
    let mut scratch = RhsScratch::new(nlev);
    for e in 0..data.nelem {
        let r = e * nlev * NPTS..(e + 1) * nlev * NPTS;
        let rp = e * NPTS..(e + 1) * NPTS;
        // Split the tendency arrays element-wise to satisfy the borrow
        // checker while keeping the flat layout.
        let (tu, tv, tt, tdp) = (
            &mut data.tend_u[r.clone()],
            &mut data.tend_v[r.clone()],
            &mut data.tend_t[r.clone()],
            &mut data.tend_dp[r.clone()],
        );
        element_rhs_raw(
            &data.ops[e],
            nlev,
            data.ptop,
            &data.u[r.clone()],
            &data.v[r.clone()],
            &data.t[r.clone()],
            &data.dp3d[r.clone()],
            &data.phis[rp],
            tu,
            tv,
            tt,
            tdp,
            &mut scratch,
        );
    }
}

/// `euler_step`: one tracer advection sub-step,
/// `out_a = qdp + dt * (-div(v q dp))`.
pub fn euler_step(data: &mut KernelData, dt: f64) {
    let nlev = data.nlev;
    for e in 0..data.nelem {
        for q in 0..data.qsize {
            for k in 0..nlev {
                let r = data.at(e, k, 0)..data.at(e, k, 0) + NPTS;
                let rq = data.atq(e, q, k, 0)..data.atq(e, q, k, 0) + NPTS;
                let mut tend = [0.0; NPTS];
                tracer_flux_divergence(
                    &data.ops[e],
                    &data.u[r.clone()],
                    &data.v[r.clone()],
                    &data.dp3d[r.clone()],
                    &data.qdp[rq.clone()],
                    &mut tend,
                );
                for p in 0..NPTS {
                    data.out_a[rq.start + p] = data.qdp[rq.start + p] + dt * tend[p];
                }
            }
        }
    }
}

/// `vertical_remap`: remap u, v, T (into `tend_u/v/t`), tracers (into
/// `out_a`) and the new reference `dp` (into `tend_dp`). The target grid is
/// uniform thickness per column — the kernel-benchmark stand-in for the
/// reference hybrid levels (same arithmetic, no vertical-coordinate table
/// needed in the workspace).
pub fn vertical_remap(data: &mut KernelData) {
    let nlev = data.nlev;
    let mut src = vec![0.0; nlev];
    let mut dst = vec![0.0; nlev];
    let mut col = vec![0.0; nlev];
    let mut out = vec![0.0; nlev];
    for e in 0..data.nelem {
        for p in 0..NPTS {
            let mut total = 0.0;
            for k in 0..nlev {
                src[k] = data.dp3d[data.at(e, k, p)];
                total += src[k];
            }
            for k in 0..nlev {
                dst[k] = total / nlev as f64;
            }
            // u, v, T.
            for f in 0..3 {
                for k in 0..nlev {
                    col[k] = match f {
                        0 => data.u[data.at(e, k, p)],
                        1 => data.v[data.at(e, k, p)],
                        _ => data.t[data.at(e, k, p)],
                    };
                }
                remap_column_ppm(&src, &col, &dst, &mut out).expect("remap");
                for k in 0..nlev {
                    let i = data.at(e, k, p);
                    match f {
                        0 => data.tend_u[i] = out[k],
                        1 => data.tend_v[i] = out[k],
                        _ => data.tend_t[i] = out[k],
                    }
                }
            }
            // Tracers: mixing ratio remap.
            for q in 0..data.qsize {
                for k in 0..nlev {
                    col[k] = data.qdp[data.atq(e, q, k, p)] / src[k];
                }
                remap_column_ppm(&src, &col, &dst, &mut out).expect("remap");
                for k in 0..nlev {
                    let i = data.atq(e, q, k, p);
                    data.out_a[i] = out[k] * dst[k];
                }
            }
            for k in 0..nlev {
                let i = data.at(e, k, p);
                data.tend_dp[i] = dst[k];
            }
        }
    }
}

/// `hypervis_dp1`: element-local Laplacian viscosity operator on momentum
/// and temperature. `tend_u/v` get the vector Laplacian, `tend_t` the
/// scalar Laplacian.
pub fn hypervis_dp1(data: &mut KernelData) {
    let nlev = data.nlev;
    for e in 0..data.nelem {
        let op = &data.ops[e];
        for k in 0..nlev {
            let r = data.at(e, k, 0)..data.at(e, k, 0) + NPTS;
            let mut lu = [0.0; NPTS];
            let mut lv = [0.0; NPTS];
            op.vlaplace_sphere(&data.u[r.clone()], &data.v[r.clone()], &mut lu, &mut lv);
            let mut lt = [0.0; NPTS];
            op.laplace_sphere(&data.t[r.clone()], &mut lt);
            data.tend_u[r.clone()].copy_from_slice(&lu);
            data.tend_v[r.clone()].copy_from_slice(&lv);
            data.tend_t[r.clone()].copy_from_slice(&lt);
        }
    }
}

/// `hypervis_dp2`: element-local *hyper* viscosity (double Laplacian) on
/// momentum and temperature.
pub fn hypervis_dp2(data: &mut KernelData) {
    let nlev = data.nlev;
    for e in 0..data.nelem {
        let op = &data.ops[e];
        for k in 0..nlev {
            let r = data.at(e, k, 0)..data.at(e, k, 0) + NPTS;
            let mut lu = [0.0; NPTS];
            let mut lv = [0.0; NPTS];
            op.vlaplace_sphere(&data.u[r.clone()], &data.v[r.clone()], &mut lu, &mut lv);
            let mut lu2 = [0.0; NPTS];
            let mut lv2 = [0.0; NPTS];
            op.vlaplace_sphere(&lu, &lv, &mut lu2, &mut lv2);
            let mut lt = [0.0; NPTS];
            op.laplace_sphere(&data.t[r.clone()], &mut lt);
            let mut lt2 = [0.0; NPTS];
            op.laplace_sphere(&lt, &mut lt2);
            data.tend_u[r.clone()].copy_from_slice(&lu2);
            data.tend_v[r.clone()].copy_from_slice(&lv2);
            data.tend_t[r.clone()].copy_from_slice(&lt2);
        }
    }
}

/// `biharmonic_dp3d`: element-local weak biharmonic operator on `dp3d`
/// into `tend_dp`.
pub fn biharmonic_dp3d(data: &mut KernelData) {
    let nlev = data.nlev;
    for e in 0..data.nelem {
        let op = &data.ops[e];
        for k in 0..nlev {
            let r = data.at(e, k, 0)..data.at(e, k, 0) + NPTS;
            let mut l1 = [0.0; NPTS];
            op.laplace_sphere(&data.dp3d[r.clone()], &mut l1);
            let mut l2 = [0.0; NPTS];
            op.laplace_sphere(&l1, &mut l2);
            data.tend_dp[r.clone()].copy_from_slice(&l2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rhs_reference_matches_dycore_path() {
        // The kernel-workspace RHS must agree exactly with the Rhs struct
        // used by the driver (same function underneath).
        use crate::rhs::{ElemTend, Rhs};
        use crate::state::{Dims, State};
        use crate::vert::VertCoord;
        let mut data = KernelData::synth(4, 8, 0, 7);
        compute_and_apply_rhs(&mut data);
        let dims = Dims { nlev: 8, qsize: 0 };
        // VertCoord only supplies ptop here; synth uses ptop = 200.
        let rhs = Rhs::new(VertCoord::standard(8, 200.0), dims);
        // The state arena uses the same flat (e, k, p) layout as the
        // kernel workspace, so the fields copy over wholesale.
        let mut st = State::zeros(dims, data.nelem);
        st.u.copy_from_slice(&data.u);
        st.v.copy_from_slice(&data.v);
        st.t.copy_from_slice(&data.t);
        st.dp3d.copy_from_slice(&data.dp3d);
        st.phis.copy_from_slice(&data.phis);
        let mut tend = ElemTend::zeros(dims);
        let mut scratch = RhsScratch::new(8);
        for e in 0..data.nelem {
            rhs.element_tend(&data.ops[e], st.elem(e), &mut tend, &mut scratch);
            let r = e * 8 * NPTS..(e + 1) * 8 * NPTS;
            for (i, gi) in r.enumerate() {
                assert_eq!(tend.u[i], data.tend_u[gi]);
                assert_eq!(tend.t[i], data.tend_t[gi]);
            }
        }
    }

    #[test]
    fn euler_step_free_stream() {
        // q uniform = c: updated qdp stays consistent with dp advection:
        // out = qdp - dt c div(v dp). With u = v = 0 nothing moves at all.
        let mut data = KernelData::synth(3, 4, 2, 9);
        for x in data.u.iter_mut() {
            *x = 0.0;
        }
        for x in data.v.iter_mut() {
            *x = 0.0;
        }
        euler_step(&mut data, 100.0);
        for (o, q) in data.out_a.iter().zip(&data.qdp) {
            assert_eq!(o, q, "zero wind must not move tracers");
        }
    }

    #[test]
    fn vertical_remap_conserves_columns() {
        let mut data = KernelData::synth(2, 12, 1, 3);
        vertical_remap(&mut data);
        for e in 0..data.nelem {
            for p in 0..NPTS {
                let m_u_before: f64 =
                    (0..12).map(|k| data.u[data.at(e, k, p)] * data.dp3d[data.at(e, k, p)]).sum();
                let m_u_after: f64 = (0..12)
                    .map(|k| data.tend_u[data.at(e, k, p)] * data.tend_dp[data.at(e, k, p)])
                    .sum();
                assert!(
                    (m_u_before - m_u_after).abs() < 1e-8 * m_u_before.abs().max(1.0),
                    "momentum not conserved: {m_u_before} vs {m_u_after}"
                );
                let q_before: f64 = (0..12).map(|k| data.qdp[data.atq(e, 0, k, p)]).sum();
                let q_after: f64 = (0..12).map(|k| data.out_a[data.atq(e, 0, k, p)]).sum();
                assert!((q_before - q_after).abs() < 1e-8 * q_before.max(1e-12));
            }
        }
    }

    #[test]
    fn hypervis_variants_are_consistent() {
        // dp2 must equal dp1 applied twice (element-local, same operator).
        let mut d1 = KernelData::synth(2, 4, 0, 5);
        let mut d2 = d1.clone();
        hypervis_dp2(&mut d2);
        hypervis_dp1(&mut d1);
        // Feed dp1's output back as input.
        d1.u.copy_from_slice(&d1.tend_u.clone());
        d1.v.copy_from_slice(&d1.tend_v.clone());
        d1.t.copy_from_slice(&d1.tend_t.clone());
        hypervis_dp1(&mut d1);
        for (a, b) in d1.tend_u.iter().zip(&d2.tend_u) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1e-20), "{a} vs {b}");
        }
        for (a, b) in d1.tend_t.iter().zip(&d2.tend_t) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1e-20), "{a} vs {b}");
        }
    }

    #[test]
    fn biharmonic_dp3d_annihilates_constants() {
        let mut data = KernelData::synth(2, 3, 0, 11);
        for x in data.dp3d.iter_mut() {
            *x = 750.0;
        }
        biharmonic_dp3d(&mut data);
        for &x in &data.tend_dp {
            assert!(x.abs() < 1e-12, "{x}");
        }
    }
}
