//! Host-side 4-wide blocked kernels — the vectorized kernel layer.
//!
//! The paper's redesign (Sections 5–6) vectorizes CAM-SE's element kernels
//! over the 256-bit lanes of the SW26010 CPE and keeps per-element operator
//! tables resident in LDM across the tracer loop. This module is the host
//! analogue: every horizontal operator and both vertical scans are expressed
//! over [`V4F64`] rows of the 4x4 GLL quadrature grid, with **lanes mapped to
//! independent columns** (the four points of one `i`-row). Because a lane
//! never mixes with its neighbours except through the same reduction order
//! the scalar operators use, every kernel here is **bitwise identical** to
//! its scalar reference in [`crate::deriv::ElemOps`] / [`crate::rhs`] — the
//! scalar path stays in the tree as the parity oracle, and the proptest
//! suite pins the equivalence across shapes.
//!
//! On top of the lane mapping, the layer fuses the way the paper fuses:
//!
//! * [`element_rhs_apply_blocked`] runs both column scans, every horizontal
//!   operator, the omega scan, and the `state += dt * tend` apply in **one
//!   pass per level**, eliminating the `divdp`/`vgrad_p`/`omega_p` arrays,
//!   the per-element tendency buffers, and a duplicated `grad(p_mid)`
//!   evaluation of the scalar pipeline.
//! * [`euler_stage_element_blocked`] hoists the `u*dp`/`v*dp` mass fluxes
//!   out of the `qsize` loop (the paper's LDM data reuse across tracers)
//!   and folds the SSP Runge–Kutta stage combination into the same pass.
//!
//! All of it is pure data movement plus reorderings that IEEE-754 makes
//! exact (multiplication commutes bitwise; identical expressions evaluate
//! to identical bits), so the blocked path can be the **default** without
//! perturbing a single pinned trajectory.

use crate::deriv::ElemOps;
use crate::remap::{ElemRemapPlan, RemapApplyScratch, REMAP_CHUNK};
use crate::rhs::{geopotential_scan_blocked, pressure_scan_blocked, RhsScratch};
use cubesphere::consts::{CP, RD};
use cubesphere::{pidx, NP, NPTS};
use sw26010::{transpose4x4, V4F64};

/// Which kernel implementation a dycore driver dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// Scalar reference kernels — retained as the bitwise parity oracle.
    Scalar,
    /// 4-wide blocked kernels (bitwise identical to `Scalar`).
    #[default]
    Blocked,
}

/// How a blocked Euler tracer stage combines its advected value with the
/// stage-0 tracer mass (the SSP RK3 stage weights of the scalar driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageCombine {
    /// Stage 1: `out = t`.
    Replace,
    /// Stage 2: `out = 3/4 q0 + 1/4 t`.
    Ssp2,
    /// Stage 3: `out = q0/3 + 2/3 t`.
    Ssp3,
}

/// Load a 16-point field as four row vectors (`rows[i]`, lanes `j`).
#[inline(always)]
pub fn load_rows(s: &[f64]) -> [V4F64; NP] {
    [
        V4F64::load(&s[0..]),
        V4F64::load(&s[NP..]),
        V4F64::load(&s[2 * NP..]),
        V4F64::load(&s[3 * NP..]),
    ]
}

/// Store four row vectors back to a 16-point field.
#[inline(always)]
pub fn store_rows(rows: &[V4F64; NP], dst: &mut [f64]) {
    for (i, r) in rows.iter().enumerate() {
        r.store(&mut dst[i * NP..]);
    }
}

/// Per-element operator tables repacked for row-blocked evaluation: the
/// metric tensors become four-lane vectors indexed `[..][row]`, and the GLL
/// derivative matrix is kept in both row-major (`dvv`) and transposed
/// (`dvvt`) form so either tensor contraction direction is a row operation.
#[derive(Debug, Clone)]
pub struct BlockedOps {
    /// Derivative matrix rows: `dvv[i]` lane `k` = `L_k'(x_i)`.
    pub dvv: [V4F64; NP],
    /// Transposed derivative matrix: `dvvt[k]` lane `j` = `dvv[j][k]`.
    pub dvvt: [V4F64; NP],
    /// Reference-to-cube derivative scale.
    pub dscale: f64,
    /// `dinv[a][b][row]` lane `j` = `ElemOps::dinv[pidx(row, j)][a][b]`.
    pub dinv: [[[V4F64; NP]; 2]; 2],
    /// `d[a][b][row]` likewise.
    pub d: [[[V4F64; NP]; 2]; 2],
    /// Jacobian determinant rows.
    pub metdet: [V4F64; NP],
    /// `1 / metdet` rows.
    pub rmetdet: [V4F64; NP],
    /// Coriolis parameter rows.
    pub fcor: [V4F64; NP],
    /// DSS/quadrature weight rows.
    pub spheremp: [V4F64; NP],
}

impl BlockedOps {
    /// Repack one element's scalar operator tables.
    pub fn new(op: &ElemOps) -> Self {
        let dvv = load_rows(&op.dvv);
        let dvvt = transpose4x4(dvv);
        let mut dinv = [[[V4F64::zero(); NP]; 2]; 2];
        let mut d = [[[V4F64::zero(); NP]; 2]; 2];
        for a in 0..2 {
            for b in 0..2 {
                for r in 0..NP {
                    for j in 0..NP {
                        dinv[a][b][r][j] = op.dinv[pidx(r, j)][a][b];
                        d[a][b][r][j] = op.d[pidx(r, j)][a][b];
                    }
                }
            }
        }
        let pack = |src: &[f64; NPTS]| load_rows(src);
        BlockedOps {
            dvv,
            dvvt,
            dscale: op.dscale,
            dinv,
            d,
            metdet: pack(&op.metdet),
            rmetdet: pack(&op.rmetdet),
            fcor: pack(&op.fcor),
            spheremp: pack(&op.spheremp),
        }
    }

    /// `d/dalpha` and `d/dbeta` of a row-blocked nodal field.
    ///
    /// Lane-exact image of [`ElemOps::deriv_ab`]: the alpha contraction uses
    /// a lane-invariant coefficient (`dvv[i][k]` splatted), the beta
    /// contraction a lane-varying one (`dvvt[k]`), each accumulated in the
    /// scalar order `k = 0..NP`.
    #[inline]
    pub fn deriv_ab(&self, s: &[V4F64; NP]) -> ([V4F64; NP], [V4F64; NP]) {
        let mut da = [V4F64::zero(); NP];
        let mut db = [V4F64::zero(); NP];
        for i in 0..NP {
            let mut acc_a = V4F64::zero();
            let mut acc_b = V4F64::zero();
            for k in 0..NP {
                acc_a = acc_a + V4F64::splat(self.dvv[i][k]) * s[k];
                acc_b = acc_b + self.dvvt[k] * V4F64::splat(s[i][k]);
            }
            da[i] = acc_a * self.dscale;
            db[i] = acc_b * self.dscale;
        }
        (da, db)
    }

    /// Physical gradient of a row-blocked scalar ([`ElemOps::gradient_sphere`]).
    #[inline]
    pub fn gradient(&self, s: &[V4F64; NP]) -> ([V4F64; NP], [V4F64; NP]) {
        let (da, db) = self.deriv_ab(s);
        let mut gx = [V4F64::zero(); NP];
        let mut gy = [V4F64::zero(); NP];
        for r in 0..NP {
            gx[r] = self.dinv[0][0][r] * da[r] + self.dinv[1][0][r] * db[r];
            gy[r] = self.dinv[0][1][r] * da[r] + self.dinv[1][1][r] * db[r];
        }
        (gx, gy)
    }

    /// Divergence of a row-blocked vector field ([`ElemOps::divergence_sphere`]).
    ///
    /// The scalar kernel interleaves both contraction directions in a single
    /// accumulator per `k`; that exact order is preserved.
    #[inline]
    pub fn divergence(&self, u: &[V4F64; NP], v: &[V4F64; NP]) -> [V4F64; NP] {
        let mut gv1 = [V4F64::zero(); NP];
        let mut gv2 = [V4F64::zero(); NP];
        for r in 0..NP {
            let c1 = self.dinv[0][0][r] * u[r] + self.dinv[0][1][r] * v[r];
            let c2 = self.dinv[1][0][r] * u[r] + self.dinv[1][1][r] * v[r];
            gv1[r] = self.metdet[r] * c1;
            gv2[r] = self.metdet[r] * c2;
        }
        let mut div = [V4F64::zero(); NP];
        for i in 0..NP {
            let mut acc = V4F64::zero();
            for k in 0..NP {
                acc = acc + V4F64::splat(self.dvv[i][k]) * gv1[k];
                acc = acc + self.dvvt[k] * V4F64::splat(gv2[i][k]);
            }
            div[i] = acc * self.dscale * self.rmetdet[i];
        }
        div
    }

    /// Relative vorticity of a row-blocked vector field
    /// ([`ElemOps::vorticity_sphere`]): separate accumulators per direction.
    #[inline]
    pub fn vorticity(&self, u: &[V4F64; NP], v: &[V4F64; NP]) -> [V4F64; NP] {
        let mut ucov = [V4F64::zero(); NP];
        let mut vcov = [V4F64::zero(); NP];
        for r in 0..NP {
            ucov[r] = self.d[0][0][r] * u[r] + self.d[1][0][r] * v[r];
            vcov[r] = self.d[0][1][r] * u[r] + self.d[1][1][r] * v[r];
        }
        let mut vort = [V4F64::zero(); NP];
        for i in 0..NP {
            let mut dv_da = V4F64::zero();
            let mut du_db = V4F64::zero();
            for k in 0..NP {
                dv_da = dv_da + V4F64::splat(self.dvv[i][k]) * vcov[k];
                du_db = du_db + self.dvvt[k] * V4F64::splat(ucov[i][k]);
            }
            vort[i] = (dv_da - du_db) * self.dscale * self.rmetdet[i];
        }
        vort
    }

    /// Weak-form scalar Laplacian ([`ElemOps::laplace_sphere_wk`]): the two
    /// contraction loops stay sequential (all `i` terms, then all `j`
    /// terms), matching the scalar accumulation order.
    #[inline]
    pub fn laplace_wk(&self, s: &[V4F64; NP]) -> [V4F64; NP] {
        let (gx, gy) = self.gradient(s);
        let mut c1 = [V4F64::zero(); NP];
        let mut c2 = [V4F64::zero(); NP];
        for r in 0..NP {
            c1[r] = self.spheremp[r] * (self.dinv[0][0][r] * gx[r] + self.dinv[0][1][r] * gy[r]);
            c2[r] = self.spheremp[r] * (self.dinv[1][0][r] * gx[r] + self.dinv[1][1][r] * gy[r]);
        }
        let mut out = [V4F64::zero(); NP];
        for a in 0..NP {
            let mut acc = V4F64::zero();
            for i in 0..NP {
                acc = acc + V4F64::splat(self.dvv[i][a]) * c1[i];
            }
            for j in 0..NP {
                acc = acc + self.dvv[j] * V4F64::splat(c2[a][j]);
            }
            out[a] = acc * (-self.dscale) / self.spheremp[a];
        }
        out
    }

    /// Curl of a row-blocked scalar field ([`ElemOps::curl_sphere`]).
    #[inline]
    pub fn curl(&self, psi: &[V4F64; NP]) -> ([V4F64; NP], [V4F64; NP]) {
        let (da, db) = self.deriv_ab(psi);
        let mut cx = [V4F64::zero(); NP];
        let mut cy = [V4F64::zero(); NP];
        for r in 0..NP {
            let c1 = db[r] * self.rmetdet[r];
            let c2 = -da[r] * self.rmetdet[r];
            cx[r] = self.d[0][0][r] * c1 + self.d[0][1][r] * c2;
            cy[r] = self.d[1][0][r] * c1 + self.d[1][1][r] * c2;
        }
        (cx, cy)
    }

    /// Vector Laplacian via `grad(div) - curl(vort)` ([`ElemOps::vlaplace_sphere`]).
    #[inline]
    pub fn vlaplace(&self, u: &[V4F64; NP], v: &[V4F64; NP]) -> ([V4F64; NP], [V4F64; NP]) {
        let div = self.divergence(u, v);
        let vort = self.vorticity(u, v);
        let (gdx, gdy) = self.gradient(&div);
        let (cx, cy) = self.curl(&vort);
        let mut lu = [V4F64::zero(); NP];
        let mut lv = [V4F64::zero(); NP];
        for r in 0..NP {
            lu[r] = gdx[r] - cx[r];
            lv[r] = gdy[r] - cy[r];
        }
        (lu, lv)
    }
}

/// Repack the operator tables of every element.
pub fn build_blocked_ops(ops: &[ElemOps]) -> Vec<BlockedOps> {
    ops.iter().map(BlockedOps::new).collect()
}

/// Fused blocked RHS: scans + horizontal operators + omega scan + tendency
/// apply for one element, in one pass per level.
///
/// Replaces `element_rhs_raw` followed by the `out = base + c_dt * tend`
/// apply loop. Only the scan buffers of `scratch` are used; the
/// `divdp`/`vgrad_p`/`omega_p` arrays and the tendency buffers of the
/// scalar pipeline never materialize.
#[allow(clippy::too_many_arguments)]
pub fn element_rhs_apply_blocked(
    bop: &BlockedOps,
    nlev: usize,
    ptop: f64,
    eval_u: &[f64],
    eval_v: &[f64],
    eval_t: &[f64],
    eval_dp3d: &[f64],
    phis: &[f64],
    base_u: &[f64],
    base_v: &[f64],
    base_t: &[f64],
    base_dp3d: &[f64],
    c_dt: f64,
    out_u: &mut [f64],
    out_v: &mut [f64],
    out_t: &mut [f64],
    out_dp3d: &mut [f64],
    scratch: &mut RhsScratch,
) {
    pressure_scan_blocked(nlev, ptop, eval_dp3d, &mut scratch.p_int, &mut scratch.p_mid);
    geopotential_scan_blocked(
        nlev,
        phis,
        eval_t,
        &scratch.p_int,
        &scratch.p_mid,
        &mut scratch.phi_mid,
    );

    let kappa = RD / CP;
    let half = V4F64::splat(0.5);
    // Running omega accumulator: sum of divdp over the levels above.
    let mut acc = [V4F64::zero(); NP];
    for k in 0..nlev {
        let o = k * NPTS;
        let u = load_rows(&eval_u[o..]);
        let v = load_rows(&eval_v[o..]);
        let t = load_rows(&eval_t[o..]);
        let dp = load_rows(&eval_dp3d[o..]);
        let pm = load_rows(&scratch.p_mid[o..]);
        let phi = load_rows(&scratch.phi_mid[o..]);

        let mut energy = [V4F64::zero(); NP];
        let mut gv1 = [V4F64::zero(); NP];
        let mut gv2 = [V4F64::zero(); NP];
        let mut ucov = [V4F64::zero(); NP];
        let mut vcov = [V4F64::zero(); NP];
        for r in 0..NP {
            let udp = u[r] * dp[r];
            let vdp = v[r] * dp[r];
            energy[r] = phi[r] + half * (u[r] * u[r] + v[r] * v[r]);
            let c1 = bop.dinv[0][0][r] * udp + bop.dinv[0][1][r] * vdp;
            let c2 = bop.dinv[1][0][r] * udp + bop.dinv[1][1][r] * vdp;
            gv1[r] = bop.metdet[r] * c1;
            gv2[r] = bop.metdet[r] * c2;
            ucov[r] = bop.d[0][0][r] * u[r] + bop.d[1][0][r] * v[r];
            vcov[r] = bop.d[0][1][r] * u[r] + bop.d[1][1][r] * v[r];
        }
        // Fused contraction: the five operator evaluations of the level
        // body (divergence of the mass flux, vorticity, and the gradients
        // of p_mid, energy and t — one grad(p_mid) feeds both the omega
        // term and the pressure force, which the scalar pipeline evaluates
        // twice) share a single (i, k) coefficient walk. Each output keeps
        // its own accumulators updated in the standalone operator's exact
        // order, so the committed bits are unchanged; fusing amortizes the
        // coefficient broadcasts and hands the CPU nine independent
        // dependency chains to pipeline instead of one or two.
        let mut divdp = [V4F64::zero(); NP];
        let mut vort = [V4F64::zero(); NP];
        let mut gpx = [V4F64::zero(); NP];
        let mut gpy = [V4F64::zero(); NP];
        let mut gex = [V4F64::zero(); NP];
        let mut gey = [V4F64::zero(); NP];
        let mut gtx = [V4F64::zero(); NP];
        let mut gty = [V4F64::zero(); NP];
        for i in 0..NP {
            let mut acc_div = V4F64::zero();
            let mut dv_da = V4F64::zero();
            let mut du_db = V4F64::zero();
            let mut pm_a = V4F64::zero();
            let mut pm_b = V4F64::zero();
            let mut en_a = V4F64::zero();
            let mut en_b = V4F64::zero();
            let mut t_a = V4F64::zero();
            let mut t_b = V4F64::zero();
            for kk in 0..NP {
                let ca = V4F64::splat(bop.dvv[i][kk]);
                let cb = bop.dvvt[kk];
                acc_div = acc_div + ca * gv1[kk];
                acc_div = acc_div + cb * V4F64::splat(gv2[i][kk]);
                dv_da = dv_da + ca * vcov[kk];
                du_db = du_db + cb * V4F64::splat(ucov[i][kk]);
                pm_a = pm_a + ca * pm[kk];
                pm_b = pm_b + cb * V4F64::splat(pm[i][kk]);
                en_a = en_a + ca * energy[kk];
                en_b = en_b + cb * V4F64::splat(energy[i][kk]);
                t_a = t_a + ca * t[kk];
                t_b = t_b + cb * V4F64::splat(t[i][kk]);
            }
            divdp[i] = acc_div * bop.dscale * bop.rmetdet[i];
            vort[i] = (dv_da - du_db) * bop.dscale * bop.rmetdet[i];
            let (da, db) = (pm_a * bop.dscale, pm_b * bop.dscale);
            gpx[i] = bop.dinv[0][0][i] * da + bop.dinv[1][0][i] * db;
            gpy[i] = bop.dinv[0][1][i] * da + bop.dinv[1][1][i] * db;
            let (da, db) = (en_a * bop.dscale, en_b * bop.dscale);
            gex[i] = bop.dinv[0][0][i] * da + bop.dinv[1][0][i] * db;
            gey[i] = bop.dinv[0][1][i] * da + bop.dinv[1][1][i] * db;
            let (da, db) = (t_a * bop.dscale, t_b * bop.dscale);
            gtx[i] = bop.dinv[0][0][i] * da + bop.dinv[1][0][i] * db;
            gty[i] = bop.dinv[0][1][i] * da + bop.dinv[1][1][i] * db;
        }

        for r in 0..NP {
            let ro = o + r * NP;
            let vgrad = u[r] * gpx[r] + v[r] * gpy[r];
            let omega = (vgrad - acc[r] - half * divdp[r]) / pm[r];
            acc[r] = acc[r] + divdp[r];
            let abs_vort = bop.fcor[r] + vort[r];
            let rtp = V4F64::splat(RD) * t[r] / pm[r];
            let tend_u = abs_vort * v[r] - gex[r] - rtp * gpx[r];
            let tend_v = -abs_vort * u[r] - gey[r] - rtp * gpy[r];
            let tend_t = -(u[r] * gtx[r] + v[r] * gty[r]) + V4F64::splat(kappa) * t[r] * omega;
            let tend_dp = -divdp[r];
            (V4F64::load(&base_u[ro..]) + tend_u * c_dt).store(&mut out_u[ro..]);
            (V4F64::load(&base_v[ro..]) + tend_v * c_dt).store(&mut out_v[ro..]);
            (V4F64::load(&base_t[ro..]) + tend_t * c_dt).store(&mut out_t[ro..]);
            (V4F64::load(&base_dp3d[ro..]) + tend_dp * c_dt).store(&mut out_dp3d[ro..]);
        }
    }
}

/// One blocked Euler tracer stage over one element: flux divergence,
/// forward-Euler update, and SSP stage combination fused into a single
/// pass, with the `u*dp`/`v*dp` mass fluxes hoisted out of the tracer loop.
///
/// `qdp_in` is the stage input, `q0` the stage-0 tracer mass (ignored for
/// [`StageCombine::Replace`]), `qdp_out` the combined stage output. Slices
/// are `[qsize][nlev][NPTS]` for the tracer arenas and `[nlev][NPTS]` for
/// the dynamics fields.
#[allow(clippy::too_many_arguments)]
pub fn euler_stage_element_blocked(
    bop: &BlockedOps,
    nlev: usize,
    qsize: usize,
    u: &[f64],
    v: &[f64],
    dp: &[f64],
    qdp_in: &[f64],
    q0: &[f64],
    dt: f64,
    combine: StageCombine,
    qdp_out: &mut [f64],
) {
    for k in 0..nlev {
        let o = k * NPTS;
        let ur = load_rows(&u[o..]);
        let vr = load_rows(&v[o..]);
        let dpr = load_rows(&dp[o..]);
        let mut udp = [V4F64::zero(); NP];
        let mut vdp = [V4F64::zero(); NP];
        for r in 0..NP {
            udp[r] = ur[r] * dpr[r];
            vdp[r] = vr[r] * dpr[r];
        }
        // Tracers go through the divergence QCHUNK at a time so one
        // (i, k) coefficient walk contracts several flux fields at once.
        // Each tracer keeps its own interleaved accumulator updated in the
        // one-tracer kernel's exact order — the committed bits don't move —
        // while the batch amortizes the coefficient broadcasts and overlaps
        // the chunk's dependency chains.
        const QCHUNK: usize = 4;
        let mut q = 0;
        while q < qsize {
            let m = (qsize - q).min(QCHUNK);
            let mut qin = [[V4F64::zero(); NP]; QCHUNK];
            let mut gv1 = [[V4F64::zero(); NP]; QCHUNK];
            let mut gv2 = [[V4F64::zero(); NP]; QCHUNK];
            for t in 0..m {
                let qo = ((q + t) * nlev + k) * NPTS;
                let qr = load_rows(&qdp_in[qo..]);
                for r in 0..NP {
                    let qv = qr[r] / dpr[r];
                    let fx = udp[r] * qv;
                    let fy = vdp[r] * qv;
                    let c1 = bop.dinv[0][0][r] * fx + bop.dinv[0][1][r] * fy;
                    let c2 = bop.dinv[1][0][r] * fx + bop.dinv[1][1][r] * fy;
                    gv1[t][r] = bop.metdet[r] * c1;
                    gv2[t][r] = bop.metdet[r] * c2;
                }
                qin[t] = qr;
            }
            for i in 0..NP {
                let mut acc = [V4F64::zero(); QCHUNK];
                for kk in 0..NP {
                    let ca = V4F64::splat(bop.dvv[i][kk]);
                    let cb = bop.dvvt[kk];
                    for (t, a) in acc.iter_mut().enumerate().take(m) {
                        *a = *a + ca * gv1[t][kk];
                        *a = *a + cb * V4F64::splat(gv2[t][i][kk]);
                    }
                }
                for (t, a) in acc.iter().enumerate().take(m) {
                    let div = *a * bop.dscale * bop.rmetdet[i];
                    let stage = qin[t][i] + (-div) * dt;
                    let qo = ((q + t) * nlev + k) * NPTS + i * NP;
                    let out = match combine {
                        StageCombine::Replace => stage,
                        StageCombine::Ssp2 => {
                            let q0r = V4F64::load(&q0[qo..]);
                            q0r * 0.75 + stage * 0.25
                        }
                        StageCombine::Ssp3 => {
                            let q0r = V4F64::load(&q0[qo..]);
                            q0r / V4F64::splat(3.0) + stage * (2.0 / 3.0)
                        }
                    };
                    out.store(&mut qdp_out[qo..]);
                }
            }
            q += m;
        }
    }
}

/// In-place blocked weak Laplacian over every level of one element field.
pub fn laplace_levels_blocked(bop: &BlockedOps, nlev: usize, field: &mut [f64]) {
    for k in 0..nlev {
        let o = k * NPTS;
        let rows = load_rows(&field[o..]);
        let lap = bop.laplace_wk(&rows);
        store_rows(&lap, &mut field[o..]);
    }
}

/// In-place blocked vector Laplacian over every level of one element's
/// `(u, v)` fields.
pub fn vlaplace_levels_blocked(bop: &BlockedOps, nlev: usize, u: &mut [f64], v: &mut [f64]) {
    for k in 0..nlev {
        let o = k * NPTS;
        let ur = load_rows(&u[o..]);
        let vr = load_rows(&v[o..]);
        let (lu, lv) = bop.vlaplace(&ur, &vr);
        store_rows(&lu, &mut u[o..]);
        store_rows(&lv, &mut v[o..]);
    }
}

/// Fused hyperviscosity Laplacian: the vector Laplacian of `(u, v)` and
/// `NS` scalar weak Laplacians through **two** shared coefficient walks
/// instead of the 2 + 2·NS walks of the standalone operators.
///
/// This is the paper's `hypervis_dp1/dp2` data-reuse move on the host: one
/// subcycle pass touches four fields (u, v, t, dp3d), and every one of them
/// contracts against the same `dvv`/`dvvt` tables and the same
/// metric rows. Walk 1 evaluates the divergence/vorticity contractions and
/// each scalar's `deriv_ab` under one `(i, kk)` coefficient broadcast, then
/// finishes the scalars' first weak-form contraction (`spheremp`-weighted
/// contravariant flux) per output row. Walk 2 evaluates the scalars' second
/// weak-form contraction together with `grad(div)` and `curl(vort)` under
/// one `(a, i)` broadcast (plus the scalars' trailing `j` contraction).
///
/// Every accumulator is private to one output and is updated in its
/// standalone operator's exact term order — `divergence` and `vorticity`
/// interleave their two contraction directions per `kk`, `laplace_wk` keeps
/// its `i`-terms strictly before its `j`-terms, `deriv_ab` interleaves per
/// `k` — so the committed bits are identical to calling [`BlockedOps::vlaplace`]
/// and [`BlockedOps::laplace_wk`] back to back. The fusion only amortizes
/// coefficient broadcasts and hands the CPU 2 + 3·NS independent dependency
/// chains per walk.
#[inline]
pub fn vlaplace_scalars_blocked<const NS: usize>(
    bop: &BlockedOps,
    u: &[V4F64; NP],
    v: &[V4F64; NP],
    s: &[[V4F64; NP]; NS],
) -> ([V4F64; NP], [V4F64; NP], [[V4F64; NP]; NS]) {
    // Walk-1 prologue: contravariant mass flux of (u, v) for the divergence
    // and the covariant components for the vorticity, per row.
    let mut gv1 = [V4F64::zero(); NP];
    let mut gv2 = [V4F64::zero(); NP];
    let mut ucov = [V4F64::zero(); NP];
    let mut vcov = [V4F64::zero(); NP];
    for r in 0..NP {
        let c1 = bop.dinv[0][0][r] * u[r] + bop.dinv[0][1][r] * v[r];
        let c2 = bop.dinv[1][0][r] * u[r] + bop.dinv[1][1][r] * v[r];
        gv1[r] = bop.metdet[r] * c1;
        gv2[r] = bop.metdet[r] * c2;
        ucov[r] = bop.d[0][0][r] * u[r] + bop.d[1][0][r] * v[r];
        vcov[r] = bop.d[0][1][r] * u[r] + bop.d[1][1][r] * v[r];
    }
    // Walk 1: div + vort + every scalar's weak-gradient fluxes under one
    // coefficient broadcast.
    let mut div = [V4F64::zero(); NP];
    let mut vort = [V4F64::zero(); NP];
    let mut c1s = [[V4F64::zero(); NP]; NS];
    let mut c2s = [[V4F64::zero(); NP]; NS];
    for i in 0..NP {
        let mut acc_div = V4F64::zero();
        let mut dv_da = V4F64::zero();
        let mut du_db = V4F64::zero();
        let mut s_a = [V4F64::zero(); NS];
        let mut s_b = [V4F64::zero(); NS];
        for kk in 0..NP {
            let ca = V4F64::splat(bop.dvv[i][kk]);
            let cb = bop.dvvt[kk];
            acc_div = acc_div + ca * gv1[kk];
            acc_div = acc_div + cb * V4F64::splat(gv2[i][kk]);
            dv_da = dv_da + ca * vcov[kk];
            du_db = du_db + cb * V4F64::splat(ucov[i][kk]);
            for t in 0..NS {
                s_a[t] = s_a[t] + ca * s[t][kk];
                s_b[t] = s_b[t] + cb * V4F64::splat(s[t][i][kk]);
            }
        }
        div[i] = acc_div * bop.dscale * bop.rmetdet[i];
        vort[i] = (dv_da - du_db) * bop.dscale * bop.rmetdet[i];
        for t in 0..NS {
            let (da, db) = (s_a[t] * bop.dscale, s_b[t] * bop.dscale);
            let gx = bop.dinv[0][0][i] * da + bop.dinv[1][0][i] * db;
            let gy = bop.dinv[0][1][i] * da + bop.dinv[1][1][i] * db;
            c1s[t][i] = bop.spheremp[i] * (bop.dinv[0][0][i] * gx + bop.dinv[0][1][i] * gy);
            c2s[t][i] = bop.spheremp[i] * (bop.dinv[1][0][i] * gx + bop.dinv[1][1][i] * gy);
        }
    }
    // Walk 2: the scalars' second weak-form contraction, grad(div) and
    // curl(vort) under one coefficient broadcast. The scalar `laplace_wk`
    // keeps its two contraction loops sequential (all `i` terms, then all
    // `j` terms) — `acc` honours that; `grad`/`curl` interleave per index
    // exactly as `deriv_ab` does.
    let mut lu = [V4F64::zero(); NP];
    let mut lv = [V4F64::zero(); NP];
    let mut ls = [[V4F64::zero(); NP]; NS];
    for a in 0..NP {
        let mut acc = [V4F64::zero(); NS];
        let mut d_a = V4F64::zero();
        let mut d_b = V4F64::zero();
        let mut v_a = V4F64::zero();
        let mut v_b = V4F64::zero();
        for i in 0..NP {
            let ci = V4F64::splat(bop.dvv[i][a]);
            for t in 0..NS {
                acc[t] = acc[t] + ci * c1s[t][i];
            }
            let ca = V4F64::splat(bop.dvv[a][i]);
            let cb = bop.dvvt[i];
            d_a = d_a + ca * div[i];
            d_b = d_b + cb * V4F64::splat(div[a][i]);
            v_a = v_a + ca * vort[i];
            v_b = v_b + cb * V4F64::splat(vort[a][i]);
        }
        for j in 0..NP {
            let cj = bop.dvv[j];
            for t in 0..NS {
                acc[t] = acc[t] + cj * V4F64::splat(c2s[t][a][j]);
            }
        }
        for t in 0..NS {
            ls[t][a] = acc[t] * (-bop.dscale) / bop.spheremp[a];
        }
        let (da, db) = (d_a * bop.dscale, d_b * bop.dscale);
        let gdx = bop.dinv[0][0][a] * da + bop.dinv[1][0][a] * db;
        let gdy = bop.dinv[0][1][a] * da + bop.dinv[1][1][a] * db;
        let (da, db) = (v_a * bop.dscale, v_b * bop.dscale);
        let cc1 = db * bop.rmetdet[a];
        let cc2 = -da * bop.rmetdet[a];
        let cx = bop.d[0][0][a] * cc1 + bop.d[0][1][a] * cc2;
        let cy = bop.d[1][0][a] * cc1 + bop.d[1][1][a] * cc2;
        lu[a] = gdx - cx;
        lv[a] = gdy - cy;
    }
    (lu, lv, ls)
}

/// One fused hyperviscosity Laplacian pass over every level of one element,
/// out of place: `(ou, ov, ot, odp) = (vlaplace(su, sv), lap(st), lap(sdp))`
/// with all four fields batched through the two shared coefficient walks of
/// [`vlaplace_scalars_blocked`]. Bitwise identical to
/// [`vlaplace_levels_blocked`] + 2× [`laplace_levels_blocked`] on copies.
#[allow(clippy::too_many_arguments)]
pub fn hypervis_pass_element_blocked(
    bop: &BlockedOps,
    nlev: usize,
    su: &[f64],
    sv: &[f64],
    st: &[f64],
    sdp: &[f64],
    ou: &mut [f64],
    ov: &mut [f64],
    ot: &mut [f64],
    odp: &mut [f64],
) {
    for k in 0..nlev {
        let o = k * NPTS;
        let u = load_rows(&su[o..]);
        let v = load_rows(&sv[o..]);
        let s = [load_rows(&st[o..]), load_rows(&sdp[o..])];
        let (lu, lv, ls) = vlaplace_scalars_blocked(bop, &u, &v, &s);
        store_rows(&lu, &mut ou[o..]);
        store_rows(&lv, &mut ov[o..]);
        store_rows(&ls[0], &mut ot[o..]);
        store_rows(&ls[1], &mut odp[o..]);
    }
}

/// In-place variant of [`hypervis_pass_element_blocked`] for the second
/// (biharmonic) pass, where the DSS'd first-pass Laplacians are overwritten
/// with their own Laplacians.
pub fn hypervis_pass_levels_blocked(
    bop: &BlockedOps,
    nlev: usize,
    u: &mut [f64],
    v: &mut [f64],
    t: &mut [f64],
    dp: &mut [f64],
) {
    for k in 0..nlev {
        let o = k * NPTS;
        let ur = load_rows(&u[o..]);
        let vr = load_rows(&v[o..]);
        let s = [load_rows(&t[o..]), load_rows(&dp[o..])];
        let (lu, lv, ls) = vlaplace_scalars_blocked(bop, &ur, &vr, &s);
        store_rows(&lu, &mut u[o..]);
        store_rows(&lv, &mut v[o..]);
        store_rows(&ls[0], &mut t[o..]);
        store_rows(&ls[1], &mut dp[o..]);
    }
}

/// Fused sponge-layer Laplacian over the top `ks` levels of one element,
/// out of place: the vector Laplacian of `(su, sv)` and the weak Laplacian
/// of `st` share the two coefficient walks (`NS = 1`). Bitwise identical to
/// [`vlaplace_levels_blocked`] + [`laplace_levels_blocked`] on copies.
#[allow(clippy::too_many_arguments)]
pub fn sponge_pass_element_blocked(
    bop: &BlockedOps,
    ks: usize,
    su: &[f64],
    sv: &[f64],
    st: &[f64],
    ou: &mut [f64],
    ov: &mut [f64],
    ot: &mut [f64],
) {
    for k in 0..ks {
        let o = k * NPTS;
        let u = load_rows(&su[o..]);
        let v = load_rows(&sv[o..]);
        let s = [load_rows(&st[o..])];
        let (lu, lv, ls) = vlaplace_scalars_blocked(bop, &u, &v, &s);
        store_rows(&lu, &mut ou[o..]);
        store_rows(&lv, &mut ov[o..]);
        store_rows(&ls[0], &mut ot[o..]);
    }
}

/// Member-batched variant of [`vlaplace_scalars_blocked`]: `M` independent
/// ensemble members share every coefficient broadcast of the two walks.
///
/// This is ROADMAP item 4's "lane dimension = member" move applied at the
/// coefficient-walk level: the `dvv`/`dvvt` splats and the metric rows are
/// loaded once per `(i, kk)` / `(a, i)` pair and contracted against all `M`
/// members' field rows, so the batched walk costs one coefficient stream for
/// `M` simulations instead of `M` streams. Every accumulator stays private
/// to one member's output and is updated in the standalone kernel's exact
/// term order, so member `m` of the batched result is **bitwise identical**
/// to calling [`vlaplace_scalars_blocked`] on member `m` alone — the pin the
/// ensemble parity suite enforces.
pub type MemberLaplacians<const M: usize, const NS: usize> =
    ([[V4F64; NP]; M], [[V4F64; NP]; M], [[[V4F64; NP]; NS]; M]);

#[inline]
pub fn vlaplace_scalars_members_blocked<const M: usize, const NS: usize>(
    bop: &BlockedOps,
    u: &[[V4F64; NP]; M],
    v: &[[V4F64; NP]; M],
    s: &[[[V4F64; NP]; NS]; M],
) -> MemberLaplacians<M, NS> {
    // Walk-1 prologue: contravariant mass flux and covariant components per
    // row, with the four metric vectors loaded once per row for all members.
    let mut gv1 = [[V4F64::zero(); NP]; M];
    let mut gv2 = [[V4F64::zero(); NP]; M];
    let mut ucov = [[V4F64::zero(); NP]; M];
    let mut vcov = [[V4F64::zero(); NP]; M];
    for r in 0..NP {
        let (di00, di01) = (bop.dinv[0][0][r], bop.dinv[0][1][r]);
        let (di10, di11) = (bop.dinv[1][0][r], bop.dinv[1][1][r]);
        let (d00, d01) = (bop.d[0][0][r], bop.d[0][1][r]);
        let (d10, d11) = (bop.d[1][0][r], bop.d[1][1][r]);
        let md = bop.metdet[r];
        for m in 0..M {
            let c1 = di00 * u[m][r] + di01 * v[m][r];
            let c2 = di10 * u[m][r] + di11 * v[m][r];
            gv1[m][r] = md * c1;
            gv2[m][r] = md * c2;
            ucov[m][r] = d00 * u[m][r] + d10 * v[m][r];
            vcov[m][r] = d01 * u[m][r] + d11 * v[m][r];
        }
    }
    // Walk 1: div + vort + every scalar's weak-gradient fluxes; one
    // `(i, kk)` coefficient broadcast feeds all members.
    let mut div = [[V4F64::zero(); NP]; M];
    let mut vort = [[V4F64::zero(); NP]; M];
    let mut c1s = [[[V4F64::zero(); NP]; NS]; M];
    let mut c2s = [[[V4F64::zero(); NP]; NS]; M];
    for i in 0..NP {
        let mut acc_div = [V4F64::zero(); M];
        let mut dv_da = [V4F64::zero(); M];
        let mut du_db = [V4F64::zero(); M];
        let mut s_a = [[V4F64::zero(); NS]; M];
        let mut s_b = [[V4F64::zero(); NS]; M];
        for kk in 0..NP {
            let ca = V4F64::splat(bop.dvv[i][kk]);
            let cb = bop.dvvt[kk];
            for m in 0..M {
                acc_div[m] = acc_div[m] + ca * gv1[m][kk];
                acc_div[m] = acc_div[m] + cb * V4F64::splat(gv2[m][i][kk]);
                dv_da[m] = dv_da[m] + ca * vcov[m][kk];
                du_db[m] = du_db[m] + cb * V4F64::splat(ucov[m][i][kk]);
                for t in 0..NS {
                    s_a[m][t] = s_a[m][t] + ca * s[m][t][kk];
                    s_b[m][t] = s_b[m][t] + cb * V4F64::splat(s[m][t][i][kk]);
                }
            }
        }
        for m in 0..M {
            div[m][i] = acc_div[m] * bop.dscale * bop.rmetdet[i];
            vort[m][i] = (dv_da[m] - du_db[m]) * bop.dscale * bop.rmetdet[i];
            for t in 0..NS {
                let (da, db) = (s_a[m][t] * bop.dscale, s_b[m][t] * bop.dscale);
                let gx = bop.dinv[0][0][i] * da + bop.dinv[1][0][i] * db;
                let gy = bop.dinv[0][1][i] * da + bop.dinv[1][1][i] * db;
                c1s[m][t][i] = bop.spheremp[i] * (bop.dinv[0][0][i] * gx + bop.dinv[0][1][i] * gy);
                c2s[m][t][i] = bop.spheremp[i] * (bop.dinv[1][0][i] * gx + bop.dinv[1][1][i] * gy);
            }
        }
    }
    // Walk 2: second weak-form contraction + grad(div) − curl(vort), again
    // one `(a, i)` broadcast for all members, per-member term order exactly
    // as in the single-member kernel.
    let mut lu = [[V4F64::zero(); NP]; M];
    let mut lv = [[V4F64::zero(); NP]; M];
    let mut ls = [[[V4F64::zero(); NP]; NS]; M];
    for a in 0..NP {
        let mut acc = [[V4F64::zero(); NS]; M];
        let mut d_a = [V4F64::zero(); M];
        let mut d_b = [V4F64::zero(); M];
        let mut v_a = [V4F64::zero(); M];
        let mut v_b = [V4F64::zero(); M];
        for i in 0..NP {
            let ci = V4F64::splat(bop.dvv[i][a]);
            let ca = V4F64::splat(bop.dvv[a][i]);
            let cb = bop.dvvt[i];
            for m in 0..M {
                for t in 0..NS {
                    acc[m][t] = acc[m][t] + ci * c1s[m][t][i];
                }
                d_a[m] = d_a[m] + ca * div[m][i];
                d_b[m] = d_b[m] + cb * V4F64::splat(div[m][a][i]);
                v_a[m] = v_a[m] + ca * vort[m][i];
                v_b[m] = v_b[m] + cb * V4F64::splat(vort[m][a][i]);
            }
        }
        for j in 0..NP {
            let cj = bop.dvv[j];
            for m in 0..M {
                for t in 0..NS {
                    acc[m][t] = acc[m][t] + cj * V4F64::splat(c2s[m][t][a][j]);
                }
            }
        }
        for m in 0..M {
            for t in 0..NS {
                ls[m][t][a] = acc[m][t] * (-bop.dscale) / bop.spheremp[a];
            }
            let (da, db) = (d_a[m] * bop.dscale, d_b[m] * bop.dscale);
            let gdx = bop.dinv[0][0][a] * da + bop.dinv[1][0][a] * db;
            let gdy = bop.dinv[0][1][a] * da + bop.dinv[1][1][a] * db;
            let (da, db) = (v_a[m] * bop.dscale, v_b[m] * bop.dscale);
            let cc1 = db * bop.rmetdet[a];
            let cc2 = -da * bop.rmetdet[a];
            let cx = bop.d[0][0][a] * cc1 + bop.d[0][1][a] * cc2;
            let cy = bop.d[1][0][a] * cc1 + bop.d[1][1][a] * cc2;
            lu[m][a] = gdx - cx;
            lv[m][a] = gdy - cy;
        }
    }
    (lu, lv, ls)
}

/// Member-batched first hyperviscosity pass over every level of one element,
/// out of place: `M` members' `(u, v, t, dp3d)` fields go through the shared
/// coefficient walks of [`vlaplace_scalars_members_blocked`]. Member `m` is
/// bitwise identical to [`hypervis_pass_element_blocked`] on member `m`.
#[allow(clippy::too_many_arguments)]
pub fn hypervis_pass_element_members_blocked<const M: usize>(
    bop: &BlockedOps,
    nlev: usize,
    su: &[&[f64]; M],
    sv: &[&[f64]; M],
    st: &[&[f64]; M],
    sdp: &[&[f64]; M],
    ou: &mut [&mut [f64]; M],
    ov: &mut [&mut [f64]; M],
    ot: &mut [&mut [f64]; M],
    odp: &mut [&mut [f64]; M],
) {
    for k in 0..nlev {
        let o = k * NPTS;
        let u: [[V4F64; NP]; M] = core::array::from_fn(|m| load_rows(&su[m][o..]));
        let v: [[V4F64; NP]; M] = core::array::from_fn(|m| load_rows(&sv[m][o..]));
        let s: [[[V4F64; NP]; 2]; M] =
            core::array::from_fn(|m| [load_rows(&st[m][o..]), load_rows(&sdp[m][o..])]);
        let (lu, lv, ls) = vlaplace_scalars_members_blocked::<M, 2>(bop, &u, &v, &s);
        for m in 0..M {
            store_rows(&lu[m], &mut ou[m][o..]);
            store_rows(&lv[m], &mut ov[m][o..]);
            store_rows(&ls[m][0], &mut ot[m][o..]);
            store_rows(&ls[m][1], &mut odp[m][o..]);
        }
    }
}

/// Member-batched in-place second (biharmonic) hyperviscosity pass: the
/// DSS'd first-pass Laplacians of `M` members are overwritten with their own
/// Laplacians through shared coefficient walks. Member `m` is bitwise
/// identical to [`hypervis_pass_levels_blocked`] on member `m`.
pub fn hypervis_pass_levels_members_blocked<const M: usize>(
    bop: &BlockedOps,
    nlev: usize,
    u: &mut [&mut [f64]; M],
    v: &mut [&mut [f64]; M],
    t: &mut [&mut [f64]; M],
    dp: &mut [&mut [f64]; M],
) {
    for k in 0..nlev {
        let o = k * NPTS;
        let ur: [[V4F64; NP]; M] = core::array::from_fn(|m| load_rows(&u[m][o..]));
        let vr: [[V4F64; NP]; M] = core::array::from_fn(|m| load_rows(&v[m][o..]));
        let s: [[[V4F64; NP]; 2]; M] =
            core::array::from_fn(|m| [load_rows(&t[m][o..]), load_rows(&dp[m][o..])]);
        let (lu, lv, ls) = vlaplace_scalars_members_blocked::<M, 2>(bop, &ur, &vr, &s);
        for m in 0..M {
            store_rows(&lu[m], &mut u[m][o..]);
            store_rows(&lv[m], &mut v[m][o..]);
            store_rows(&ls[m][0], &mut t[m][o..]);
            store_rows(&ls[m][1], &mut dp[m][o..]);
        }
    }
}

/// PPM reconstruction coefficients of one field from a prebuilt
/// [`ElemRemapPlan`], 4-wide over the GLL points: the interface values come
/// from the plan's precomputed interpolation weights (the per-interface
/// division the oracle repeats for every field is already paid), then the
/// monotonicity limiter runs per lane and the parabola is stored in the
/// apply form `a_l` / `0.5*(a_r - a_l)` / `a6` — exactly the products the
/// oracle's `cell_mass` forms first, so the walk stays bitwise identical.
fn ppm_coeffs_planned(
    plan: &ElemRemapPlan,
    nlev: usize,
    vals: &[f64],
    ae: &mut [f64],
    a_l: &mut [f64],
    hda: &mut [f64],
    a6: &mut [f64],
) {
    // Interface values: ae[0]/ae[nlev] copy the boundary cells; interior
    // interfaces are the thickness-weighted interpolation, one V4F64 row at
    // a time in the native [nlev][NPTS] layout (no transposition needed —
    // four adjacent GLL points are already contiguous).
    ae[..NPTS].copy_from_slice(&vals[..NPTS]);
    ae[nlev * NPTS..(nlev + 1) * NPTS].copy_from_slice(&vals[(nlev - 1) * NPTS..nlev * NPTS]);
    for k in 1..nlev {
        let o = k * NPTS;
        for r in 0..NP {
            let wl = V4F64::load(&plan.wl[o + r * NP..]);
            let wr = V4F64::load(&plan.wr[o + r * NP..]);
            let above = V4F64::load(&vals[o - NPTS + r * NP..]);
            let below = V4F64::load(&vals[o + r * NP..]);
            (wl * above + wr * below).store(&mut ae[o + r * NP..]);
        }
    }
    // Monotonicity limiter + coefficient extraction (branchy, so per lane;
    // the expressions are the oracle's character for character).
    for i in 0..nlev * NPTS {
        let a = vals[i];
        let mut l = ae[i];
        let mut r = ae[i + NPTS];
        if (r - a) * (a - l) <= 0.0 {
            // Local extremum: flatten.
            l = a;
            r = a;
        } else {
            let d = r - l;
            let c = a - 0.5 * (l + r);
            if d * c > d * d / 6.0 {
                l = 3.0 * a - 2.0 * r;
            } else if -(d * d) / 6.0 > d * c {
                r = 3.0 * a - 2.0 * l;
            }
        }
        a_l[i] = l;
        hda[i] = 0.5 * (r - l);
        a6[i] = 6.0 * (a - 0.5 * (l + r));
    }
}

/// Mass of source cell `k` (thickness `sdp`) from its top down to local
/// coordinate `xi`, with the geometry polynomial `q` pre-evaluated by the
/// plan: `sdp * ((a_l*xi + (0.5*da*xi)*xi) + a6*q)` — the oracle's
/// `cell_mass` with identical association.
#[inline(always)]
fn seg_mass(sdp: f64, al: f64, hd: f64, a6: f64, xi: f64, q: f64) -> f64 {
    sdp * ((al * xi + (hd * xi) * xi) + a6 * q)
}

/// Integrate up to [`REMAP_CHUNK`] dynamics fields through one shared
/// geometry walk: every overlap segment is visited once and its `cell_mass`
/// difference applied to all batched fields (the paper's §6 tracer-loop
/// data reuse). `outs[t]` receives `mass/dp_dst` in place.
fn apply_walk_fields(
    plan: &ElemRemapPlan,
    nlev: usize,
    src_dp: &[f64],
    a_l: &[f64],
    hda: &[f64],
    a6: &[f64],
    outs: &mut [&mut [f64]],
) {
    let m = outs.len();
    debug_assert!(m <= REMAP_CHUNK);
    let fl = nlev * NPTS;
    let mut s0 = 0usize;
    for p in 0..NPTS {
        for j in 0..nlev {
            let end = plan.seg_end[p * nlev + j] as usize;
            let mut mass = [0.0f64; REMAP_CHUNK];
            for seg in &plan.segs[s0..end] {
                let i = seg.k as usize * NPTS + p;
                let sdp = src_dp[i];
                for (t, acc) in mass[..m].iter_mut().enumerate() {
                    let o = t * fl + i;
                    *acc += seg_mass(sdp, a_l[o], hda[o], a6[o], seg.xi2, seg.q2)
                        - seg_mass(sdp, a_l[o], hda[o], a6[o], seg.xi1, seg.q1);
                }
            }
            s0 = end;
            let o = j * NPTS + p;
            let dpj = plan.dst_dp[o];
            for (t, out) in outs.iter_mut().enumerate() {
                out[o] = mass[t] / dpj;
            }
        }
    }
}

/// Tracer variant of [`apply_walk_fields`]: `out` is a contiguous
/// `[m][nlev][NPTS]` tracer-mass window and each remapped mixing ratio is
/// scaled back to mass by the target thickness, exactly as the oracle does
/// (`(mass/dp) * dp` is kept as division-then-multiply for bit parity).
#[allow(clippy::too_many_arguments)]
fn apply_walk_tracers(
    plan: &ElemRemapPlan,
    nlev: usize,
    src_dp: &[f64],
    m: usize,
    a_l: &[f64],
    hda: &[f64],
    a6: &[f64],
    out: &mut [f64],
) {
    debug_assert!(m <= REMAP_CHUNK);
    let fl = nlev * NPTS;
    let mut s0 = 0usize;
    for p in 0..NPTS {
        for j in 0..nlev {
            let end = plan.seg_end[p * nlev + j] as usize;
            let mut mass = [0.0f64; REMAP_CHUNK];
            for seg in &plan.segs[s0..end] {
                let i = seg.k as usize * NPTS + p;
                let sdp = src_dp[i];
                for (t, acc) in mass[..m].iter_mut().enumerate() {
                    let o = t * fl + i;
                    *acc += seg_mass(sdp, a_l[o], hda[o], a6[o], seg.xi2, seg.q2)
                        - seg_mass(sdp, a_l[o], hda[o], a6[o], seg.xi1, seg.q1);
                }
            }
            s0 = end;
            let o = j * NPTS + p;
            let dpj = plan.dst_dp[o];
            for (t, &acc) in mass[..m].iter().enumerate() {
                out[t * fl + o] = (acc / dpj) * dpj;
            }
        }
    }
}

/// Planned per-element vertical remap: the coefficient-apply pass over a
/// prebuilt [`ElemRemapPlan`]. `u`/`v`/`t` share one geometry walk; tracers
/// are divided to mixing ratio 4-wide, batched [`REMAP_CHUNK`] at a time
/// through further shared walks (mirroring
/// [`euler_stage_element_blocked`]'s tracer chunking), and scaled back to
/// mass; finally the plan's target thicknesses become the new `dp3d`.
/// Infallible — every verdict was raised by [`ElemRemapPlan::build`].
/// Bitwise identical to [`crate::remap::remap_element_scalar`].
#[allow(clippy::too_many_arguments)]
pub fn remap_element_planned(
    plan: &ElemRemapPlan,
    nlev: usize,
    qsize: usize,
    u: &mut [f64],
    v: &mut [f64],
    t: &mut [f64],
    dp3d: &mut [f64],
    qdp: &mut [f64],
    s: &mut RemapApplyScratch,
) {
    debug_assert_eq!(plan.nlev, nlev);
    let fl = nlev * NPTS;
    // Dynamics fields: three coefficient passes, one shared geometry walk.
    // The walk reads only the extracted coefficients and `dp3d` (still the
    // source grid), so writing u/v/t in place is safe.
    ppm_coeffs_planned(plan, nlev, u, &mut s.ae, &mut s.a_l[..fl], &mut s.hda[..fl], &mut s.a6[..fl]);
    ppm_coeffs_planned(
        plan,
        nlev,
        v,
        &mut s.ae,
        &mut s.a_l[fl..2 * fl],
        &mut s.hda[fl..2 * fl],
        &mut s.a6[fl..2 * fl],
    );
    ppm_coeffs_planned(
        plan,
        nlev,
        t,
        &mut s.ae,
        &mut s.a_l[2 * fl..3 * fl],
        &mut s.hda[2 * fl..3 * fl],
        &mut s.a6[2 * fl..3 * fl],
    );
    apply_walk_fields(plan, nlev, dp3d, &s.a_l, &s.hda, &s.a6, &mut [u, v, t]);
    // Tracers, REMAP_CHUNK per walk, remapped as mixing ratio so tracer
    // *mass* is conserved.
    let mut q0 = 0;
    while q0 < qsize {
        let m = REMAP_CHUNK.min(qsize - q0);
        for c in 0..m {
            let val = &mut s.val[c * fl..(c + 1) * fl];
            let qsrc = &qdp[(q0 + c) * fl..(q0 + c + 1) * fl];
            for ((o, &qv), &dv) in val.iter_mut().zip(qsrc).zip(dp3d.iter()) {
                *o = qv / dv;
            }
        }
        for c in 0..m {
            let (al, hd, a6) = (
                &mut s.a_l[c * fl..(c + 1) * fl],
                &mut s.hda[c * fl..(c + 1) * fl],
                &mut s.a6[c * fl..(c + 1) * fl],
            );
            ppm_coeffs_planned(plan, nlev, &s.val[c * fl..(c + 1) * fl], &mut s.ae, al, hd, a6);
        }
        apply_walk_tracers(
            plan,
            nlev,
            dp3d,
            m,
            &s.a_l,
            &s.hda,
            &s.a6,
            &mut qdp[q0 * fl..(q0 + m) * fl],
        );
        q0 += m;
    }
    // Install the target grid.
    dp3d.copy_from_slice(&plan.dst_dp[..fl]);
}

/// Single-field planned apply (the [`crate::remap::remap_field_with`]
/// back end): one coefficient pass, one walk, in place. `src_dp` must be
/// the `[nlev][NPTS]` source-thickness arena the plan was built from.
pub fn remap_field_planned(
    plan: &ElemRemapPlan,
    nlev: usize,
    src_dp: &[f64],
    field: &mut [f64],
    s: &mut RemapApplyScratch,
) {
    debug_assert_eq!(plan.nlev, nlev);
    let fl = nlev * NPTS;
    ppm_coeffs_planned(plan, nlev, field, &mut s.ae, &mut s.a_l[..fl], &mut s.hda[..fl], &mut s.a6[..fl]);
    apply_walk_fields(plan, nlev, src_dp, &s.a_l, &s.hda, &s.a6, &mut [field]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deriv::build_ops;
    use crate::euler::tracer_flux_divergence;
    use crate::rhs::element_rhs_raw;
    use cubesphere::CubedSphere;

    /// Deterministic pseudo-random field values in a physical-ish range.
    fn lcg_field(n: usize, seed: &mut u64, lo: f64, hi: f64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = ((*seed >> 11) as f64) / ((1u64 << 53) as f64);
                lo + u * (hi - lo)
            })
            .collect()
    }

    fn test_ops() -> Vec<ElemOps> {
        build_ops(&CubedSphere::new(2))
    }

    #[test]
    fn horizontal_operators_match_scalar_bitwise() {
        let ops = test_ops();
        let mut seed = 0x1234_5678_9abc_def0u64;
        for op in &ops {
            let bop = BlockedOps::new(op);
            let s = lcg_field(NPTS, &mut seed, -50.0, 50.0);
            let u = lcg_field(NPTS, &mut seed, -40.0, 40.0);
            let v = lcg_field(NPTS, &mut seed, -40.0, 40.0);

            let mut da = [0.0; NPTS];
            let mut db = [0.0; NPTS];
            op.deriv_ab(&s, &mut da, &mut db);
            let srows = load_rows(&s);
            let (bda, bdb) = bop.deriv_ab(&srows);
            let mut got = [0.0; NPTS];
            store_rows(&bda, &mut got);
            assert_eq!(da.map(f64::to_bits), got.map(f64::to_bits), "deriv da");
            store_rows(&bdb, &mut got);
            assert_eq!(db.map(f64::to_bits), got.map(f64::to_bits), "deriv db");

            let mut gx = [0.0; NPTS];
            let mut gy = [0.0; NPTS];
            op.gradient_sphere(&s, &mut gx, &mut gy);
            let (bgx, bgy) = bop.gradient(&srows);
            store_rows(&bgx, &mut got);
            assert_eq!(gx.map(f64::to_bits), got.map(f64::to_bits), "grad x");
            store_rows(&bgy, &mut got);
            assert_eq!(gy.map(f64::to_bits), got.map(f64::to_bits), "grad y");

            let urows = load_rows(&u);
            let vrows = load_rows(&v);
            let mut div = [0.0; NPTS];
            op.divergence_sphere(&u, &v, &mut div);
            store_rows(&bop.divergence(&urows, &vrows), &mut got);
            assert_eq!(div.map(f64::to_bits), got.map(f64::to_bits), "div");

            let mut vort = [0.0; NPTS];
            op.vorticity_sphere(&u, &v, &mut vort);
            store_rows(&bop.vorticity(&urows, &vrows), &mut got);
            assert_eq!(vort.map(f64::to_bits), got.map(f64::to_bits), "vort");

            let mut lap = [0.0; NPTS];
            op.laplace_sphere_wk(&s, &mut lap);
            store_rows(&bop.laplace_wk(&srows), &mut got);
            assert_eq!(lap.map(f64::to_bits), got.map(f64::to_bits), "laplace_wk");

            let mut cx = [0.0; NPTS];
            let mut cy = [0.0; NPTS];
            op.curl_sphere(&s, &mut cx, &mut cy);
            let (bcx, bcy) = bop.curl(&srows);
            store_rows(&bcx, &mut got);
            assert_eq!(cx.map(f64::to_bits), got.map(f64::to_bits), "curl x");
            store_rows(&bcy, &mut got);
            assert_eq!(cy.map(f64::to_bits), got.map(f64::to_bits), "curl y");

            let mut lu = [0.0; NPTS];
            let mut lv = [0.0; NPTS];
            op.vlaplace_sphere(&u, &v, &mut lu, &mut lv);
            let (blu, blv) = bop.vlaplace(&urows, &vrows);
            store_rows(&blu, &mut got);
            assert_eq!(lu.map(f64::to_bits), got.map(f64::to_bits), "vlaplace u");
            store_rows(&blv, &mut got);
            assert_eq!(lv.map(f64::to_bits), got.map(f64::to_bits), "vlaplace v");
        }
    }

    #[test]
    fn fused_rhs_matches_scalar_raw_plus_apply_bitwise() {
        let ops = test_ops();
        let mut seed = 0xfeed_cafe_d00d_f00du64;
        for nlev in [1usize, 3, 26] {
            let n = nlev * NPTS;
            let op = &ops[seed as usize % ops.len()];
            let bop = BlockedOps::new(op);
            let u = lcg_field(n, &mut seed, -30.0, 30.0);
            let v = lcg_field(n, &mut seed, -30.0, 30.0);
            let t = lcg_field(n, &mut seed, 220.0, 310.0);
            let dp = lcg_field(n, &mut seed, 200.0, 900.0);
            let phis = lcg_field(NPTS, &mut seed, 0.0, 5000.0);
            let base_u = lcg_field(n, &mut seed, -30.0, 30.0);
            let base_v = lcg_field(n, &mut seed, -30.0, 30.0);
            let base_t = lcg_field(n, &mut seed, 220.0, 310.0);
            let base_dp = lcg_field(n, &mut seed, 200.0, 900.0);
            let (ptop, c_dt) = (225.0, 37.5);

            let mut scratch = RhsScratch::new(nlev);
            let mut tu = vec![0.0; n];
            let mut tv = vec![0.0; n];
            let mut tt = vec![0.0; n];
            let mut tdp = vec![0.0; n];
            element_rhs_raw(
                op, nlev, ptop, &u, &v, &t, &dp, &phis, &mut tu, &mut tv, &mut tt, &mut tdp,
                &mut scratch,
            );
            let apply = |b: &[f64], tn: &[f64]| -> Vec<f64> {
                b.iter().zip(tn).map(|(&b, &t)| b + c_dt * t).collect()
            };
            let (eu, ev, et, edp) =
                (apply(&base_u, &tu), apply(&base_v, &tv), apply(&base_t, &tt), apply(&base_dp, &tdp));

            let mut ou = vec![0.0; n];
            let mut ov = vec![0.0; n];
            let mut ot = vec![0.0; n];
            let mut odp = vec![0.0; n];
            element_rhs_apply_blocked(
                &bop, nlev, ptop, &u, &v, &t, &dp, &phis, &base_u, &base_v, &base_t, &base_dp,
                c_dt, &mut ou, &mut ov, &mut ot, &mut odp, &mut scratch,
            );
            let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&eu), bits(&ou), "nlev={nlev} u");
            assert_eq!(bits(&ev), bits(&ov), "nlev={nlev} v");
            assert_eq!(bits(&et), bits(&ot), "nlev={nlev} t");
            assert_eq!(bits(&edp), bits(&odp), "nlev={nlev} dp3d");
        }
    }

    /// The fused 4-field hypervis pass and the 3-field sponge pass are
    /// bitwise identical to the standalone blocked Laplacians they replace
    /// (which are themselves pinned against the scalar oracle above).
    #[test]
    fn fused_hypervis_pass_matches_unfused_blocked_bitwise() {
        let ops = test_ops();
        let mut seed = 0xbadc_ab1e_5eedu64;
        for nlev in [1usize, 3, 26] {
            let n = nlev * NPTS;
            let op = &ops[seed as usize % ops.len()];
            let bop = BlockedOps::new(op);
            let u = lcg_field(n, &mut seed, -40.0, 40.0);
            let v = lcg_field(n, &mut seed, -40.0, 40.0);
            let t = lcg_field(n, &mut seed, 220.0, 310.0);
            let dp = lcg_field(n, &mut seed, 200.0, 900.0);

            let (mut eu, mut ev, mut et, mut edp) =
                (u.clone(), v.clone(), t.clone(), dp.clone());
            vlaplace_levels_blocked(&bop, nlev, &mut eu, &mut ev);
            laplace_levels_blocked(&bop, nlev, &mut et);
            laplace_levels_blocked(&bop, nlev, &mut edp);

            let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();

            // Out-of-place pass.
            let mut ou = vec![0.0; n];
            let mut ov = vec![0.0; n];
            let mut ot = vec![0.0; n];
            let mut odp = vec![0.0; n];
            hypervis_pass_element_blocked(
                &bop, nlev, &u, &v, &t, &dp, &mut ou, &mut ov, &mut ot, &mut odp,
            );
            assert_eq!(bits(&eu), bits(&ou), "nlev={nlev} u");
            assert_eq!(bits(&ev), bits(&ov), "nlev={nlev} v");
            assert_eq!(bits(&et), bits(&ot), "nlev={nlev} t");
            assert_eq!(bits(&edp), bits(&odp), "nlev={nlev} dp3d");

            // In-place pass.
            let (mut iu, mut iv, mut it, mut idp) =
                (u.clone(), v.clone(), t.clone(), dp.clone());
            hypervis_pass_levels_blocked(&bop, nlev, &mut iu, &mut iv, &mut it, &mut idp);
            assert_eq!(bits(&eu), bits(&iu), "in-place nlev={nlev} u");
            assert_eq!(bits(&ev), bits(&iv), "in-place nlev={nlev} v");
            assert_eq!(bits(&et), bits(&it), "in-place nlev={nlev} t");
            assert_eq!(bits(&edp), bits(&idp), "in-place nlev={nlev} dp3d");

            // Sponge pass (3 fields, top `ks` levels only).
            for ks in [1usize, nlev] {
                let mut su = vec![0.0; ks * NPTS];
                let mut sv = vec![0.0; ks * NPTS];
                let mut stf = vec![0.0; ks * NPTS];
                sponge_pass_element_blocked(
                    &bop, ks, &u, &v, &t, &mut su, &mut sv, &mut stf,
                );
                assert_eq!(bits(&eu[..ks * NPTS]), bits(&su), "sponge nlev={nlev} ks={ks} u");
                assert_eq!(bits(&ev[..ks * NPTS]), bits(&sv), "sponge nlev={nlev} ks={ks} v");
                assert_eq!(bits(&et[..ks * NPTS]), bits(&stf), "sponge nlev={nlev} ks={ks} t");
            }
        }
    }

    /// Every member of the member-batched hypervis passes is bitwise
    /// identical to the single-member fused pass run on that member alone —
    /// the kernel-level half of the ensemble parity pin.
    #[test]
    fn member_batched_hypervis_passes_match_single_member_bitwise() {
        fn check<const M: usize>(bop: &BlockedOps, nlev: usize, seed: &mut u64) {
            let n = nlev * NPTS;
            let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            let u: Vec<Vec<f64>> = (0..M).map(|_| lcg_field(n, seed, -40.0, 40.0)).collect();
            let v: Vec<Vec<f64>> = (0..M).map(|_| lcg_field(n, seed, -40.0, 40.0)).collect();
            let t: Vec<Vec<f64>> = (0..M).map(|_| lcg_field(n, seed, 220.0, 310.0)).collect();
            let dp: Vec<Vec<f64>> = (0..M).map(|_| lcg_field(n, seed, 200.0, 900.0)).collect();

            // Single-member oracle, per member.
            let mut eu = vec![vec![0.0; n]; M];
            let mut ev = vec![vec![0.0; n]; M];
            let mut et = vec![vec![0.0; n]; M];
            let mut edp = vec![vec![0.0; n]; M];
            for m in 0..M {
                hypervis_pass_element_blocked(
                    bop, nlev, &u[m], &v[m], &t[m], &dp[m], &mut eu[m], &mut ev[m], &mut et[m],
                    &mut edp[m],
                );
            }

            // Batched out-of-place pass.
            let mut ou = vec![vec![0.0; n]; M];
            let mut ov = vec![vec![0.0; n]; M];
            let mut ot = vec![vec![0.0; n]; M];
            let mut odp = vec![vec![0.0; n]; M];
            {
                let su: [&[f64]; M] = core::array::from_fn(|m| u[m].as_slice());
                let sv: [&[f64]; M] = core::array::from_fn(|m| v[m].as_slice());
                let st: [&[f64]; M] = core::array::from_fn(|m| t[m].as_slice());
                let sdp: [&[f64]; M] = core::array::from_fn(|m| dp[m].as_slice());
                let mut it_u = ou.iter_mut();
                let mut tu: [&mut [f64]; M] = core::array::from_fn(|_| &mut it_u.next().unwrap()[..]);
                let mut it_v = ov.iter_mut();
                let mut tv: [&mut [f64]; M] = core::array::from_fn(|_| &mut it_v.next().unwrap()[..]);
                let mut it_t = ot.iter_mut();
                let mut tt: [&mut [f64]; M] = core::array::from_fn(|_| &mut it_t.next().unwrap()[..]);
                let mut it_dp = odp.iter_mut();
                let mut tdp: [&mut [f64]; M] =
                    core::array::from_fn(|_| &mut it_dp.next().unwrap()[..]);
                hypervis_pass_element_members_blocked::<M>(
                    bop, nlev, &su, &sv, &st, &sdp, &mut tu, &mut tv, &mut tt, &mut tdp,
                );
            }
            for m in 0..M {
                assert_eq!(bits(&eu[m]), bits(&ou[m]), "M={M} nlev={nlev} member={m} u");
                assert_eq!(bits(&ev[m]), bits(&ov[m]), "M={M} nlev={nlev} member={m} v");
                assert_eq!(bits(&et[m]), bits(&ot[m]), "M={M} nlev={nlev} member={m} t");
                assert_eq!(bits(&edp[m]), bits(&odp[m]), "M={M} nlev={nlev} member={m} dp3d");
            }

            // Batched in-place pass (second biharmonic application).
            let mut iu = u.clone();
            let mut iv = v.clone();
            let mut it = t.clone();
            let mut idp = dp.clone();
            {
                let mut a = iu.iter_mut();
                let mut tu: [&mut [f64]; M] = core::array::from_fn(|_| &mut a.next().unwrap()[..]);
                let mut b = iv.iter_mut();
                let mut tv: [&mut [f64]; M] = core::array::from_fn(|_| &mut b.next().unwrap()[..]);
                let mut c = it.iter_mut();
                let mut tt: [&mut [f64]; M] = core::array::from_fn(|_| &mut c.next().unwrap()[..]);
                let mut d = idp.iter_mut();
                let mut tdp: [&mut [f64]; M] = core::array::from_fn(|_| &mut d.next().unwrap()[..]);
                hypervis_pass_levels_members_blocked::<M>(bop, nlev, &mut tu, &mut tv, &mut tt, &mut tdp);
            }
            for m in 0..M {
                assert_eq!(bits(&eu[m]), bits(&iu[m]), "in-place M={M} member={m} u");
                assert_eq!(bits(&ev[m]), bits(&iv[m]), "in-place M={M} member={m} v");
                assert_eq!(bits(&et[m]), bits(&it[m]), "in-place M={M} member={m} t");
                assert_eq!(bits(&edp[m]), bits(&idp[m]), "in-place M={M} member={m} dp3d");
            }
        }

        let ops = test_ops();
        let mut seed = 0x5eed_0f4e_u64;
        for nlev in [1usize, 3, 8] {
            let op = &ops[seed as usize % ops.len()];
            let bop = BlockedOps::new(op);
            check::<1>(&bop, nlev, &mut seed);
            check::<2>(&bop, nlev, &mut seed);
            check::<4>(&bop, nlev, &mut seed);
        }
    }

    #[test]
    fn euler_stage_matches_scalar_substep_and_combines_bitwise() {
        let ops = test_ops();
        let mut seed = 0x0dd_ba11u64;
        for (nlev, qsize) in [(1usize, 1usize), (3, 4), (26, 2)] {
            let n = nlev * NPTS;
            let tn = qsize * n;
            let op = &ops[(seed as usize) % ops.len()];
            let bop = BlockedOps::new(op);
            let u = lcg_field(n, &mut seed, -25.0, 25.0);
            let v = lcg_field(n, &mut seed, -25.0, 25.0);
            let dp = lcg_field(n, &mut seed, 300.0, 800.0);
            let qdp_in = lcg_field(tn, &mut seed, 0.0, 5.0);
            let q0 = lcg_field(tn, &mut seed, 0.0, 5.0);
            let dt = 45.0;

            // Scalar reference: per-tracer flux divergence, Euler update,
            // then the driver's stage-combination loop.
            let mut expect = vec![0.0; tn];
            for q in 0..qsize {
                for k in 0..nlev {
                    let r = k * NPTS..(k + 1) * NPTS;
                    let qo = (q * nlev + k) * NPTS;
                    let mut tend = [0.0; NPTS];
                    tracer_flux_divergence(
                        op,
                        &u[r.clone()],
                        &v[r.clone()],
                        &dp[r.clone()],
                        &qdp_in[qo..qo + NPTS],
                        &mut tend,
                    );
                    for p in 0..NPTS {
                        expect[qo + p] = qdp_in[qo + p] + dt * tend[p];
                    }
                }
            }
            for combine in [StageCombine::Replace, StageCombine::Ssp2, StageCombine::Ssp3] {
                let combined: Vec<f64> = match combine {
                    StageCombine::Replace => expect.clone(),
                    StageCombine::Ssp2 => {
                        q0.iter().zip(&expect).map(|(&q0, &t)| 0.75 * q0 + 0.25 * t).collect()
                    }
                    StageCombine::Ssp3 => {
                        q0.iter().zip(&expect).map(|(&q0, &t)| q0 / 3.0 + 2.0 / 3.0 * t).collect()
                    }
                };
                let mut got = vec![0.0; tn];
                euler_stage_element_blocked(
                    &bop, nlev, qsize, &u, &v, &dp, &qdp_in, &q0, dt, combine, &mut got,
                );
                assert_eq!(
                    combined.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "nlev={nlev} qsize={qsize} {combine:?}"
                );
            }
        }
    }
}
