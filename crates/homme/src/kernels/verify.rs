//! Unified kernel dispatch and cross-variant verification.
//!
//! [`run`] executes any (kernel, variant) pair on a workspace and returns
//! both the functional outputs (left in the workspace) and the *modeled*
//! execution time — Intel/MPE via roofline pricing of the analytic op
//! counts, OpenACC/Athread via the simulator's cycle accounting. The
//! benchmark harness (Table 1 / Figure 5) is a thin loop over this
//! function; the tests here pin the variant equivalences the paper's
//! correctness story depends on.

use super::{athread, op_count, openacc, reference, KernelData, KernelId, Variant};
use sw26010::{ChipConfig, Counters, CpeCluster, CpuCoreModel, Mpe};

/// Execution environment shared across kernel runs.
pub struct KernelEnv {
    /// The simulated CPE cluster (OpenACC/Athread variants).
    pub cluster: CpeCluster,
    /// One conventional CPU core (the Table-1 "Intel" column).
    pub cpu: CpuCoreModel,
}

impl Default for KernelEnv {
    fn default() -> Self {
        KernelEnv { cluster: CpeCluster::new(ChipConfig::default()), cpu: CpuCoreModel::default() }
    }
}

/// Result of one kernel invocation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Modeled wall time, seconds.
    pub seconds: f64,
    /// Retired-operation counters (simulator variants; roofline variants
    /// report the analytic counts).
    pub counters: Counters,
}

/// Tracer sub-step dt used by the kernel benchmarks.
pub const BENCH_DT: f64 = 150.0;

/// Run `kernel` in `variant` on `data`.
pub fn run(kernel: KernelId, variant: Variant, data: &mut KernelData, env: &KernelEnv) -> RunResult {
    data.clear_outputs();
    match variant {
        Variant::Reference => {
            run_functional(kernel, data);
            let oc = op_count(kernel, data);
            RunResult {
                seconds: env.cpu.seconds(oc.flops, oc.bytes),
                counters: Counters { sflops: oc.flops, gld_bytes: oc.bytes, ..Default::default() },
            }
        }
        Variant::Mpe => {
            run_functional(kernel, data);
            let oc = op_count(kernel, data);
            let mut mpe = Mpe::new();
            mpe.charge_flops(oc.flops);
            mpe.charge_mem(oc.bytes);
            RunResult {
                seconds: mpe.seconds(&env.cluster.config().cost),
                counters: mpe.counters(),
            }
        }
        Variant::OpenAcc => {
            let report = match kernel {
                KernelId::ComputeAndApplyRhs => openacc::compute_and_apply_rhs(&env.cluster, data),
                KernelId::EulerStep => openacc::euler_step(&env.cluster, data, BENCH_DT),
                KernelId::VerticalRemap => openacc::vertical_remap(&env.cluster, data),
                KernelId::HypervisDp1 => openacc::hypervis_dp1(&env.cluster, data),
                KernelId::HypervisDp2 => openacc::hypervis_dp2(&env.cluster, data),
                KernelId::BiharmonicDp3d => openacc::biharmonic_dp3d(&env.cluster, data),
            };
            RunResult {
                seconds: report.seconds(env.cluster.config()),
                counters: report.counters,
            }
        }
        Variant::Athread => {
            let report = match kernel {
                KernelId::ComputeAndApplyRhs => athread::compute_and_apply_rhs(&env.cluster, data),
                KernelId::EulerStep => athread::euler_step(&env.cluster, data, BENCH_DT),
                KernelId::VerticalRemap => athread::vertical_remap(&env.cluster, data),
                KernelId::HypervisDp1 => athread::hypervis_dp1(&env.cluster, data),
                KernelId::HypervisDp2 => athread::hypervis_dp2(&env.cluster, data),
                KernelId::BiharmonicDp3d => athread::biharmonic_dp3d(&env.cluster, data),
            };
            RunResult {
                seconds: report.seconds(env.cluster.config()),
                counters: report.counters,
            }
        }
    }
}

fn run_functional(kernel: KernelId, data: &mut KernelData) {
    match kernel {
        KernelId::ComputeAndApplyRhs => reference::compute_and_apply_rhs(data),
        KernelId::EulerStep => reference::euler_step(data, BENCH_DT),
        KernelId::VerticalRemap => reference::vertical_remap(data),
        KernelId::HypervisDp1 => reference::hypervis_dp1(data),
        KernelId::HypervisDp2 => reference::hypervis_dp2(data),
        KernelId::BiharmonicDp3d => reference::biharmonic_dp3d(data),
    }
}

/// Maximum absolute output difference between two workspaces after running
/// the same kernel.
pub fn output_diff(kernel: KernelId, a: &KernelData, b: &KernelData) -> f64 {
    let pairs: Vec<(&[f64], &[f64])> = match kernel {
        KernelId::ComputeAndApplyRhs => vec![
            (&a.tend_u, &b.tend_u),
            (&a.tend_v, &b.tend_v),
            (&a.tend_t, &b.tend_t),
            (&a.tend_dp, &b.tend_dp),
        ],
        KernelId::EulerStep => vec![(&a.out_a, &b.out_a)],
        KernelId::VerticalRemap => vec![
            (&a.tend_u, &b.tend_u),
            (&a.tend_v, &b.tend_v),
            (&a.tend_t, &b.tend_t),
            (&a.tend_dp, &b.tend_dp),
            (&a.out_a, &b.out_a),
        ],
        KernelId::HypervisDp1 | KernelId::HypervisDp2 => vec![
            (&a.tend_u, &b.tend_u),
            (&a.tend_v, &b.tend_v),
            (&a.tend_t, &b.tend_t),
        ],
        KernelId::BiharmonicDp3d => vec![(&a.tend_dp, &b.tend_dp)],
    };
    pairs
        .into_iter()
        .flat_map(|(x, y)| x.iter().zip(y).map(|(a, b)| (a - b).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Workspace sized so every variant's constraints hold
    /// (nlev % 32 == 0 for the Athread remap transposition).
    fn workspace() -> KernelData {
        KernelData::synth(16, 32, 3, 1234)
    }

    #[test]
    fn all_variants_agree_on_every_kernel() {
        let env = KernelEnv::default();
        for kernel in KernelId::ALL {
            let mut reference = workspace();
            run(kernel, Variant::Reference, &mut reference, &env);
            for variant in [Variant::Mpe, Variant::OpenAcc, Variant::Athread] {
                let mut other = workspace();
                run(kernel, variant, &mut other, &env);
                let diff = output_diff(kernel, &reference, &other);
                assert!(
                    diff < 1e-8,
                    "{} {variant:?} diverges from reference by {diff}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn modeled_times_reproduce_table1_ordering() {
        // The paper's Table 1 structure: MPE slower than Intel; Athread
        // faster than OpenACC; Athread beats Intel for every kernel.
        let env = KernelEnv::default();
        for kernel in KernelId::ALL {
            let mut d = workspace();
            let t_ref = run(kernel, Variant::Reference, &mut d, &env).seconds;
            let t_mpe = run(kernel, Variant::Mpe, &mut d, &env).seconds;
            let t_acc = run(kernel, Variant::OpenAcc, &mut d, &env).seconds;
            let t_ath = run(kernel, Variant::Athread, &mut d, &env).seconds;
            assert!(t_mpe > t_ref, "{}: MPE {t_mpe} vs Intel {t_ref}", kernel.name());
            assert!(t_ath < t_acc, "{}: Athread {t_ath} vs OpenACC {t_acc}", kernel.name());
            assert!(t_ath < t_ref, "{}: Athread {t_ath} vs Intel {t_ref}", kernel.name());
        }
    }

    #[test]
    fn athread_transfers_are_a_fraction_of_openacc() {
        // Section 7.3: "total data transfer size has been decreased to 10%
        // compared with the OpenACC solution". The exact ratio depends on
        // qsize; with 25 tracers the q-invariant re-reads dominate.
        let env = KernelEnv::default();
        let mut acc = KernelData::synth(16, 32, 25, 9);
        let mut ath = KernelData::synth(16, 32, 25, 9);
        let r_acc = run(KernelId::EulerStep, Variant::OpenAcc, &mut acc, &env);
        let r_ath = run(KernelId::EulerStep, Variant::Athread, &mut ath, &env);
        let ratio = r_ath.counters.mem_bytes() as f64 / r_acc.counters.mem_bytes() as f64;
        // Paper: "decreased to 10%" with the full Fortran array inventory;
        // with the six modeled q-invariant fields the reproduction reaches
        // ~0.15-0.2. EXPERIMENTS.md records the measured value.
        assert!(ratio < 0.25, "athread/openacc transfer ratio = {ratio}");
    }

    #[test]
    fn athread_flop_counters_match_analytic_formulas() {
        // The PERF-style counters retire exactly the flops the analytic
        // op_count charges (the formulas drive the roofline pricing, so
        // they must stay in sync with the kernels).
        let env = KernelEnv::default();
        for kernel in [KernelId::HypervisDp1, KernelId::BiharmonicDp3d] {
            let mut d = workspace();
            let oc = op_count(kernel, &d);
            let r = run(kernel, Variant::Athread, &mut d, &env);
            assert_eq!(r.counters.vflops, oc.flops, "{}", kernel.name());
        }
    }
}
