//! The six Table-1 kernels in four implementations.
//!
//! | Kernel                  | Paper description                                  |
//! |-------------------------|----------------------------------------------------|
//! | `compute_and_apply_rhs` | RHS + column scans + tendency accumulation         |
//! | `euler_step`            | SSP-RK2 tracer advection sub-step                  |
//! | `vertical_remap`        | PPM remap back to reference levels                 |
//! | `hypervis_dp1`          | regular (Laplacian) viscosity on momentum + T      |
//! | `hypervis_dp2`          | hyper (biharmonic) viscosity on momentum + T       |
//! | `biharmonic_dp3d`       | weak biharmonic operator on dp3d                   |
//!
//! Each kernel exists as:
//! * **Reference** — plain Rust, the implementation the single-rank dycore
//!   driver uses; also the "one Intel core" column of Table 1 via the
//!   [`sw26010::CpuCoreModel`] roofline.
//! * **Mpe** — identical numerics, priced on the MPE accountant.
//! * **OpenAcc** — executed through [`swacc::AccRegion`] with the directive
//!   compiler's schedule (redundant transfers, scalar flops).
//! * **Athread** — the fine-grained redesign on the simulated CPE cluster:
//!   explicit DMA with reuse, register-communication scans, shuffle
//!   transposition, vector flops.
//!
//! All four produce the same floating-point answer (verified by tests in
//! [`verify`]); they differ in the modeled time and traffic.

pub mod athread;
pub mod blocked;
pub mod member_lanes;
pub mod openacc;
pub mod reference;
pub mod verify;

use crate::deriv::ElemOps;
use cubesphere::{CubedSphere, NPTS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a Table-1 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    ComputeAndApplyRhs,
    EulerStep,
    VerticalRemap,
    HypervisDp1,
    HypervisDp2,
    BiharmonicDp3d,
}

impl KernelId {
    /// All six kernels, Table 1 order.
    pub const ALL: [KernelId; 6] = [
        KernelId::ComputeAndApplyRhs,
        KernelId::EulerStep,
        KernelId::VerticalRemap,
        KernelId::HypervisDp1,
        KernelId::HypervisDp2,
        KernelId::BiharmonicDp3d,
    ];

    /// The Fortran-level name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::ComputeAndApplyRhs => "compute_and_apply_rhs",
            KernelId::EulerStep => "euler_step",
            KernelId::VerticalRemap => "vertical_remap",
            KernelId::HypervisDp1 => "hypervis_dp1",
            KernelId::HypervisDp2 => "hypervis_dp2",
            KernelId::BiharmonicDp3d => "biharmonic_dp3d",
        }
    }
}

/// Implementation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Plain Rust ("one Intel core" when priced).
    Reference,
    /// MPE-only port.
    Mpe,
    /// OpenACC directive refactoring.
    OpenAcc,
    /// Athread fine-grained redesign.
    Athread,
}

/// Input/output workspace for a batch of elements.
///
/// Flat layout: `u[(e * nlev + k) * NPTS + p]`; tracers
/// `qdp[((e * qsize + q) * nlev + k) * NPTS + p]`.
#[derive(Debug, Clone)]
pub struct KernelData {
    pub nelem: usize,
    pub nlev: usize,
    pub qsize: usize,
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    pub t: Vec<f64>,
    pub dp3d: Vec<f64>,
    pub qdp: Vec<f64>,
    pub phis: Vec<f64>,
    /// Per-element operator tables (cycled from a real grid).
    pub ops: Vec<ElemOps>,
    /// Model-top pressure.
    pub ptop: f64,
    // --- kernel outputs -------------------------------------------------
    /// Tendency outputs of compute_and_apply_rhs: du, dv, dT, ddp.
    pub tend_u: Vec<f64>,
    pub tend_v: Vec<f64>,
    pub tend_t: Vec<f64>,
    pub tend_dp: Vec<f64>,
    /// Output of euler_step (updated qdp) / hypervis (lap fields).
    pub out_a: Vec<f64>,
    pub out_b: Vec<f64>,
}

impl KernelData {
    /// Deterministic pseudo-random workload over real cubed-sphere metric
    /// data. `nelem` elements are drawn cyclically from an `ne = 4` grid.
    pub fn synth(nelem: usize, nlev: usize, qsize: usize, seed: u64) -> Self {
        let grid = CubedSphere::new(4);
        let ops: Vec<ElemOps> = (0..nelem)
            .map(|e| ElemOps::new(&grid.elements[e % grid.nelem()], &grid.basis))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = nelem * nlev * NPTS;
        let u: Vec<f64> = (0..n).map(|_| rng.gen_range(-30.0..30.0)).collect();
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-30.0..30.0)).collect();
        let t: Vec<f64> = (0..n).map(|_| rng.gen_range(230.0..300.0)).collect();
        let dp3d: Vec<f64> = (0..n).map(|_| rng.gen_range(700.0..900.0)).collect();
        let mut qdp = Vec::with_capacity(n * qsize);
        for e in 0..nelem {
            for _q in 0..qsize {
                for k in 0..nlev {
                    for p in 0..NPTS {
                        let dp = dp3d[(e * nlev + k) * NPTS + p];
                        qdp.push(dp * rng.gen_range(0.0..0.02));
                    }
                }
            }
        }
        let phis: Vec<f64> = (0..nelem * NPTS).map(|_| rng.gen_range(0.0..500.0)).collect();
        KernelData {
            nelem,
            nlev,
            qsize,
            u,
            v,
            t,
            dp3d,
            qdp,
            phis,
            ops,
            ptop: 200.0,
            tend_u: vec![0.0; n],
            tend_v: vec![0.0; n],
            tend_t: vec![0.0; n],
            tend_dp: vec![0.0; n],
            out_a: vec![0.0; n * qsize.max(1)],
            out_b: vec![0.0; n],
        }
    }

    /// Flat index of `(e, k, p)`.
    #[inline]
    pub fn at(&self, e: usize, k: usize, p: usize) -> usize {
        (e * self.nlev + k) * NPTS + p
    }

    /// Flat index of `(e, q, k, p)` in `qdp` / `out_a`.
    #[inline]
    pub fn atq(&self, e: usize, q: usize, k: usize, p: usize) -> usize {
        ((e * self.qsize + q) * self.nlev + k) * NPTS + p
    }

    /// Zero all output arrays.
    pub fn clear_outputs(&mut self) {
        for v in [
            &mut self.tend_u,
            &mut self.tend_v,
            &mut self.tend_t,
            &mut self.tend_dp,
            &mut self.out_a,
            &mut self.out_b,
        ] {
            for x in v.iter_mut() {
                *x = 0.0;
            }
        }
    }
}

/// Analytic operation counts per kernel invocation (documented formulas;
/// these drive the Intel/MPE roofline pricing and are cross-checked against
/// the simulator's retired-instruction counters by `verify` tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCount {
    /// Double-precision flops.
    pub flops: u64,
    /// Main-memory bytes streamed (reads + writes, each array once).
    pub bytes: u64,
}

/// Flops and streamed bytes of one invocation of `kernel` on `data`.
pub fn op_count(kernel: KernelId, data: &KernelData) -> OpCount {
    let e = data.nelem as u64;
    let k = data.nlev as u64;
    let q = data.qsize as u64;
    let pts = NPTS as u64;
    let field = e * k * pts; // points per 3-D field
    match kernel {
        // Per element-level: div(v dp) ~ 430, grad(pmid) 352, vgrad 48,
        // vort 400, E 64, grad E 352, grad T 352, pointwise tend ~ 480,
        // scans ~ 150 -> ~ 2630 flops / 16 pts.
        KernelId::ComputeAndApplyRhs => OpCount {
            flops: field * 165,
            // in: u v t dp phis; out: 4 tendencies.
            bytes: (9 * field + e * pts) * 8,
        },
        // Per tracer element-level: flux build 48 + divergence 400 -> 448
        // flops / 16 pts = 28/pt.
        KernelId::EulerStep => OpCount {
            flops: q * field * 28,
            // in per tracer: qdp; shared: u v dp; out: qdp.
            bytes: (2 * q * field + 3 * field) * 8,
        },
        // PPM per column point-level: edges ~ 8, limiter ~ 10, integration
        // ~ 22 -> 40 flops, x4 remapped fields (u v T + 1 tracer-average).
        KernelId::VerticalRemap => OpCount {
            flops: field * 40 * (3 + q),
            bytes: ((3 + q) * 2 * field + field) * 8,
        },
        // Laplacian on u, v (vector, ~ 1200/level) and T (~ 750/level):
        // ~ 122 flops/pt.
        KernelId::HypervisDp1 => OpCount { flops: field * 122, bytes: 6 * field * 8 },
        // Two Laplacian applications.
        KernelId::HypervisDp2 => OpCount { flops: field * 244, bytes: 6 * field * 8 },
        // Scalar biharmonic on dp3d: 2 x ~ 47 flops/pt.
        KernelId::BiharmonicDp3d => OpCount { flops: field * 94, bytes: 2 * field * 8 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_data_is_deterministic_and_sane() {
        let a = KernelData::synth(8, 16, 3, 42);
        let b = KernelData::synth(8, 16, 3, 42);
        assert_eq!(a.u, b.u);
        assert_eq!(a.qdp, b.qdp);
        let c = KernelData::synth(8, 16, 3, 43);
        assert_ne!(a.u, c.u);
        assert!(a.dp3d.iter().all(|&x| x > 0.0));
        assert!(a.qdp.iter().all(|&x| x >= 0.0));
        assert_eq!(a.qdp.len(), 8 * 3 * 16 * NPTS);
        assert_eq!(a.ops.len(), 8);
    }

    #[test]
    fn indices_cover_arrays() {
        let d = KernelData::synth(3, 4, 2, 1);
        assert_eq!(d.at(2, 3, 15), d.u.len() - 1);
        assert_eq!(d.atq(2, 1, 3, 15), d.qdp.len() - 1);
    }

    #[test]
    fn op_counts_scale_linearly() {
        let small = KernelData::synth(4, 8, 2, 0);
        let big = KernelData::synth(8, 8, 2, 0);
        for kid in KernelId::ALL {
            let a = op_count(kid, &small);
            let b = op_count(kid, &big);
            assert_eq!(b.flops, 2 * a.flops, "{}", kid.name());
            assert_eq!(b.bytes, 2 * a.bytes, "{}", kid.name());
            assert!(a.flops > 0 && a.bytes > 0);
        }
    }

    #[test]
    fn kernel_names_match_table1() {
        let names: Vec<&str> = KernelId::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "compute_and_apply_rhs",
                "euler_step",
                "vertical_remap",
                "hypervis_dp1",
                "hypervis_dp2",
                "biharmonic_dp3d"
            ]
        );
    }
}
