//! Element-local horizontal operators: gradient, divergence, vorticity,
//! Laplacian on the sphere.
//!
//! These are the flop kernels inside `compute_and_apply_rhs`, `euler_step`
//! and the viscosity operators. Each works on one element's 16 GLL values
//! of one level, using the precomputed per-element metric ([`ElemOps`]) and
//! the GLL derivative matrix. Results are element-local (discontinuous at
//! element boundaries); continuity is restored by DSS.

use cubesphere::{pidx, Element, GllBasis, NP, NPTS};

/// Precomputed per-element operator data (a flattened, cache-friendly copy
/// of what the dycore needs from [`Element`]).
#[derive(Debug, Clone)]
pub struct ElemOps {
    /// GLL derivative matrix `dvv[i][k] = L_k'(x_i)`, row-major.
    pub dvv: [f64; NP * NP],
    /// `2 / dab`: reference-to-cube derivative scale.
    pub dscale: f64,
    /// `dinv[p]`: physical (u, v) -> contravariant.
    pub dinv: [[[f64; 2]; 2]; NPTS],
    /// `d[p]`: contravariant -> physical.
    pub d: [[[f64; 2]; 2]; NPTS],
    /// Jacobian determinant at each point.
    pub metdet: [f64; NPTS],
    /// `1 / metdet`.
    pub rmetdet: [f64; NPTS],
    /// Coriolis parameter at each point.
    pub fcor: [f64; NPTS],
    /// DSS/quadrature weight at each point.
    pub spheremp: [f64; NPTS],
}

impl ElemOps {
    /// Extract the operator data of one element.
    pub fn new(el: &Element, basis: &GllBasis) -> Self {
        assert_eq!(basis.np, NP, "ElemOps requires np = 4");
        let mut dvv = [0.0; NP * NP];
        dvv.copy_from_slice(&basis.deriv);
        let mut dinv = [[[0.0; 2]; 2]; NPTS];
        let mut d = [[[0.0; 2]; 2]; NPTS];
        let mut metdet = [0.0; NPTS];
        let mut rmetdet = [0.0; NPTS];
        let mut fcor = [0.0; NPTS];
        let mut spheremp = [0.0; NPTS];
        for p in 0..NPTS {
            let m = &el.metric[p];
            dinv[p] = m.dinv;
            d[p] = m.d;
            metdet[p] = m.metdet;
            rmetdet[p] = 1.0 / m.metdet;
            fcor[p] = m.coriolis;
            spheremp[p] = el.spheremp[p];
        }
        ElemOps { dvv, dscale: el.dscale(), dinv, d, metdet, rmetdet, fcor, spheremp }
    }

    /// `d/dalpha` and `d/dbeta` of a 16-point nodal field.
    #[inline]
    pub fn deriv_ab(&self, s: &[f64], da: &mut [f64; NPTS], db: &mut [f64; NPTS]) {
        debug_assert_eq!(s.len(), NPTS);
        for i in 0..NP {
            for j in 0..NP {
                let mut acc_a = 0.0;
                let mut acc_b = 0.0;
                for k in 0..NP {
                    acc_a += self.dvv[i * NP + k] * s[pidx(k, j)];
                    acc_b += self.dvv[j * NP + k] * s[pidx(i, k)];
                }
                da[pidx(i, j)] = acc_a * self.dscale;
                db[pidx(i, j)] = acc_b * self.dscale;
            }
        }
    }

    /// Physical gradient `(ds/dx_east, ds/dy_north)` of a scalar.
    pub fn gradient_sphere(&self, s: &[f64], gx: &mut [f64; NPTS], gy: &mut [f64; NPTS]) {
        let mut da = [0.0; NPTS];
        let mut db = [0.0; NPTS];
        self.deriv_ab(s, &mut da, &mut db);
        for p in 0..NPTS {
            // Covariant components transform by Dinv^T.
            gx[p] = self.dinv[p][0][0] * da[p] + self.dinv[p][1][0] * db[p];
            gy[p] = self.dinv[p][0][1] * da[p] + self.dinv[p][1][1] * db[p];
        }
    }

    /// Divergence of a physical vector field `(u, v)`.
    pub fn divergence_sphere(&self, u: &[f64], v: &[f64], div: &mut [f64; NPTS]) {
        let mut gv1 = [0.0; NPTS];
        let mut gv2 = [0.0; NPTS];
        for p in 0..NPTS {
            let c1 = self.dinv[p][0][0] * u[p] + self.dinv[p][0][1] * v[p];
            let c2 = self.dinv[p][1][0] * u[p] + self.dinv[p][1][1] * v[p];
            gv1[p] = self.metdet[p] * c1;
            gv2[p] = self.metdet[p] * c2;
        }
        for i in 0..NP {
            for j in 0..NP {
                let mut acc = 0.0;
                for k in 0..NP {
                    acc += self.dvv[i * NP + k] * gv1[pidx(k, j)];
                    acc += self.dvv[j * NP + k] * gv2[pidx(i, k)];
                }
                div[pidx(i, j)] = acc * self.dscale * self.rmetdet[pidx(i, j)];
            }
        }
    }

    /// Relative vorticity of a physical vector field `(u, v)`.
    pub fn vorticity_sphere(&self, u: &[f64], v: &[f64], vort: &mut [f64; NPTS]) {
        // Covariant components: cov_i = t_i . v = (D^T v)_i.
        let mut ucov = [0.0; NPTS];
        let mut vcov = [0.0; NPTS];
        for p in 0..NPTS {
            ucov[p] = self.d[p][0][0] * u[p] + self.d[p][1][0] * v[p];
            vcov[p] = self.d[p][0][1] * u[p] + self.d[p][1][1] * v[p];
        }
        for i in 0..NP {
            for j in 0..NP {
                let mut dv_da = 0.0;
                let mut du_db = 0.0;
                for k in 0..NP {
                    dv_da += self.dvv[i * NP + k] * vcov[pidx(k, j)];
                    du_db += self.dvv[j * NP + k] * ucov[pidx(i, k)];
                }
                vort[pidx(i, j)] = (dv_da - du_db) * self.dscale * self.rmetdet[pidx(i, j)];
            }
        }
    }

    /// Scalar Laplacian `div(grad s)`.
    pub fn laplace_sphere(&self, s: &[f64], lap: &mut [f64; NPTS]) {
        let mut gx = [0.0; NPTS];
        let mut gy = [0.0; NPTS];
        self.gradient_sphere(s, &mut gx, &mut gy);
        self.divergence_sphere(&gx, &gy, lap);
    }

    /// Weak-form scalar Laplacian (HOMME's `laplace_sphere_wk`):
    /// `out_i = -(1/M_i) integral(grad(phi_i) . grad(s))` over the element,
    /// in strong-operator units (divide-by-mass included). Summed across
    /// elements by a spheremp-weighted DSS it assembles the continuous
    /// Galerkin Laplacian, whose global integral vanishes *exactly*
    /// (row sums of the derivative matrix are zero) — the property that
    /// makes the subcycled `dp3d` hyperviscosity mass-conserving.
    pub fn laplace_sphere_wk(&self, s: &[f64], out: &mut [f64; NPTS]) {
        let mut gx = [0.0; NPTS];
        let mut gy = [0.0; NPTS];
        self.gradient_sphere(s, &mut gx, &mut gy);
        // Contravariant gradient components, pre-weighted by the full
        // quadrature weight (spheremp = w_i w_j (dab/2)^2 metdet).
        let mut c1 = [0.0; NPTS];
        let mut c2 = [0.0; NPTS];
        for p in 0..NPTS {
            let w = self.spheremp[p];
            c1[p] = w * (self.dinv[p][0][0] * gx[p] + self.dinv[p][0][1] * gy[p]);
            c2[p] = w * (self.dinv[p][1][0] * gx[p] + self.dinv[p][1][1] * gy[p]);
        }
        for a in 0..NP {
            for b in 0..NP {
                let mut acc = 0.0;
                for i in 0..NP {
                    acc += self.dvv[i * NP + a] * c1[pidx(i, b)];
                }
                for j in 0..NP {
                    acc += self.dvv[j * NP + b] * c2[pidx(a, j)];
                }
                out[pidx(a, b)] = -self.dscale * acc / self.spheremp[pidx(a, b)];
            }
        }
    }

    /// Vector Laplacian via the vector identity
    /// `lap(v) = grad(div v) - curl(vort v)`.
    pub fn vlaplace_sphere(
        &self,
        u: &[f64],
        v: &[f64],
        lap_u: &mut [f64; NPTS],
        lap_v: &mut [f64; NPTS],
    ) {
        let mut div = [0.0; NPTS];
        let mut vort = [0.0; NPTS];
        self.divergence_sphere(u, v, &mut div);
        self.vorticity_sphere(u, v, &mut vort);
        let mut gdx = [0.0; NPTS];
        let mut gdy = [0.0; NPTS];
        self.gradient_sphere(&div, &mut gdx, &mut gdy);
        let mut cx = [0.0; NPTS];
        let mut cy = [0.0; NPTS];
        self.curl_sphere(&vort, &mut cx, &mut cy);
        for p in 0..NPTS {
            lap_u[p] = gdx[p] - cx[p];
            lap_v[p] = gdy[p] - cy[p];
        }
    }

    /// Curl of a scalar (vertical) field: the rotated gradient, physical
    /// components. `curl(psi) = k x grad(psi)` on the sphere surface.
    pub fn curl_sphere(&self, psi: &[f64], cx: &mut [f64; NPTS], cy: &mut [f64; NPTS]) {
        let mut da = [0.0; NPTS];
        let mut db = [0.0; NPTS];
        self.deriv_ab(psi, &mut da, &mut db);
        for p in 0..NPTS {
            // Contravariant components of k x grad: (dpsi/dbeta, -dpsi/dalpha)
            // / metdet; then to physical via d.
            let c1 = db[p] * self.rmetdet[p];
            let c2 = -da[p] * self.rmetdet[p];
            cx[p] = self.d[p][0][0] * c1 + self.d[p][0][1] * c2;
            cy[p] = self.d[p][1][0] * c1 + self.d[p][1][1] * c2;
        }
    }
}

/// Build the operator tables for every element of a grid.
pub fn build_ops(grid: &cubesphere::CubedSphere) -> Vec<ElemOps> {
    grid.elements.iter().map(|el| ElemOps::new(el, &grid.basis)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesphere::{CubedSphere, EARTH_RADIUS};

    /// Evaluate a (lat, lon) function at every GLL point of every element.
    fn sample(grid: &CubedSphere, f: impl Fn(f64, f64) -> f64) -> Vec<Vec<f64>> {
        grid.elements
            .iter()
            .map(|el| el.metric.iter().map(|m| f(m.lat, m.lon)).collect())
            .collect()
    }

    /// Max error over *interior* GLL points (operators are discontinuous at
    /// element edges before DSS).
    fn max_interior_err(
        grid: &CubedSphere,
        got: &[Vec<f64>],
        expect: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        let mut worst: f64 = 0.0;
        for (el, g) in grid.elements.iter().zip(got) {
            for i in 1..NP - 1 {
                for j in 1..NP - 1 {
                    let p = pidx(i, j);
                    let m = &el.metric[p];
                    worst = worst.max((g[p] - expect(m.lat, m.lon)).abs());
                }
            }
        }
        worst
    }

    #[test]
    fn gradient_of_sin_lat() {
        // s = sin(lat): grad = (0, cos(lat)/a).
        let grid = CubedSphere::new(6);
        let ops = build_ops(&grid);
        let s = sample(&grid, |lat, _| lat.sin());
        let mut gx_all = Vec::new();
        let mut gy_all = Vec::new();
        for (op, se) in ops.iter().zip(&s) {
            let mut gx = [0.0; NPTS];
            let mut gy = [0.0; NPTS];
            op.gradient_sphere(se, &mut gx, &mut gy);
            gx_all.push(gx.to_vec());
            gy_all.push(gy.to_vec());
        }
        let scale = 1.0 / EARTH_RADIUS;
        let ex = max_interior_err(&grid, &gx_all, |_, _| 0.0);
        let ey = max_interior_err(&grid, &gy_all, |lat, _| lat.cos() / EARTH_RADIUS);
        assert!(ex < 1e-3 * scale, "gx err {ex}");
        assert!(ey < 1e-3 * scale, "gy err {ey}");
    }

    #[test]
    fn vorticity_of_solid_body_rotation() {
        // u = U cos(lat), v = 0: vort = 2 U sin(lat) / a.
        let grid = CubedSphere::new(6);
        let ops = build_ops(&grid);
        let uu = 20.0;
        let u = sample(&grid, |lat, _| uu * lat.cos());
        let v = sample(&grid, |_, _| 0.0);
        let mut vort_all = Vec::new();
        let mut div_all = Vec::new();
        for ((op, ue), ve) in ops.iter().zip(&u).zip(&v) {
            let mut vo = [0.0; NPTS];
            let mut di = [0.0; NPTS];
            op.vorticity_sphere(ue, ve, &mut vo);
            op.divergence_sphere(ue, ve, &mut di);
            vort_all.push(vo.to_vec());
            div_all.push(di.to_vec());
        }
        let scale = 2.0 * uu / EARTH_RADIUS;
        let ev = max_interior_err(&grid, &vort_all, |lat, _| 2.0 * uu * lat.sin() / EARTH_RADIUS);
        let ed = max_interior_err(&grid, &div_all, |_, _| 0.0);
        assert!(ev < 1e-3 * scale, "vort err {ev} (scale {scale})");
        assert!(ed < 1e-3 * scale, "div err {ed}");
    }

    #[test]
    fn curl_of_grad_is_zero_and_vort_of_grad_is_zero() {
        let grid = CubedSphere::new(4);
        let ops = build_ops(&grid);
        let s = sample(&grid, |lat, lon| lat.sin() * (2.0 * lon).cos());
        for (op, se) in ops.iter().zip(&s) {
            let mut gx = [0.0; NPTS];
            let mut gy = [0.0; NPTS];
            op.gradient_sphere(se, &mut gx, &mut gy);
            let mut vort = [0.0; NPTS];
            op.vorticity_sphere(&gx, &gy, &mut vort);
            // Exact to round-off *within* an element: the discrete curl of a
            // discrete gradient cancels identically on the GLL grid.
            for p in 0..NPTS {
                assert!(vort[p].abs() < 1e-17, "vort(grad) = {}", vort[p]);
            }
        }
    }

    #[test]
    fn divergence_of_curl_is_zero() {
        let grid = CubedSphere::new(4);
        let ops = build_ops(&grid);
        let psi = sample(&grid, |lat, lon| (2.0 * lat).sin() * lon.cos());
        for (op, pe) in ops.iter().zip(&psi) {
            let mut cx = [0.0; NPTS];
            let mut cy = [0.0; NPTS];
            op.curl_sphere(pe, &mut cx, &mut cy);
            let mut div = [0.0; NPTS];
            op.divergence_sphere(&cx, &cy, &mut div);
            for p in 0..NPTS {
                assert!(div[p].abs() < 1e-17, "div(curl) = {}", div[p]);
            }
        }
    }

    #[test]
    fn laplacian_of_spherical_harmonic() {
        // Y = sin(lat) is the l=1, m=0 harmonic: lap(Y) = -2 Y / a^2.
        let grid = CubedSphere::new(8);
        let ops = build_ops(&grid);
        let s = sample(&grid, |lat, _| lat.sin());
        let mut lap_all = Vec::new();
        for (op, se) in ops.iter().zip(&s) {
            let mut lap = [0.0; NPTS];
            op.laplace_sphere(se, &mut lap);
            lap_all.push(lap.to_vec());
        }
        let a2 = EARTH_RADIUS * EARTH_RADIUS;
        let err = max_interior_err(&grid, &lap_all, |lat, _| -2.0 * lat.sin() / a2);
        assert!(err < 2e-2 / a2, "lap err {err} (scale {})", 2.0 / a2);
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        let grid = CubedSphere::new(2);
        let ops = build_ops(&grid);
        let ones = vec![1.0; NPTS];
        for op in &ops {
            let mut gx = [0.0; NPTS];
            let mut gy = [0.0; NPTS];
            op.gradient_sphere(&ones, &mut gx, &mut gy);
            for p in 0..NPTS {
                assert!(gx[p].abs() < 1e-18 && gy[p].abs() < 1e-18);
            }
        }
    }
}
