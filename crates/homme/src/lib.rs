//! # homme — the CAM-SE spectral-element dynamical core
//!
//! A from-scratch Rust implementation of the HOMME/CAM-SE hydrostatic
//! primitive-equation dynamical core, structured around the exact kernels
//! the paper's Table 1 names:
//!
//! * [`rhs`] — `compute_and_apply_rhs` (vector-invariant RHS with the
//!   pressure/geopotential/omega column scans).
//! * [`euler`] — `euler_step` (SSP-RK2 tracer advection + limiter).
//! * [`remap`] — `vertical_remap` (monotone PPM back to reference levels).
//! * [`hypervis`] — `hypervis_dp1` / `hypervis_dp2` / `biharmonic_dp3d`.
//! * [`dss`] / [`bndry`] — Direct Stiffness Summation, serial and
//!   distributed; the distributed path implements both HOMME's original
//!   pack/unpack `bndry_exchangev` and the paper's redesigned overlapped,
//!   copy-free version (Section 7.6).
//! * [`prim`] — the `prim_run` driver: 5-stage Kinnmark–Gray RK dynamics,
//!   subcycled hyperviscosity, tracer advection, vertical remap. All state
//!   lives in the flat SoA arena of [`state`], all temporaries in the
//!   persistent [`workspace`], and per-element loops run across host
//!   cores on the [`sched`] worker pool; [`seedref`] preserves the
//!   original serial driver as the equivalence oracle.
//! * [`kernels`] — the four implementation variants of every Table-1
//!   kernel: Reference ("Intel"), MPE, OpenACC, and the Athread redesign
//!   with register-communication scans and shuffle transposition
//!   (Sections 7.3–7.5), all verified to produce identical answers.

pub mod bndry;
pub mod deriv;
pub mod diagnostics;
pub mod dist;
pub mod dss;
pub mod euler;
pub mod health;
pub mod hypervis;
pub mod kernels;
pub mod prim;
pub mod remap;
pub mod rhs;
pub mod sched;
pub mod seedref;
pub mod state;
pub mod taskgraph;
pub mod vert;
pub mod workspace;

pub use bndry::{CopyStats, ExchangeBuffers, ExchangeMode, ExchangePlan, GatherPlan};
pub use deriv::{build_ops, ElemOps};
pub use diagnostics::{budgets, Budgets};
pub use dist::{DistDycore, DistError, EPOCH_SHIFT};
pub use dss::Dss;
pub use health::{DegradePolicy, HealthConfig, HealthError, PhysicsFault, StepHealth, TRACER_STAGE};
pub use hypervis::{ElemHypervisPlan, HypervisConfig, HypervisError, MIN_GLL_GAP_METERS};
pub use kernels::blocked::{BlockedOps, KernelPath, StageCombine};
pub use kernels::member_lanes::MemberKernelPath;
pub use prim::{Dycore, DycoreConfig, KG5_COEFFS};
pub use remap::{ElemRemapPlan, RemapApplyScratch, RemapError};
pub use rhs::{ElemTend, Rhs, RhsScratch};
pub use sched::ElemScheduler;
pub use seedref::SeedStepper;
pub use state::{Dims, ElemMut, ElemRef, State};
pub use taskgraph::{Neighbors, PipelineStage, StepPath, TaskGraph};
pub use vert::VertCoord;
pub use workspace::{DistWorkspace, EnsembleWorkspace, StepWorkspace};
