//! `bndry_exchangev`: the distributed boundary exchange behind DSS.
//!
//! Two implementations, matching the paper's Section 7.6:
//!
//! * [`ExchangeMode::Original`] — HOMME's abstraction: element edge values
//!   are copied into a unified *pack buffer*, per-peer send buffers are cut
//!   from it, received bytes land in a *unpack buffer*, and a final copy
//!   scatters them to elements. Clean layering, redundant memcpys, and no
//!   overlap: sends happen only after all packing, waits before any compute.
//! * [`ExchangeMode::Redesigned`] — the paper's rewrite: receives are posted
//!   first, partial sums for each peer are packed straight into the send
//!   message, *interior work runs while messages fly*, and received data is
//!   accumulated directly from the receive buffer into the assembly array
//!   ("fetch the data directly from receive buffer to the corresponding
//!   elements"), eliminating the staging copies.
//!
//! Both modes produce bit-identical DSS results; they differ in memcpy
//! volume (counted) and overlap capability (exercised by tests and the
//! `ablation_overlap` bench binary).

use cubesphere::{CubedSphere, Partition, NPTS};
use std::collections::HashMap;
use swmpi::RankCtx;

/// Which exchange implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Unified pack/unpack buffers, no overlap.
    Original,
    /// Direct pack/unpack with compute-communication overlap.
    Redesigned,
}

/// Bytes moved by intermediate staging copies (not the MPI payload itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Bytes copied into/out of staging buffers.
    pub staged_bytes: u64,
    /// MPI payload bytes sent.
    pub sent_bytes: u64,
}

/// One rank's exchange plan for a given grid + partition.
#[derive(Debug, Clone)]
pub struct ExchangePlan {
    /// This rank.
    pub rank: usize,
    /// Global element ids owned by this rank (grid indexing).
    pub owned: Vec<usize>,
    /// Local indices (into `owned`) of elements with an off-rank neighbour.
    pub boundary: Vec<usize>,
    /// Local indices of fully interior elements.
    pub interior: Vec<usize>,
    /// Peers and the global-point ids shared with each (sorted; both sides
    /// derive the identical list, which fixes the message layout).
    pub links: Vec<(usize, Vec<usize>)>,
    /// Slot of each shared gid in the partial-sum scratch (gid -> slot).
    pub gid_slot: HashMap<usize, usize>,
    /// Number of shared gids (scratch length).
    pub nshared: usize,
    /// Per-owned-element copies of gids and weights.
    pub gids: Vec<[usize; NPTS]>,
    /// DSS weights per owned element.
    pub spheremp: Vec<[f64; NPTS]>,
    /// Global inverse mass (replicated — the mesh is static metadata).
    pub inv_mass: Vec<f64>,
}

impl ExchangePlan {
    /// Build the plan of `rank` under `part`.
    pub fn new(grid: &CubedSphere, part: &Partition, rank: usize) -> Self {
        let owned = part.elems_of[rank].clone();
        let owned_set: std::collections::HashSet<usize> = owned.iter().copied().collect();

        // gid -> owning ranks (only needed for gids this rank touches).
        let mut links_map: HashMap<usize, Vec<usize>> = HashMap::new(); // peer -> gids
        let mut boundary = Vec::new();
        let mut interior = Vec::new();
        for (li, &e) in owned.iter().enumerate() {
            let mut is_boundary = false;
            for &n in &grid.all_neighbors[e] {
                if !owned_set.contains(&n) {
                    is_boundary = true;
                    let peer = part.owner[n];
                    // Shared gids between element e and neighbour n.
                    let ngids: std::collections::HashSet<usize> =
                        grid.elements[n].gids.iter().copied().collect();
                    for &g in &grid.elements[e].gids {
                        if ngids.contains(&g) {
                            links_map.entry(peer).or_default().push(g);
                        }
                    }
                }
            }
            if is_boundary {
                boundary.push(li);
            } else {
                interior.push(li);
            }
        }
        let mut links: Vec<(usize, Vec<usize>)> = links_map
            .into_iter()
            .map(|(peer, mut gids)| {
                gids.sort_unstable();
                gids.dedup();
                (peer, gids)
            })
            .collect();
        links.sort_by_key(|(p, _)| *p);

        let mut gid_slot = HashMap::new();
        for (_, gids) in &links {
            for &g in gids {
                let next = gid_slot.len();
                gid_slot.entry(g).or_insert(next);
            }
        }
        let nshared = gid_slot.len();

        let gids = owned
            .iter()
            .map(|&e| {
                let mut a = [0usize; NPTS];
                a.copy_from_slice(&grid.elements[e].gids);
                a
            })
            .collect();
        let spheremp = owned
            .iter()
            .map(|&e| {
                let mut a = [0f64; NPTS];
                a.copy_from_slice(&grid.elements[e].spheremp);
                a
            })
            .collect();

        ExchangePlan {
            rank,
            owned,
            boundary,
            interior,
            links,
            gid_slot,
            nshared,
            gids,
            spheremp,
            inv_mass: grid.inv_mass.clone(),
        }
    }

    /// Distributed DSS of one level across ranks. `fields[li]` holds the 16
    /// nodal values of owned element `li`. `interior_work` runs while
    /// messages are in flight in `Redesigned` mode (and before any
    /// communication in `Original` mode, i.e. without overlap).
    pub fn dss_level(
        &self,
        ctx: &mut RankCtx,
        fields: &mut [Vec<f64>],
        mode: ExchangeMode,
        tag: u64,
        mut interior_work: impl FnMut(),
        stats: &mut CopyStats,
    ) {
        assert_eq!(fields.len(), self.owned.len());

        // Local weighted accumulation over *all* local gids.
        let mut accum: HashMap<usize, f64> = HashMap::with_capacity(self.owned.len() * NPTS);
        for (li, f) in fields.iter().enumerate() {
            for p in 0..NPTS {
                *accum.entry(self.gids[li][p]).or_insert(0.0) += self.spheremp[li][p] * f[p];
            }
        }

        match mode {
            ExchangeMode::Original => {
                // No overlap: interior work happens strictly before the
                // exchange (the legacy schedule).
                interior_work();

                // Stage 1: pack ALL shared partial sums into one unified
                // pack buffer (extra copy #1).
                let mut pack = vec![0.0; self.nshared];
                for (&g, &slot) in &self.gid_slot {
                    pack[slot] = accum[&g];
                }
                stats.staged_bytes += (self.nshared * 8) as u64;

                // Stage 2: cut per-peer send buffers from the pack buffer
                // (extra copy #2) and send.
                let reqs: Vec<_> = self
                    .links
                    .iter()
                    .map(|(peer, _)| ctx.comm.irecv(*peer, tag))
                    .collect();
                for (peer, gids) in &self.links {
                    let msg: Vec<f64> =
                        gids.iter().map(|g| pack[self.gid_slot[g]]).collect();
                    stats.staged_bytes += (msg.len() * 8) as u64;
                    stats.sent_bytes += (msg.len() * 8) as u64;
                    ctx.comm.send(*peer, tag, &msg);
                }

                // Stage 3: receive into a unified unpack buffer (extra copy
                // #3), then apply.
                let mut unpack = vec![0.0; self.nshared];
                for (req, (_, gids)) in reqs.into_iter().zip(&self.links) {
                    let m = ctx.comm.wait(req);
                    for (g, &val) in gids.iter().zip(&m.data) {
                        unpack[self.gid_slot[g]] += val;
                    }
                    stats.staged_bytes += (m.data.len() * 8) as u64;
                }
                for (&g, &slot) in &self.gid_slot {
                    *accum.get_mut(&g).expect("shared gid is local") += unpack[slot];
                }
            }
            ExchangeMode::Redesigned => {
                // Post receives first, pack straight into the messages,
                // send, then overlap interior work with the flight time.
                let reqs: Vec<_> = self
                    .links
                    .iter()
                    .map(|(peer, _)| ctx.comm.irecv(*peer, tag))
                    .collect();
                for (peer, gids) in &self.links {
                    let msg: Vec<f64> = gids.iter().map(|g| accum[g]).collect();
                    stats.sent_bytes += (msg.len() * 8) as u64;
                    ctx.comm.send(*peer, tag, &msg);
                }

                interior_work();

                // Accumulate directly from each receive buffer.
                for (req, (_, gids)) in reqs.into_iter().zip(&self.links) {
                    let m = ctx.comm.wait(req);
                    for (g, &val) in gids.iter().zip(&m.data) {
                        *accum.get_mut(g).expect("shared gid is local") += val;
                    }
                }
            }
        }

        // Normalize and scatter back.
        for (li, f) in fields.iter_mut().enumerate() {
            for p in 0..NPTS {
                let g = self.gids[li][p];
                f[p] = accum[&g] * self.inv_mass[g];
            }
        }
    }
}

/// An in-flight halo exchange started by [`ExchangePlan::start_halo`].
pub struct PendingHalo {
    reqs: Vec<(usize, swmpi::RecvRequest)>,
}

impl ExchangePlan {
    /// Start a halo exchange for one level of one field: post receives and
    /// send this rank's partial sums for every shared global point.
    ///
    /// Only **boundary** elements contribute to shared points (a point
    /// shared with a peer lies on the patch perimeter, and every element
    /// containing it has an off-rank neighbour), so `fields` only needs
    /// valid data for boundary elements at this moment — the foundation of
    /// the paper's compute/communication overlap.
    pub fn start_halo(
        &self,
        ctx: &mut RankCtx,
        fields: &[Vec<f64>],
        tag: u64,
        stats: &mut CopyStats,
    ) -> PendingHalo {
        let mut accum: HashMap<usize, f64> = HashMap::with_capacity(self.nshared);
        for &li in &self.boundary {
            for p in 0..NPTS {
                let g = self.gids[li][p];
                if self.gid_slot.contains_key(&g) {
                    *accum.entry(g).or_insert(0.0) += self.spheremp[li][p] * fields[li][p];
                }
            }
        }
        let reqs: Vec<(usize, swmpi::RecvRequest)> = self
            .links
            .iter()
            .map(|(peer, _)| (*peer, ctx.comm.irecv(*peer, tag)))
            .collect();
        for (peer, gids) in &self.links {
            let msg: Vec<f64> = gids.iter().map(|g| *accum.get(g).unwrap_or(&0.0)).collect();
            stats.sent_bytes += (msg.len() * 8) as u64;
            ctx.comm.send(*peer, tag, &msg);
        }
        PendingHalo { reqs }
    }

    /// Complete a halo exchange: accumulate all local contributions, add
    /// the received peer partials, normalize by the global mass and scatter
    /// back. `fields` must now hold valid data for **every** owned element.
    pub fn finish_halo(&self, ctx: &mut RankCtx, pending: PendingHalo, fields: &mut [Vec<f64>]) {
        let mut accum: HashMap<usize, f64> = HashMap::with_capacity(self.owned.len() * NPTS);
        for (li, f) in fields.iter().enumerate() {
            for p in 0..NPTS {
                *accum.entry(self.gids[li][p]).or_insert(0.0) += self.spheremp[li][p] * f[p];
            }
        }
        for ((_, req), (_, gids)) in pending.reqs.into_iter().zip(&self.links) {
            let m = ctx.comm.wait(req);
            for (g, &val) in gids.iter().zip(&m.data) {
                *accum.get_mut(g).expect("shared gid is local") += val;
            }
        }
        for (li, f) in fields.iter_mut().enumerate() {
            for p in 0..NPTS {
                let g = self.gids[li][p];
                f[p] = accum[&g] * self.inv_mass[g];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dss::Dss;
    use swmpi::run_ranks;

    fn test_field(e: usize, p: usize) -> f64 {
        ((e * 37 + p * 11) % 23) as f64 - 11.0
    }

    fn serial_reference(grid: &CubedSphere) -> Vec<Vec<f64>> {
        let mut dss = Dss::new(grid);
        let mut fields: Vec<Vec<f64>> = (0..grid.nelem())
            .map(|e| (0..NPTS).map(|p| test_field(e, p)).collect())
            .collect();
        let mut views: Vec<&mut [f64]> = fields.iter_mut().map(|f| &mut f[..]).collect();
        dss.apply_level(&mut views);
        drop(views);
        fields
    }

    fn run_distributed(mode: ExchangeMode, nranks: usize) -> (Vec<Vec<f64>>, CopyStats) {
        let grid = CubedSphere::new(4);
        let part = Partition::new(&grid, nranks);
        let plans: Vec<ExchangePlan> =
            (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
        let results = run_ranks(nranks, |ctx| {
            let plan = &plans[ctx.rank()];
            let mut fields: Vec<Vec<f64>> = plan
                .owned
                .iter()
                .map(|&e| (0..NPTS).map(|p| test_field(e, p)).collect())
                .collect();
            let mut stats = CopyStats::default();
            plan.dss_level(ctx, &mut fields, mode, 0, || {}, &mut stats);
            (plan.owned.clone(), fields, stats)
        });
        let mut gathered = vec![Vec::new(); 6 * 4 * 4];
        let mut total = CopyStats::default();
        for (owned, fields, stats) in results {
            for (e, f) in owned.into_iter().zip(fields) {
                gathered[e] = f;
            }
            total.staged_bytes += stats.staged_bytes;
            total.sent_bytes += stats.sent_bytes;
        }
        (gathered, total)
    }

    #[test]
    fn both_modes_match_serial_dss() {
        let grid = CubedSphere::new(4);
        let reference = serial_reference(&grid);
        for mode in [ExchangeMode::Original, ExchangeMode::Redesigned] {
            for nranks in [2usize, 6] {
                let (got, _) = run_distributed(mode, nranks);
                for (e, (g, r)) in got.iter().zip(&reference).enumerate() {
                    for p in 0..NPTS {
                        assert!(
                            (g[p] - r[p]).abs() < 1e-11,
                            "{mode:?} nranks={nranks} elem {e} pt {p}: {} vs {}",
                            g[p],
                            r[p]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn redesign_eliminates_staging_copies() {
        let (_, orig) = run_distributed(ExchangeMode::Original, 6);
        let (_, redesigned) = run_distributed(ExchangeMode::Redesigned, 6);
        assert_eq!(orig.sent_bytes, redesigned.sent_bytes, "same payload");
        assert!(orig.staged_bytes > 2 * orig.sent_bytes, "legacy path stages heavily");
        assert_eq!(redesigned.staged_bytes, 0, "redesign copies nothing extra");
    }

    #[test]
    fn overlap_runs_interior_work_between_send_and_wait() {
        // In Redesigned mode the interior closure runs after sends are
        // posted; we verify it executes (and the exchange still completes)
        // even when the interior work is substantial on every rank.
        let grid = CubedSphere::new(4);
        let nranks = 4;
        let part = Partition::new(&grid, nranks);
        let plans: Vec<ExchangePlan> =
            (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
        let sums = run_ranks(nranks, |ctx| {
            let plan = &plans[ctx.rank()];
            let mut fields: Vec<Vec<f64>> =
                plan.owned.iter().map(|_| vec![1.0; NPTS]).collect();
            let mut stats = CopyStats::default();
            let mut interior_ran = 0u64;
            plan.dss_level(
                ctx,
                &mut fields,
                ExchangeMode::Redesigned,
                7,
                || {
                    interior_ran = (0..20_000u64).map(|i| i % 7).sum();
                },
                &mut stats,
            );
            interior_ran
        });
        for s in sums {
            assert!(s > 0, "interior work did not run");
        }
    }

    #[test]
    fn boundary_interior_split_covers_all_elements() {
        let grid = CubedSphere::new(4);
        let part = Partition::new(&grid, 6);
        for r in 0..6 {
            let plan = ExchangePlan::new(&grid, &part, r);
            assert_eq!(plan.boundary.len() + plan.interior.len(), plan.owned.len());
            assert!(!plan.boundary.is_empty());
            // Links are symmetric: each peer lists us too.
            for (peer, gids) in &plan.links {
                let peer_plan = ExchangePlan::new(&grid, &part, *peer);
                let back = peer_plan
                    .links
                    .iter()
                    .find(|(p, _)| *p == r)
                    .expect("peer link missing");
                assert_eq!(&back.1, gids, "gid lists must agree for message layout");
            }
        }
    }
}
