//! `bndry_exchangev`: the distributed boundary exchange behind DSS.
//!
//! Two implementations, matching the paper's Section 7.6:
//!
//! * [`ExchangeMode::Original`] — HOMME's abstraction: element edge values
//!   are copied into a unified *pack buffer*, per-peer send buffers are cut
//!   from it, received bytes land in a *unpack buffer*, and a final copy
//!   scatters them to elements. Clean layering, redundant memcpys, no
//!   overlap, and one message per peer per (field, level): sends happen
//!   only after all packing, waits before any compute.
//! * [`ExchangeMode::Redesigned`] — the paper's rewrite, exposed as the
//!   *aggregated* exchange ([`ExchangePlan::start_aggregated`] /
//!   [`ExchangePlan::finish_aggregated`]): receives are posted first, the
//!   boundary partial sums for **all fields and all levels** are packed
//!   into a single per-peer message, *interior work runs while messages
//!   fly*, and received data is accumulated directly from the receive
//!   buffer into the flat SoA arenas ("fetch the data directly from
//!   receive buffer to the corresponding elements") — no staging copies,
//!   one message per peer per exchange.
//!
//! The aggregated message layout is fixed by data both sides already
//! share: for a peer with `G` shared global points (the sorted gid list in
//! [`ExchangePlan::links`], identical on both ranks) and `A` arenas of
//! `L` levels each, the payload is `A * L * G` doubles with value index
//! `(a * L + k) * G + j` — arena-major, then level, then shared gid in
//! sorted order. Each value is the sender's spheremp-weighted partial sum
//! for that point; because shared points live only on boundary elements
//! (an invariant the tests pin down), boundary-only packing is complete.
//!
//! Both modes produce bit-identical DSS results; they differ in memcpy
//! volume and message count (both counted) and overlap capability
//! (exercised by tests and the `ablation_overlap` bench binary).

use cubesphere::{CubedSphere, Partition, NPTS};
use std::collections::HashMap;
use swmpi::{CommError, RankCtx};

/// Which exchange implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Unified pack/unpack buffers, no overlap.
    Original,
    /// Direct pack/unpack with compute-communication overlap.
    Redesigned,
}

/// Traffic accounting for the exchange layer: staging copies (not the MPI
/// payload itself), payload volume, and message count — the quantities the
/// paper's redesign moves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Bytes copied into/out of staging buffers.
    pub staged_bytes: u64,
    /// MPI payload bytes sent.
    pub sent_bytes: u64,
    /// MPI messages sent.
    pub msgs_sent: u64,
}

/// One rank's exchange plan for a given grid + partition.
#[derive(Debug, Clone)]
pub struct ExchangePlan {
    /// This rank.
    pub rank: usize,
    /// Global element ids owned by this rank (grid indexing).
    pub owned: Vec<usize>,
    /// Local indices (into `owned`) of elements with an off-rank neighbour.
    pub boundary: Vec<usize>,
    /// Local indices of fully interior elements.
    pub interior: Vec<usize>,
    /// Peers and the global-point ids shared with each (sorted; both sides
    /// derive the identical list, which fixes the message layout).
    pub links: Vec<(usize, Vec<usize>)>,
    /// Slot of each shared gid in the partial-sum scratch (gid -> slot).
    pub gid_slot: HashMap<usize, usize>,
    /// Number of shared gids (scratch length).
    pub nshared: usize,
    /// Per-owned-element copies of gids and weights.
    pub gids: Vec<[usize; NPTS]>,
    /// DSS weights per owned element.
    pub spheremp: Vec<[f64; NPTS]>,
    /// Global inverse mass (replicated — the mesh is static metadata).
    pub inv_mass: Vec<f64>,
    /// Number of distinct global points this rank touches.
    pub nlocal: usize,
    /// Dense local point index of each owned (element, node), `owned.len() * NPTS`.
    pub point_lidx: Vec<u32>,
    /// Shared-gid slot of each owned (element, node), or -1 if not shared.
    pub point_slot: Vec<i32>,
    /// Shared slot -> dense local point index.
    pub slot_lidx: Vec<u32>,
    /// Per-peer shared slots, parallel to `links` (message order).
    pub peer_slots: Vec<Vec<u32>>,
    /// Inverse mass indexed by dense local point index.
    pub lidx_inv_mass: Vec<f64>,
}

impl ExchangePlan {
    /// Build the plan of `rank` under `part`.
    pub fn new(grid: &CubedSphere, part: &Partition, rank: usize) -> Self {
        let owned = part.elems_of[rank].clone();
        let owned_set: std::collections::HashSet<usize> = owned.iter().copied().collect();

        // gid -> owning ranks (only needed for gids this rank touches).
        let mut links_map: HashMap<usize, Vec<usize>> = HashMap::new(); // peer -> gids
        let mut boundary = Vec::new();
        let mut interior = Vec::new();
        for (li, &e) in owned.iter().enumerate() {
            let mut is_boundary = false;
            for &n in &grid.all_neighbors[e] {
                if !owned_set.contains(&n) {
                    is_boundary = true;
                    let peer = part.owner[n];
                    // Shared gids between element e and neighbour n.
                    let ngids: std::collections::HashSet<usize> =
                        grid.elements[n].gids.iter().copied().collect();
                    for &g in &grid.elements[e].gids {
                        if ngids.contains(&g) {
                            links_map.entry(peer).or_default().push(g);
                        }
                    }
                }
            }
            if is_boundary {
                boundary.push(li);
            } else {
                interior.push(li);
            }
        }
        let mut links: Vec<(usize, Vec<usize>)> = links_map
            .into_iter()
            .map(|(peer, mut gids)| {
                gids.sort_unstable();
                gids.dedup();
                (peer, gids)
            })
            .collect();
        links.sort_by_key(|(p, _)| *p);

        let mut gid_slot = HashMap::new();
        for (_, gids) in &links {
            for &g in gids {
                let next = gid_slot.len();
                gid_slot.entry(g).or_insert(next);
            }
        }
        let nshared = gid_slot.len();

        let gids = owned
            .iter()
            .map(|&e| {
                let mut a = [0usize; NPTS];
                a.copy_from_slice(&grid.elements[e].gids);
                a
            })
            .collect();
        let spheremp = owned
            .iter()
            .map(|&e| {
                let mut a = [0f64; NPTS];
                a.copy_from_slice(&grid.elements[e].spheremp);
                a
            })
            .collect();

        // Dense indexing for the aggregated exchange: every distinct gid
        // this rank touches gets a local point index, and every owned
        // (element, node) resolves to that index (and its shared slot, if
        // any) without hashing on the hot path.
        let mut lidx_of: HashMap<usize, u32> = HashMap::new();
        let mut lidx_inv_mass: Vec<f64> = Vec::new();
        let mut point_lidx = vec![0u32; owned.len() * NPTS];
        let mut point_slot = vec![-1i32; owned.len() * NPTS];
        for (li, &e) in owned.iter().enumerate() {
            for p in 0..NPTS {
                let g = grid.elements[e].gids[p];
                let next = lidx_of.len() as u32;
                let d = *lidx_of.entry(g).or_insert(next);
                if d == next {
                    lidx_inv_mass.push(grid.inv_mass[g]);
                }
                point_lidx[li * NPTS + p] = d;
                if let Some(&slot) = gid_slot.get(&g) {
                    point_slot[li * NPTS + p] = slot as i32;
                }
            }
        }
        let nlocal = lidx_of.len();
        let mut slot_lidx = vec![0u32; nshared];
        for (&g, &slot) in &gid_slot {
            slot_lidx[slot] = lidx_of[&g];
        }
        let peer_slots: Vec<Vec<u32>> = links
            .iter()
            .map(|(_, gids)| gids.iter().map(|g| gid_slot[g] as u32).collect())
            .collect();

        ExchangePlan {
            rank,
            owned,
            boundary,
            interior,
            links,
            gid_slot,
            nshared,
            gids,
            spheremp,
            inv_mass: grid.inv_mass.clone(),
            nlocal,
            point_lidx,
            point_slot,
            slot_lidx,
            peer_slots,
            lidx_inv_mass,
        }
    }

    /// Distributed DSS of one level across ranks. `fields[li]` holds the 16
    /// nodal values of owned element `li`. `interior_work` runs while
    /// messages are in flight in `Redesigned` mode (and before any
    /// communication in `Original` mode, i.e. without overlap).
    pub fn dss_level(
        &self,
        ctx: &mut RankCtx,
        fields: &mut [Vec<f64>],
        mode: ExchangeMode,
        tag: u64,
        mut interior_work: impl FnMut(),
        stats: &mut CopyStats,
    ) -> Result<(), CommError> {
        assert_eq!(fields.len(), self.owned.len());

        // Local weighted accumulation over *all* local gids.
        let mut accum: HashMap<usize, f64> = HashMap::with_capacity(self.owned.len() * NPTS);
        for (li, f) in fields.iter().enumerate() {
            for p in 0..NPTS {
                *accum.entry(self.gids[li][p]).or_insert(0.0) += self.spheremp[li][p] * f[p];
            }
        }

        match mode {
            ExchangeMode::Original => {
                // No overlap: interior work happens strictly before the
                // exchange (the legacy schedule).
                interior_work();

                // Stage 1: pack ALL shared partial sums into one unified
                // pack buffer (extra copy #1).
                let mut pack = vec![0.0; self.nshared];
                for (&g, &slot) in &self.gid_slot {
                    pack[slot] = accum[&g];
                }
                stats.staged_bytes += (self.nshared * 8) as u64;

                // Stage 2: cut per-peer send buffers from the pack buffer
                // (extra copy #2) and send.
                let reqs: Vec<_> = self
                    .links
                    .iter()
                    .map(|(peer, _)| ctx.comm.irecv(*peer, tag))
                    .collect();
                for (peer, gids) in &self.links {
                    let msg: Vec<f64> =
                        gids.iter().map(|g| pack[self.gid_slot[g]]).collect();
                    stats.staged_bytes += (msg.len() * 8) as u64;
                    stats.sent_bytes += (msg.len() * 8) as u64;
                    stats.msgs_sent += 1;
                    ctx.comm.send(*peer, tag, &msg);
                }

                // Stage 3: receive into a unified unpack buffer (extra copy
                // #3), then apply.
                let mut unpack = vec![0.0; self.nshared];
                for (req, (_, gids)) in reqs.into_iter().zip(&self.links) {
                    let m = ctx.comm.wait(req)?;
                    for (g, &val) in gids.iter().zip(&m.data) {
                        unpack[self.gid_slot[g]] += val;
                    }
                    stats.staged_bytes += (m.data.len() * 8) as u64;
                }
                for (&g, &slot) in &self.gid_slot {
                    *accum.get_mut(&g).expect("shared gid is local") += unpack[slot];
                }
            }
            ExchangeMode::Redesigned => {
                // Post receives first, pack straight into the messages,
                // send, then overlap interior work with the flight time.
                let reqs: Vec<_> = self
                    .links
                    .iter()
                    .map(|(peer, _)| ctx.comm.irecv(*peer, tag))
                    .collect();
                for (peer, gids) in &self.links {
                    let msg: Vec<f64> = gids.iter().map(|g| accum[g]).collect();
                    stats.sent_bytes += (msg.len() * 8) as u64;
                    stats.msgs_sent += 1;
                    ctx.comm.send(*peer, tag, &msg);
                }

                interior_work();

                // Accumulate directly from each receive buffer.
                for (req, (_, gids)) in reqs.into_iter().zip(&self.links) {
                    let m = ctx.comm.wait(req)?;
                    for (g, &val) in gids.iter().zip(&m.data) {
                        *accum.get_mut(g).expect("shared gid is local") += val;
                    }
                }
            }
        }

        // Normalize and scatter back.
        for (li, f) in fields.iter_mut().enumerate() {
            for p in 0..NPTS {
                let g = self.gids[li][p];
                f[p] = accum[&g] * self.inv_mass[g];
            }
        }
        Ok(())
    }
}

/// Persistent scratch for the aggregated exchange. Grow-only: after the
/// first (largest) exchange all later calls reuse the storage, so the hot
/// path performs zero heap allocations.
#[derive(Debug, Default)]
pub struct ExchangeBuffers {
    /// Shared-point partial sums, `nval * nshared`.
    shared_accum: Vec<f64>,
    /// Full local assembly, `nval * nlocal`.
    accum: Vec<f64>,
    /// Receive requests posted by `start_aggregated`, one per peer.
    reqs: Vec<(usize, swmpi::RecvRequest)>,
}

impl ExchangeBuffers {
    /// Empty buffers; storage grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExchangePlan {
    /// Start an aggregated halo exchange over several flat SoA arenas at
    /// once: post one receive per peer, then pack the boundary partial
    /// sums of **every arena and every level** into a single per-peer
    /// message and send it. See the module docs for the payload layout.
    ///
    /// Each `arenas[a]` holds `owned.len() * nlev * NPTS` values indexed
    /// `(li * nlev + k) * NPTS + p`. Only **boundary** elements contribute
    /// to shared points (a point shared with a peer lies on the patch
    /// perimeter, and every element containing it has an off-rank
    /// neighbour), so the arenas only need valid boundary data at this
    /// moment — the foundation of the paper's compute/communication
    /// overlap. Interior elements may be updated while the messages fly;
    /// call [`ExchangePlan::finish_aggregated`] once they are.
    pub fn start_aggregated(
        &self,
        ctx: &mut RankCtx,
        arenas: &[&[f64]],
        nlev: usize,
        tag: u64,
        bufs: &mut ExchangeBuffers,
        stats: &mut CopyStats,
    ) {
        self.start_with(ctx, arenas.len(), |a, i| arenas[a][i], nlev, tag, bufs, stats);
    }

    /// Generic core of [`ExchangePlan::start_aggregated`]: `read(a, i)`
    /// yields arena `a` at flat index `i`. Allocation-free (send buffers
    /// come from the communicator pool).
    fn start_with(
        &self,
        ctx: &mut RankCtx,
        narenas: usize,
        read: impl Fn(usize, usize) -> f64,
        nlev: usize,
        tag: u64,
        bufs: &mut ExchangeBuffers,
        stats: &mut CopyStats,
    ) {
        let nval = narenas * nlev;
        let fl = nlev * NPTS;
        let need = nval * self.nshared;
        if bufs.shared_accum.len() < need {
            bufs.shared_accum.resize(need, 0.0);
        }
        bufs.shared_accum[..need].fill(0.0);
        for &li in &self.boundary {
            for p in 0..NPTS {
                let slot = self.point_slot[li * NPTS + p];
                if slot < 0 {
                    continue;
                }
                let slot = slot as usize;
                let w = self.spheremp[li][p];
                for a in 0..narenas {
                    let base = li * fl + p;
                    for k in 0..nlev {
                        bufs.shared_accum[(a * nlev + k) * self.nshared + slot] +=
                            w * read(a, base + k * NPTS);
                    }
                }
            }
        }
        bufs.reqs.clear();
        for (peer, _) in &self.links {
            bufs.reqs.push((*peer, ctx.comm.irecv(*peer, tag)));
        }
        for ((peer, _), slots) in self.links.iter().zip(&self.peer_slots) {
            let npts_peer = slots.len();
            let mut msg = ctx.comm.take_buffer(nval * npts_peer);
            for v in 0..nval {
                let row = v * self.nshared;
                for (j, &slot) in slots.iter().enumerate() {
                    msg[v * npts_peer + j] = bufs.shared_accum[row + slot as usize];
                }
            }
            stats.sent_bytes += (msg.len() * 8) as u64;
            stats.msgs_sent += 1;
            ctx.comm.send_owned(*peer, tag, msg);
        }
    }

    /// Complete an aggregated exchange: accumulate all local contributions
    /// into the dense assembly array, add each peer's payload **directly
    /// from the receive buffer** (no unpack staging), normalize by the
    /// global inverse mass and scatter back. The arenas must now hold
    /// valid data for every owned element.
    pub fn finish_aggregated(
        &self,
        ctx: &mut RankCtx,
        arenas: &mut [&mut [f64]],
        nlev: usize,
        bufs: &mut ExchangeBuffers,
    ) -> Result<(), CommError> {
        let narenas = arenas.len();
        let nval = narenas * nlev;
        let fl = nlev * NPTS;
        let ExchangeBuffers { accum, reqs, .. } = bufs;
        let need = nval * self.nlocal;
        if accum.len() < need {
            accum.resize(need, 0.0);
        }
        accum[..need].fill(0.0);
        for li in 0..self.owned.len() {
            for p in 0..NPTS {
                let d = self.point_lidx[li * NPTS + p] as usize;
                let w = self.spheremp[li][p];
                for (a, arena) in arenas.iter().enumerate() {
                    let base = li * fl + p;
                    for k in 0..nlev {
                        accum[(a * nlev + k) * self.nlocal + d] += w * arena[base + k * NPTS];
                    }
                }
            }
        }
        debug_assert_eq!(reqs.len(), self.links.len());
        for ((_, req), slots) in reqs.drain(..).zip(&self.peer_slots) {
            let m = ctx.comm.wait(req)?;
            let npts_peer = slots.len();
            debug_assert_eq!(m.data.len(), nval * npts_peer);
            for v in 0..nval {
                let row = v * self.nlocal;
                for (j, &slot) in slots.iter().enumerate() {
                    accum[row + self.slot_lidx[slot as usize] as usize] +=
                        m.data[v * npts_peer + j];
                }
            }
            ctx.comm.recycle(m.data);
        }
        for li in 0..self.owned.len() {
            for p in 0..NPTS {
                let d = self.point_lidx[li * NPTS + p] as usize;
                let scale = self.lidx_inv_mass[d];
                for (a, arena) in arenas.iter_mut().enumerate() {
                    let base = li * fl + p;
                    for k in 0..nlev {
                        arena[base + k * NPTS] =
                            accum[(a * nlev + k) * self.nlocal + d] * scale;
                    }
                }
            }
        }
        Ok(())
    }

    /// One-shot aggregated DSS over several arenas (start + finish with no
    /// interior work in between) — the distributed analog of
    /// [`crate::dss::Dss::apply_flat`] for callers that have nothing to
    /// overlap, e.g. hyperviscosity and tracer stages.
    pub fn dss_aggregated(
        &self,
        ctx: &mut RankCtx,
        arenas: &mut [&mut [f64]],
        nlev: usize,
        tag: u64,
        bufs: &mut ExchangeBuffers,
        stats: &mut CopyStats,
    ) -> Result<(), CommError> {
        self.start_with(ctx, arenas.len(), |a, i| arenas[a][i], nlev, tag, bufs, stats);
        self.finish_aggregated(ctx, arenas, nlev, bufs)
    }
}

/// Per-point gather schedule for the distributed task-graph step: the same
/// DSS [`ExchangePlan::finish_aggregated`] computes in bulk, re-expressed
/// so one element can assemble its own points the moment its local
/// neighbours and the relevant peer payloads are in — no rank-wide barrier.
///
/// Bitwise equality with the bulk path is an ordering contract:
///
/// * local contributors to a point are summed in ascending
///   (local element, node) order — exactly the loop order of
///   `finish_aggregated`'s assembly pass;
/// * peer payload contributions are added after all locals, in `links`
///   order — exactly its receive-accumulation pass (receives are waited in
///   link order there);
/// * outgoing per-slot payload values are summed over contributing
///   elements in that same ascending order — exactly the boundary
///   accumulation of `start_aggregated`.
///
/// The contributors to any slot of link `l` are local elements containing
/// one of the link's shared gids; since shared points lie only on boundary
/// elements, these are exactly the elements `start_aggregated` visits.
#[derive(Debug, Clone)]
pub struct GatherPlan {
    /// CSR offsets into `loc_code`/`loc_w`, one row per owned
    /// (element, node): `owned.len() * NPTS + 1` entries.
    pub loc_off: Vec<u32>,
    /// Local contributor codes `li * NPTS + p`, canonical ascending order.
    pub loc_code: Vec<u32>,
    /// Matching spheremp weights.
    pub loc_w: Vec<f64>,
    /// CSR offsets into `rem_link`/`rem_j`, one row per owned point.
    pub rem_off: Vec<u32>,
    /// Link index (into `ExchangePlan::links`) of each remote contribution,
    /// ascending within a row.
    pub rem_link: Vec<u32>,
    /// Shared-gid position `j` within that link's message layout.
    pub rem_j: Vec<u32>,
    /// Inverse mass per owned point (dense, no hashing).
    pub inv: Vec<f64>,
    /// CSR offsets into `elem_link`, one row per owned element. Row `li`
    /// lists the links element `li` contributes to — which, by symmetry of
    /// "contains a shared gid", are also exactly the links whose payloads
    /// its gathers consume.
    pub elem_link_off: Vec<u32>,
    /// Link indices, ascending within a row.
    pub elem_link: Vec<u32>,
    /// Number of contributing local elements per link (`|B(l)|`) — the
    /// countdown seed for deferred packing.
    pub senders: Vec<u32>,
    /// Per-link base into the per-slot send CSR (`links.len() + 1`
    /// entries); slot `(l, j)` is row `link_base[l] + j`.
    pub link_base: Vec<u32>,
    /// CSR offsets into `send_code`/`send_w`, one row per (link, slot).
    pub send_off: Vec<u32>,
    /// Contributor codes `li * NPTS + p` per outgoing slot, ascending.
    pub send_code: Vec<u32>,
    /// Matching spheremp weights.
    pub send_w: Vec<f64>,
}

impl GatherPlan {
    /// Precompute the gather schedule for `plan`. Pure metadata — all
    /// per-step work it enables is allocation-free.
    pub fn new(plan: &ExchangePlan) -> Self {
        let nelem = plan.owned.len();
        let npts = nelem * NPTS;

        // Contributors per dense local point, in canonical order.
        let mut contrib: Vec<Vec<(u32, f64)>> = vec![Vec::new(); plan.nlocal];
        for li in 0..nelem {
            for p in 0..NPTS {
                let d = plan.point_lidx[li * NPTS + p] as usize;
                contrib[d].push(((li * NPTS + p) as u32, plan.spheremp[li][p]));
            }
        }
        // Remote (link, j) entries per dense local point, link-ascending.
        let mut remote: Vec<Vec<(u32, u32)>> = vec![Vec::new(); plan.nlocal];
        for (l, (_, gids)) in plan.links.iter().enumerate() {
            for (j, g) in gids.iter().enumerate() {
                let slot = plan.gid_slot[g];
                let d = plan.slot_lidx[slot] as usize;
                remote[d].push((l as u32, j as u32));
            }
        }

        let mut loc_off = Vec::with_capacity(npts + 1);
        let mut loc_code = Vec::new();
        let mut loc_w = Vec::new();
        let mut rem_off = Vec::with_capacity(npts + 1);
        let mut rem_link = Vec::new();
        let mut rem_j = Vec::new();
        let mut inv = Vec::with_capacity(npts);
        loc_off.push(0);
        rem_off.push(0);
        for pi in 0..npts {
            let d = plan.point_lidx[pi] as usize;
            for &(code, w) in &contrib[d] {
                loc_code.push(code);
                loc_w.push(w);
            }
            loc_off.push(loc_code.len() as u32);
            for &(l, j) in &remote[d] {
                rem_link.push(l);
                rem_j.push(j);
            }
            rem_off.push(rem_link.len() as u32);
            inv.push(plan.lidx_inv_mass[d]);
        }

        // Which links each element touches (contributes to == receives
        // from).
        let mut elem_link_off = Vec::with_capacity(nelem + 1);
        let mut elem_link = Vec::new();
        let mut senders = vec![0u32; plan.links.len()];
        elem_link_off.push(0);
        let mut scratch: Vec<u32> = Vec::new();
        for li in 0..nelem {
            scratch.clear();
            for p in 0..NPTS {
                let d = plan.point_lidx[li * NPTS + p] as usize;
                for &(l, _) in &remote[d] {
                    scratch.push(l);
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            for &l in &scratch {
                elem_link.push(l);
                senders[l as usize] += 1;
            }
            elem_link_off.push(elem_link.len() as u32);
        }

        // Outgoing per-slot contributor CSR, canonical order.
        let mut link_base = Vec::with_capacity(plan.links.len() + 1);
        let mut send_off = Vec::new();
        let mut send_code = Vec::new();
        let mut send_w = Vec::new();
        link_base.push(0);
        send_off.push(0);
        for (_, gids) in &plan.links {
            for g in gids {
                let d = plan.slot_lidx[plan.gid_slot[g]] as usize;
                for &(code, w) in &contrib[d] {
                    send_code.push(code);
                    send_w.push(w);
                }
                send_off.push(send_code.len() as u32);
            }
            link_base.push((send_off.len() - 1) as u32);
        }

        GatherPlan {
            loc_off,
            loc_code,
            loc_w,
            rem_off,
            rem_link,
            rem_j,
            inv,
            elem_link_off,
            elem_link,
            senders,
            link_base,
            send_off,
            send_code,
            send_w,
        }
    }

    /// Links element `li` contributes to / receives from.
    #[inline]
    pub fn links_of(&self, li: usize) -> &[u32] {
        &self.elem_link[self.elem_link_off[li] as usize..self.elem_link_off[li + 1] as usize]
    }

    /// One outgoing payload value for slot `j` of link `l`: the canonical
    /// weighted sum of local contributors, `read(code)` yielding the
    /// pre-DSS value at a contributor point.
    #[inline]
    pub fn send_value(&self, l: usize, j: usize, read: impl Fn(u32) -> f64) -> f64 {
        let row = (self.link_base[l] + j as u32) as usize;
        let mut acc = 0.0;
        for i in self.send_off[row] as usize..self.send_off[row + 1] as usize {
            acc += self.send_w[i] * read(self.send_code[i]);
        }
        acc
    }

    /// Number of outgoing slots for link `l` (== its shared-gid count).
    #[inline]
    pub fn npts_of(&self, l: usize) -> usize {
        (self.link_base[l + 1] - self.link_base[l]) as usize
    }

    /// Assemble one owned point: locals in canonical order, then remote
    /// payload values (`recv(l, j)`) in link order, normalized. Bitwise
    /// equal to what [`ExchangePlan::finish_aggregated`] leaves at that
    /// point.
    #[inline]
    pub fn gather_point(
        &self,
        pi: usize,
        read: impl Fn(u32) -> f64,
        recv: impl Fn(u32, u32) -> f64,
    ) -> f64 {
        let mut acc = 0.0;
        for i in self.loc_off[pi] as usize..self.loc_off[pi + 1] as usize {
            acc += self.loc_w[i] * read(self.loc_code[i]);
        }
        for i in self.rem_off[pi] as usize..self.rem_off[pi + 1] as usize {
            acc += recv(self.rem_link[i], self.rem_j[i]);
        }
        acc * self.inv[pi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dss::Dss;
    use swmpi::run_ranks;

    fn test_field(e: usize, p: usize) -> f64 {
        ((e * 37 + p * 11) % 23) as f64 - 11.0
    }

    fn serial_reference(grid: &CubedSphere) -> Vec<Vec<f64>> {
        let mut dss = Dss::new(grid);
        let mut fields: Vec<Vec<f64>> = (0..grid.nelem())
            .map(|e| (0..NPTS).map(|p| test_field(e, p)).collect())
            .collect();
        let mut views: Vec<&mut [f64]> = fields.iter_mut().map(|f| &mut f[..]).collect();
        dss.apply_level(&mut views);
        drop(views);
        fields
    }

    fn run_distributed(mode: ExchangeMode, nranks: usize) -> (Vec<Vec<f64>>, CopyStats) {
        let grid = CubedSphere::new(4);
        let part = Partition::new(&grid, nranks);
        let plans: Vec<ExchangePlan> =
            (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
        let results = run_ranks(nranks, |ctx| {
            let plan = &plans[ctx.rank()];
            let mut fields: Vec<Vec<f64>> = plan
                .owned
                .iter()
                .map(|&e| (0..NPTS).map(|p| test_field(e, p)).collect())
                .collect();
            let mut stats = CopyStats::default();
            plan.dss_level(ctx, &mut fields, mode, 0, || {}, &mut stats).expect("dss_level");
            assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
            (plan.owned.clone(), fields, stats)
        });
        let mut gathered = vec![Vec::new(); 6 * 4 * 4];
        let mut total = CopyStats::default();
        for (owned, fields, stats) in results {
            for (e, f) in owned.into_iter().zip(fields) {
                gathered[e] = f;
            }
            total.staged_bytes += stats.staged_bytes;
            total.sent_bytes += stats.sent_bytes;
            total.msgs_sent += stats.msgs_sent;
        }
        (gathered, total)
    }

    #[test]
    fn both_modes_match_serial_dss() {
        let grid = CubedSphere::new(4);
        let reference = serial_reference(&grid);
        for mode in [ExchangeMode::Original, ExchangeMode::Redesigned] {
            for nranks in [2usize, 6] {
                let (got, _) = run_distributed(mode, nranks);
                for (e, (g, r)) in got.iter().zip(&reference).enumerate() {
                    for p in 0..NPTS {
                        assert!(
                            (g[p] - r[p]).abs() < 1e-11,
                            "{mode:?} nranks={nranks} elem {e} pt {p}: {} vs {}",
                            g[p],
                            r[p]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn redesign_eliminates_staging_copies() {
        let (_, orig) = run_distributed(ExchangeMode::Original, 6);
        let (_, redesigned) = run_distributed(ExchangeMode::Redesigned, 6);
        assert_eq!(orig.sent_bytes, redesigned.sent_bytes, "same payload");
        assert!(orig.staged_bytes > 2 * orig.sent_bytes, "legacy path stages heavily");
        assert_eq!(redesigned.staged_bytes, 0, "redesign copies nothing extra");
    }

    #[test]
    fn overlap_runs_interior_work_between_send_and_wait() {
        // In Redesigned mode the interior closure runs after sends are
        // posted; we verify it executes (and the exchange still completes)
        // even when the interior work is substantial on every rank.
        let grid = CubedSphere::new(4);
        let nranks = 4;
        let part = Partition::new(&grid, nranks);
        let plans: Vec<ExchangePlan> =
            (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
        let sums = run_ranks(nranks, |ctx| {
            let plan = &plans[ctx.rank()];
            let mut fields: Vec<Vec<f64>> =
                plan.owned.iter().map(|_| vec![1.0; NPTS]).collect();
            let mut stats = CopyStats::default();
            let mut interior_ran = 0u64;
            plan.dss_level(
                ctx,
                &mut fields,
                ExchangeMode::Redesigned,
                7,
                || {
                    interior_ran = (0..20_000u64).map(|i| i % 7).sum();
                },
                &mut stats,
            )
            .expect("dss_level");
            assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
            interior_ran
        });
        for s in sums {
            assert!(s > 0, "interior work did not run");
        }
    }

    /// Distinct multi-level test data per (arena, element, level, point).
    fn test_arena_value(a: usize, e: usize, k: usize, p: usize) -> f64 {
        ((a * 53 + e * 37 + k * 19 + p * 11) % 29) as f64 - 14.0
    }

    #[test]
    fn aggregated_exchange_matches_serial_dss() {
        let nlev = 3;
        let narenas = 2;
        let grid = CubedSphere::new(4);
        let nelem = grid.nelem();

        // Serial reference: flat global arenas through Dss::apply_flat.
        let mut dss = Dss::new(&grid);
        let mut reference: Vec<Vec<f64>> = (0..narenas)
            .map(|a| {
                let mut arena = vec![0.0; nelem * nlev * NPTS];
                for e in 0..nelem {
                    for k in 0..nlev {
                        for p in 0..NPTS {
                            arena[(e * nlev + k) * NPTS + p] = test_arena_value(a, e, k, p);
                        }
                    }
                }
                arena
            })
            .collect();
        for arena in &mut reference {
            dss.apply_flat(arena, nlev);
        }

        for nranks in [2usize, 5] {
            let part = Partition::new(&grid, nranks);
            let plans: Vec<ExchangePlan> =
                (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
            let results = run_ranks(nranks, |ctx| {
                let plan = &plans[ctx.rank()];
                let mut arenas: Vec<Vec<f64>> = (0..narenas)
                    .map(|a| {
                        let mut arena = vec![0.0; plan.owned.len() * nlev * NPTS];
                        for (li, &e) in plan.owned.iter().enumerate() {
                            for k in 0..nlev {
                                for p in 0..NPTS {
                                    arena[(li * nlev + k) * NPTS + p] =
                                        test_arena_value(a, e, k, p);
                                }
                            }
                        }
                        arena
                    })
                    .collect();
                let mut bufs = ExchangeBuffers::new();
                let mut stats = CopyStats::default();
                {
                    let mut views: Vec<&mut [f64]> =
                        arenas.iter_mut().map(|a| &mut a[..]).collect();
                    plan.dss_aggregated(ctx, &mut views, nlev, 1, &mut bufs, &mut stats).expect("dss");
                }
                assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
                // Exactly one message per peer for the whole multi-arena,
                // multi-level exchange.
                assert_eq!(stats.msgs_sent, plan.links.len() as u64);
                assert_eq!(ctx.comm.stats().sends, plan.links.len() as u64);
                assert_eq!(stats.staged_bytes, 0);
                (plan.owned.clone(), arenas)
            });
            for (owned, arenas) in results {
                for (li, &e) in owned.iter().enumerate() {
                    for (a, arena) in arenas.iter().enumerate() {
                        for k in 0..nlev {
                            for p in 0..NPTS {
                                let got = arena[(li * nlev + k) * NPTS + p];
                                let want = reference[a][(e * nlev + k) * NPTS + p];
                                assert!(
                                    (got - want).abs() < 1e-11,
                                    "nranks={nranks} arena {a} elem {e} lev {k} pt {p}: \
                                     {got} vs {want}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn aggregated_overlap_interior_between_start_and_finish() {
        // start_aggregated sees only boundary data; interior values are
        // filled in while messages are in flight. The DSS result must be
        // identical to the no-overlap path because shared points live only
        // on boundary elements.
        let nlev = 2;
        let grid = CubedSphere::new(4);
        let nranks = 4;
        let part = Partition::new(&grid, nranks);
        let plans: Vec<ExchangePlan> =
            (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
        let results = run_ranks(nranks, |ctx| {
            let plan = &plans[ctx.rank()];
            let fill = |arena: &mut [f64], lis: &[usize]| {
                for &li in lis {
                    let e = plan.owned[li];
                    for k in 0..nlev {
                        for p in 0..NPTS {
                            arena[(li * nlev + k) * NPTS + p] = test_arena_value(0, e, k, p);
                        }
                    }
                }
            };
            let mut bufs = ExchangeBuffers::new();
            let mut stats = CopyStats::default();
            let mut arena = vec![0.0; plan.owned.len() * nlev * NPTS];
            fill(&mut arena, &plan.boundary);
            plan.start_aggregated(ctx, &[&arena], nlev, 3, &mut bufs, &mut stats);
            // "Interior compute" while messages fly.
            fill(&mut arena, &plan.interior);
            let mut views = [&mut arena[..]];
            plan.finish_aggregated(ctx, &mut views, nlev, &mut bufs).expect("finish");
            assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
            (plan.owned.clone(), arena)
        });

        // Against the one-shot aggregated path on a single rank world view:
        // recompute the serial reference.
        let mut dss = Dss::new(&grid);
        let mut reference = vec![0.0; grid.nelem() * nlev * NPTS];
        for e in 0..grid.nelem() {
            for k in 0..nlev {
                for p in 0..NPTS {
                    reference[(e * nlev + k) * NPTS + p] = test_arena_value(0, e, k, p);
                }
            }
        }
        dss.apply_flat(&mut reference, nlev);
        for (owned, arena) in results {
            for (li, &e) in owned.iter().enumerate() {
                for i in 0..nlev * NPTS {
                    let got = arena[li * nlev * NPTS + i];
                    let want = reference[e * nlev * NPTS + i];
                    assert!((got - want).abs() < 1e-11, "elem {e} idx {i}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn gather_plan_matches_aggregated_exchange_bitwise() {
        // The per-point gather schedule must reproduce the bulk aggregated
        // DSS *bitwise* — same contributors, same floating-point order.
        let nlev = 3;
        let narenas = 2;
        let grid = CubedSphere::new(4);
        for nranks in [2usize, 5] {
            let part = Partition::new(&grid, nranks);
            let plans: Vec<ExchangePlan> =
                (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
            let gplans: Vec<GatherPlan> = plans.iter().map(GatherPlan::new).collect();

            // Pre-DSS arenas per rank (the "raw" data).
            let raw: Vec<Vec<Vec<f64>>> = plans
                .iter()
                .map(|plan| {
                    (0..narenas)
                        .map(|a| {
                            let mut arena = vec![0.0; plan.owned.len() * nlev * NPTS];
                            for (li, &e) in plan.owned.iter().enumerate() {
                                for k in 0..nlev {
                                    for p in 0..NPTS {
                                        arena[(li * nlev + k) * NPTS + p] =
                                            test_arena_value(a, e, k, p);
                                    }
                                }
                            }
                            arena
                        })
                        .collect()
                })
                .collect();

            // Oracle: the bulk path over real message passing.
            let raw_for_ranks = raw.clone();
            let oracle = run_ranks(nranks, move |ctx| {
                let plan = &plans[ctx.rank()];
                let mut arenas = raw_for_ranks[ctx.rank()].clone();
                let mut bufs = ExchangeBuffers::new();
                let mut stats = CopyStats::default();
                let mut views: Vec<&mut [f64]> =
                    arenas.iter_mut().map(|a| &mut a[..]).collect();
                plan.dss_aggregated(ctx, &mut views, nlev, 1, &mut bufs, &mut stats)
                    .expect("dss");
                drop(views);
                arenas
            });

            // GatherPlan path, payloads computed straight from the peers'
            // raw arenas through their send CSRs (what the event loop
            // packs).
            let plans: Vec<ExchangePlan> =
                (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
            for r in 0..nranks {
                let plan = &plans[r];
                let gp = &gplans[r];
                for a in 0..narenas {
                    for k in 0..nlev {
                        for pi in 0..plan.owned.len() * NPTS {
                            let got = gp.gather_point(
                                pi,
                                |code| {
                                    let (li, p) = (code as usize / NPTS, code as usize % NPTS);
                                    raw[r][a][(li * nlev + k) * NPTS + p]
                                },
                                |l, j| {
                                    let peer = plan.links[l as usize].0;
                                    let back = plans[peer]
                                        .links
                                        .iter()
                                        .position(|(p2, _)| *p2 == r)
                                        .expect("symmetric link");
                                    gplans[peer].send_value(back, j as usize, |code| {
                                        let (li, p) =
                                            (code as usize / NPTS, code as usize % NPTS);
                                        raw[peer][a][(li * nlev + k) * NPTS + p]
                                    })
                                },
                            );
                            let (li, p) = (pi / NPTS, pi % NPTS);
                            let want = oracle[r][a][(li * nlev + k) * NPTS + p];
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "nranks={nranks} rank {r} arena {a} lev {k} pt {pi}: \
                                 {got} vs {want}"
                            );
                        }
                    }
                }
            }

            // Sanity on the bookkeeping the event loop relies on.
            for (r, gp) in gplans.iter().enumerate() {
                let plan = ExchangePlan::new(&grid, &part, r);
                for (l, _) in plan.links.iter().enumerate() {
                    assert_eq!(gp.npts_of(l), plan.links[l].1.len());
                    let members = (0..plan.owned.len())
                        .filter(|&li| gp.links_of(li).contains(&(l as u32)))
                        .count();
                    assert_eq!(members as u32, gp.senders[l], "|B(l)| mismatch");
                }
                // Interior elements touch no links.
                for &li in &plan.interior {
                    assert!(gp.links_of(li).is_empty());
                }
            }
        }
    }

    #[test]
    fn boundary_interior_split_covers_all_elements() {
        let grid = CubedSphere::new(4);
        let part = Partition::new(&grid, 6);
        for r in 0..6 {
            let plan = ExchangePlan::new(&grid, &part, r);
            assert_eq!(plan.boundary.len() + plan.interior.len(), plan.owned.len());
            assert!(!plan.boundary.is_empty());
            // Links are symmetric: each peer lists us too.
            for (peer, gids) in &plan.links {
                let peer_plan = ExchangePlan::new(&grid, &part, *peer);
                let back = peer_plan
                    .links
                    .iter()
                    .find(|(p, _)| *p == r)
                    .expect("peer link missing");
                assert_eq!(&back.1, gids, "gid lists must agree for message layout");
            }
        }
    }
}
