//! Distributed `prim_run` dynamics: the paper's redesigned schedule inside
//! the real model loop.
//!
//! Each rank owns a space-filling-curve patch of elements. A Runge–Kutta
//! substep runs exactly as Section 7.6 prescribes:
//!
//! 1. evaluate tendencies and update the **boundary** elements first;
//! 2. start ONE aggregated halo exchange — post one receive per peer and
//!    send one message per peer carrying the boundary partial sums of all
//!    four prognostics at every level (complete, because only boundary
//!    elements touch shared points);
//! 3. evaluate tendencies and update the **interior** elements *while the
//!    messages are in flight*;
//! 4. complete the DSS by accumulating each peer's payload directly from
//!    the receive buffer into the flat SoA arenas.
//!
//! The `Original` mode runs the same numerics without overlap or
//! aggregation: all compute first, then one staging-buffer exchange per
//! (field, level), which is the legacy `bndry_exchangev` message pattern
//! the paper's Figure 11 starts from. Both modes are verified equivalent
//! to the serial [`Dycore`](crate::prim::Dycore) — including the tracer
//! limiter and the full hyperviscosity configuration (`nu_p`, `nu_top`,
//! sponge layers), which the driver consumes via the same
//! [`DycoreConfig`] as the serial driver.
//!
//! Rank-local state lives in the same flat SoA [`State`] arena as the
//! serial driver, sized for the owned elements only, and all temporaries
//! live in a persistent [`DistWorkspace`]: after a warm-up step the
//! distributed step performs zero heap allocations (send buffers are
//! pooled by the communicator; enforced by the `dist_alloc` test).

use crate::bndry::{CopyStats, ExchangeBuffers, ExchangeMode, ExchangePlan, GatherPlan};
use crate::deriv::ElemOps;
use crate::euler::{limit_nonnegative, limit_tracer_arena, tracer_flux_divergence};
use crate::health::{
    commit_scan, scan_stage, DegradePolicy, HealthConfig, HealthError, StepHealth, TRACER_STAGE,
};
use crate::hypervis::{ElemHypervisPlan, MIN_GLL_GAP_METERS};
use crate::kernels::blocked::{
    build_blocked_ops, element_rhs_apply_blocked, euler_stage_element_blocked,
    hypervis_pass_element_blocked, hypervis_pass_levels_blocked, laplace_levels_blocked,
    sponge_pass_element_blocked, vlaplace_levels_blocked, BlockedOps, KernelPath, StageCombine,
};
use crate::prim::{DycoreConfig, KG5_COEFFS};
use crate::kernels::blocked::remap_element_planned;
use crate::remap::remap_element_scalar;
use crate::rhs::{element_rhs_raw, Rhs};
use crate::state::{Dims, State};
use crate::taskgraph::{Neighbors, PipelineStage, StepPath};
use crate::vert::VertCoord;
use crate::workspace::{DistGraphBufs, DistWorkspace, DynFields, WorkerScratch, EMPTY_SCAN};
use cubesphere::{CubedSphere, Partition, NPTS};
use swmpi::{CommError, Message, RankCtx};

/// Why a distributed step could not be committed. Both variants mean the
/// local state may be partially advanced: the resilient driver restores
/// the last checkpoint before retrying.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A halo exchange failed (peer timed out or a rank died).
    Comm(CommError),
    /// An in-step health guard tripped.
    Health(HealthError),
}

impl From<CommError> for DistError {
    fn from(e: CommError) -> Self {
        DistError::Comm(e)
    }
}

impl From<HealthError> for DistError {
    fn from(e: HealthError) -> Self {
        DistError::Health(e)
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Comm(e) => write!(f, "halo exchange failed: {e}"),
            DistError::Health(e) => write!(f, "health guard tripped: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

/// How many low bits of the message tag carry the in-epoch sequence
/// number; the bits above carry the rollback epoch, so one `purge_below`
/// with [`DistDycore::tag_floor`] discards every stale-epoch message.
pub const EPOCH_SHIFT: u32 = 48;

/// Per-rank distributed dynamics driver.
pub struct DistDycore {
    /// Exchange plan (owned elements, peers, shared gids).
    pub plan: ExchangePlan,
    /// Operator tables for the owned elements (local indexing).
    pub ops: Vec<ElemOps>,
    /// RHS evaluator.
    pub rhs: Rhs,
    /// Dimensions.
    pub dims: Dims,
    /// Configuration (shared with the serial driver).
    pub cfg: DycoreConfig,
    /// Exchange schedule.
    pub mode: ExchangeMode,
    /// Accumulated staging-copy / message statistics.
    pub stats: CopyStats,
    /// In-step health guard configuration ([`DistDycore::step_checked`]).
    pub health: HealthConfig,
    /// What a CFL breach does to the following steps.
    pub degrade: DegradePolicy,
    /// Which kernel implementation the step pipeline dispatches to
    /// (blocked by default; the scalar path is the parity oracle).
    pub kernels: KernelPath,
    /// Which step schedule [`DistDycore::step`] runs: the bulk-synchronous
    /// phase sequence, or the message-driven per-element task graph
    /// (bitwise identical to `Bulk` under `Redesigned` exchanges).
    pub step_path: StepPath,
    bops: Vec<BlockedOps>,
    /// Per-point gather schedule of the task-graph step.
    gplan: GatherPlan,
    /// Rank-local element adjacency (shared-gid neighbours).
    nbr: Neighbors,
    /// Local elements touching each link (inverse of `gplan.elem_link`).
    link_elems: Vec<Vec<u32>>,
    /// Stability-derived hyperviscosity subcycles (identical on every rank
    /// and to the serial driver: computed from global element 0).
    subcycles: usize,
    /// Same, for the halved `dt` the degradation policy runs under.
    subcycles_half: usize,
    ws: DistWorkspace,
    steps_since_remap: usize,
    degrade_pending: usize,
    char_dx: f64,
    epoch: u64,
    tag: u64,
}

/// The four DSS'd prognostics, in exchange order (u, v, T, dp3d).
const NFIELDS: usize = 4;

impl DistDycore {
    /// Build the driver for `rank` of `part` on `grid`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grid: &CubedSphere,
        part: &Partition,
        rank: usize,
        dims: Dims,
        ptop: f64,
        cfg: DycoreConfig,
        mode: ExchangeMode,
    ) -> Self {
        let plan = ExchangePlan::new(grid, part, rank);
        let ops: Vec<ElemOps> = plan
            .owned
            .iter()
            .map(|&e| ElemOps::new(&grid.elements[e], &grid.basis))
            .collect();
        let bops = build_blocked_ops(&ops);
        let vert = VertCoord::standard(dims.nlev, ptop);
        let el0 = &grid.elements[0];
        let subcycles = cfg.hypervis.stable_subcycles(el0.dab, el0.metric[0].metdet, cfg.dt);
        let subcycles_half =
            cfg.hypervis.stable_subcycles(el0.dab, el0.metric[0].metdet, cfg.dt / 2.0);
        // Same CFL length scale as the serial driver: smallest GLL gap on
        // global element 0, floored at [`MIN_GLL_GAP_METERS`], so every
        // rank judges CFL identically.
        let ref_gap = 1.0 - 1.0 / 5.0_f64.sqrt();
        let char_dx =
            (ref_gap * 0.5 * el0.dab * el0.metric[0].metdet.sqrt()).max(MIN_GLL_GAP_METERS);
        let ws = DistWorkspace::new(dims, plan.owned.len(), cfg.hypervis.sponge_layers);
        let gplan = GatherPlan::new(&plan);
        let nbr = Neighbors::from_gids(plan.owned.len(), |li| &plan.gids[li][..]);
        let mut link_elems = vec![Vec::new(); plan.links.len()];
        for li in 0..plan.owned.len() {
            for &l in gplan.links_of(li) {
                link_elems[l as usize].push(li as u32);
            }
        }
        DistDycore {
            plan,
            ops,
            rhs: Rhs::new(vert, dims),
            dims,
            cfg,
            mode,
            stats: CopyStats::default(),
            health: HealthConfig::default(),
            degrade: DegradePolicy::default(),
            kernels: KernelPath::default(),
            step_path: StepPath::default(),
            bops,
            gplan,
            nbr,
            link_elems,
            subcycles,
            subcycles_half,
            ws,
            steps_since_remap: 0,
            degrade_pending: 0,
            char_dx,
            epoch: 0,
            tag: 0,
        }
    }

    /// Hyperviscosity subcycles this driver will run (same formula as
    /// [`Dycore::hypervis_subcycles`](crate::prim::Dycore::hypervis_subcycles)).
    pub fn hypervis_subcycles(&self) -> usize {
        self.subcycles
    }

    /// Extract this rank's elements from a global state arena into a local
    /// arena (local index `li` = position in `plan.owned`).
    pub fn local_state(&self, global: &State) -> State {
        let mut local = State::zeros(self.dims, self.plan.owned.len());
        for (li, &e) in self.plan.owned.iter().enumerate() {
            let src = global.elem(e);
            let dst = local.elem_mut(li);
            dst.u.copy_from_slice(src.u);
            dst.v.copy_from_slice(src.v);
            dst.t.copy_from_slice(src.t);
            dst.dp3d.copy_from_slice(src.dp3d);
            dst.qdp.copy_from_slice(src.qdp);
            dst.phis.copy_from_slice(src.phis);
        }
        local
    }

    /// Advance the dynamics by one `dt` with the 5-stage Kinnmark–Gray RK.
    /// One aggregated exchange (one message per peer) per substep in
    /// `Redesigned` mode.
    pub fn dynamics_step(&mut self, ctx: &mut RankCtx, state: &mut State) -> Result<(), CommError> {
        let dt = self.cfg.dt;
        let DistDycore { plan, ops, rhs, dims, mode, stats, ws, tag, kernels, bops, .. } = self;
        let DistWorkspace { base, stage, next, scratch, ex, .. } = ws;
        base.copy_from_state(state);
        stage.copy_from_state(state);
        for &c in &KG5_COEFFS {
            rk_substep(
                *kernels,
                plan,
                ops,
                bops,
                rhs,
                *dims,
                *mode,
                ctx,
                base,
                stage,
                &state.phis,
                c * dt,
                next,
                scratch,
                ex,
                stats,
                tag,
            )?;
            std::mem::swap(stage, next);
        }
        state.u.copy_from_slice(&stage.u);
        state.v.copy_from_slice(&stage.v);
        state.t.copy_from_slice(&stage.t);
        state.dp3d.copy_from_slice(&stage.dp3d);
        Ok(())
    }

    /// [`DistDycore::dynamics_step`] with a health scan after each RK
    /// stage (the distributed half of [`crate::prim::Dycore::step_checked`]).
    fn dynamics_step_guarded(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut State,
        health: &mut StepHealth,
    ) -> Result<(), DistError> {
        let dt = self.cfg.dt;
        let hcfg = self.health;
        let DistDycore { plan, ops, rhs, dims, mode, stats, ws, tag, kernels, bops, .. } = self;
        let DistWorkspace { base, stage, next, scratch, ex, .. } = ws;
        base.copy_from_state(state);
        stage.copy_from_state(state);
        for (stage_ix, &c) in KG5_COEFFS.iter().enumerate() {
            rk_substep(
                *kernels,
                plan,
                ops,
                bops,
                rhs,
                *dims,
                *mode,
                ctx,
                base,
                stage,
                &state.phis,
                c * dt,
                next,
                scratch,
                ex,
                stats,
                tag,
            )?;
            let scan = scan_stage(&next.u, &next.v, &next.t, &next.dp3d, &[]);
            commit_scan(health, &hcfg, stage_ix, scan)?;
            std::mem::swap(stage, next);
        }
        state.u.copy_from_slice(&stage.u);
        state.v.copy_from_slice(&stage.v);
        state.t.copy_from_slice(&stage.t);
        state.dp3d.copy_from_slice(&stage.dp3d);
        Ok(())
    }

    /// Distributed subcycled biharmonic hyperviscosity, operator-for-
    /// operator identical to
    /// [`Dycore::apply_hypervis`](crate::prim::Dycore::apply_hypervis):
    /// top-of-model sponge first (ordinary Laplacian, `+nu_top` damping
    /// halved per layer down), then `subcycles` applications of the weak
    /// biharmonic with `nu` on u/v/T and `nu_p` on dp3d. Each Laplacian
    /// application DSSes all participating fields in one aggregated
    /// exchange.
    pub fn apply_hypervis(&mut self, ctx: &mut RankCtx, state: &mut State) -> Result<(), DistError> {
        let subcycles = self.subcycles;
        self.apply_hypervis_n(ctx, state, subcycles)
    }

    /// [`DistDycore::apply_hypervis`] with an explicit subcycle count (the
    /// degradation policy adds extra subcycles on top of the stable count).
    ///
    /// Like the serial driver, both kernel paths build the per-step
    /// [`ElemHypervisPlan`] first — a corrupt element metric or non-finite
    /// coefficient surfaces as [`DistError::Health`] before any field or
    /// message is touched. The blocked path runs the fused per-element
    /// sweeps with the plan's hoisted coefficients; the exchange schedule
    /// (one aggregated DSS per Laplacian application) is unchanged.
    pub fn apply_hypervis_n(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut State,
        subcycles: usize,
    ) -> Result<(), DistError> {
        let hv = self.cfg.hypervis;
        if hv.nu == 0.0 && hv.nu_p == 0.0 {
            return Ok(());
        }
        let dt = self.cfg.dt;
        let DistDycore { plan, ops, dims, mode, stats, ws, tag, kernels, bops, .. } = self;
        let kernels = *kernels;
        let nlev = dims.nlev;
        let fl = dims.field_len();
        let nelem = ops.len();
        ws.hv_plan.build(&hv, dt, subcycles, nlev, ops).map_err(HealthError::from)?;
        if let KernelPath::Blocked = kernels {
            let hvp = &ws.hv_plan;
            if hv.nu_top > 0.0 && hv.sponge_layers > 0 {
                let ks = hvp.ks;
                let sl = ks * NPTS;
                // Fused sponge Laplacian straight out of the state (the
                // staging copies are gone), one aggregated DSS, then the
                // apply with the plan's hoisted `dt * nu_top * 2^-k`.
                for e in 0..nelem {
                    sponge_pass_element_blocked(
                        &bops[e],
                        ks,
                        &state.u[e * fl..e * fl + sl],
                        &state.v[e * fl..e * fl + sl],
                        &state.t[e * fl..e * fl + sl],
                        &mut ws.sponge_u[e * sl..(e + 1) * sl],
                        &mut ws.sponge_v[e * sl..(e + 1) * sl],
                        &mut ws.sponge_t[e * sl..(e + 1) * sl],
                    );
                }
                {
                    let mut arenas: [&mut [f64]; 3] =
                        [&mut ws.sponge_u, &mut ws.sponge_v, &mut ws.sponge_t];
                    dss_arenas(plan, *mode, ctx, &mut arenas, ks, &mut ws.ex, stats, tag)?;
                }
                for e in 0..nelem {
                    for k in 0..ks {
                        let cs = hvp.sponge[k];
                        for p in 0..NPTS {
                            let i = k * NPTS + p;
                            let si = e * sl + i;
                            let gi = e * fl + i;
                            state.u[gi] += cs * ws.sponge_u[si];
                            state.v[gi] += cs * ws.sponge_v[si];
                            state.t[gi] += cs * ws.sponge_t[si];
                        }
                    }
                }
            }
            for _ in 0..subcycles {
                // First Laplacian of all four fields in one fused
                // coefficient walk per element, straight from the state
                // into the hyp arenas (the per-subcycle copy is gone).
                for e in 0..nelem {
                    let er = e * fl..(e + 1) * fl;
                    hypervis_pass_element_blocked(
                        &bops[e],
                        nlev,
                        &state.u[er.clone()],
                        &state.v[er.clone()],
                        &state.t[er.clone()],
                        &state.dp3d[er.clone()],
                        &mut ws.hyp.u[er.clone()],
                        &mut ws.hyp.v[er.clone()],
                        &mut ws.hyp.t[er.clone()],
                        &mut ws.hyp.dp3d[er],
                    );
                }
                {
                    let mut arenas: [&mut [f64]; NFIELDS] =
                        [&mut ws.hyp.u, &mut ws.hyp.v, &mut ws.hyp.t, &mut ws.hyp.dp3d];
                    dss_arenas(plan, *mode, ctx, &mut arenas, nlev, &mut ws.ex, stats, tag)?;
                }
                // Second Laplacian in place (del^4 = lap(lap)).
                for e in 0..nelem {
                    let er = e * fl..(e + 1) * fl;
                    let (hu, hv_, ht, hdp) = (
                        &mut ws.hyp.u[er.clone()],
                        &mut ws.hyp.v[er.clone()],
                        &mut ws.hyp.t[er.clone()],
                        &mut ws.hyp.dp3d[er.clone()],
                    );
                    hypervis_pass_levels_blocked(&bops[e], nlev, hu, hv_, ht, hdp);
                }
                {
                    let mut arenas: [&mut [f64]; NFIELDS] =
                        [&mut ws.hyp.u, &mut ws.hyp.v, &mut ws.hyp.t, &mut ws.hyp.dp3d];
                    dss_arenas(plan, *mode, ctx, &mut arenas, nlev, &mut ws.ex, stats, tag)?;
                }
                // Forward-Euler apply with the plan's hoisted `dt_sub * nu`
                // products (bitwise the same as the scalar oracle's).
                let cu = hvp.coef_u;
                let cdp = hvp.coef_dp;
                for (x, l) in state.u.iter_mut().zip(&ws.hyp.u) {
                    *x -= cu * l;
                }
                for (x, l) in state.v.iter_mut().zip(&ws.hyp.v) {
                    *x -= cu * l;
                }
                for (x, l) in state.t.iter_mut().zip(&ws.hyp.t) {
                    *x -= cu * l;
                }
                for (x, l) in state.dp3d.iter_mut().zip(&ws.hyp.dp3d) {
                    *x -= cdp * l;
                }
            }
            return Ok(());
        }
        if hv.nu_top > 0.0 && hv.sponge_layers > 0 {
            let ks = hv.sponge_layers.min(nlev);
            let sl = ks * NPTS;
            for e in 0..nelem {
                ws.sponge_u[e * sl..(e + 1) * sl]
                    .copy_from_slice(&state.u[e * fl..e * fl + sl]);
                ws.sponge_v[e * sl..(e + 1) * sl]
                    .copy_from_slice(&state.v[e * fl..e * fl + sl]);
                ws.sponge_t[e * sl..(e + 1) * sl]
                    .copy_from_slice(&state.t[e * fl..e * fl + sl]);
            }
            vlaplace_elems_path(kernels, ops, bops, ks, &mut ws.sponge_u, &mut ws.sponge_v);
            laplace_elems_path(kernels, ops, bops, ks, &mut ws.sponge_t);
            {
                let mut arenas: [&mut [f64]; 3] =
                    [&mut ws.sponge_u, &mut ws.sponge_v, &mut ws.sponge_t];
                dss_arenas(plan, *mode, ctx, &mut arenas, ks, &mut ws.ex, stats, tag)?;
            }
            for e in 0..nelem {
                for (k, damp) in (0..ks).map(|k| (k, 1.0 / (1 << k) as f64)) {
                    for p in 0..NPTS {
                        let i = k * NPTS + p;
                        let si = e * sl + i;
                        let gi = e * fl + i;
                        state.u[gi] += dt * hv.nu_top * damp * ws.sponge_u[si];
                        state.v[gi] += dt * hv.nu_top * damp * ws.sponge_v[si];
                        state.t[gi] += dt * hv.nu_top * damp * ws.sponge_t[si];
                    }
                }
            }
        }
        let dt_sub = dt / subcycles as f64;
        for _ in 0..subcycles {
            ws.hyp.copy_from_state(state);
            // del^4 via two Laplacians with a DSS after each application
            // (vector Laplacian for wind, weak-form scalar for T, dp3d).
            for _ in 0..2 {
                vlaplace_elems_path(kernels, ops, bops, nlev, &mut ws.hyp.u, &mut ws.hyp.v);
                laplace_elems_path(kernels, ops, bops, nlev, &mut ws.hyp.t);
                laplace_elems_path(kernels, ops, bops, nlev, &mut ws.hyp.dp3d);
                let mut arenas: [&mut [f64]; NFIELDS] =
                    [&mut ws.hyp.u, &mut ws.hyp.v, &mut ws.hyp.t, &mut ws.hyp.dp3d];
                dss_arenas(plan, *mode, ctx, &mut arenas, nlev, &mut ws.ex, stats, tag)?;
            }
            for (x, l) in state.u.iter_mut().zip(&ws.hyp.u) {
                *x -= dt_sub * hv.nu * l;
            }
            for (x, l) in state.v.iter_mut().zip(&ws.hyp.v) {
                *x -= dt_sub * hv.nu * l;
            }
            for (x, l) in state.t.iter_mut().zip(&ws.hyp.t) {
                *x -= dt_sub * hv.nu * l;
            }
            for (x, l) in state.dp3d.iter_mut().zip(&ws.hyp.dp3d) {
                *x -= dt_sub * hv.nu_p * l;
            }
        }
        Ok(())
    }

    /// Distributed 3-stage SSP-RK2 tracer advection (`euler_step`): one
    /// aggregated DSS per stage over the whole `[qsize][nlev]` tracer
    /// arena, followed by the same sign-preserving limiter the serial
    /// driver applies when `cfg.limiter` is set.
    pub fn euler_step_tracers(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut State,
    ) -> Result<(), CommError> {
        if self.dims.qsize == 0 {
            return Ok(());
        }
        let dt = self.cfg.dt;
        let limiter = self.cfg.limiter;
        let DistDycore { plan, ops, dims, mode, stats, ws, tag, kernels, bops, .. } = self;
        ws.qdp0.copy_from_slice(&state.qdp);
        match kernels {
            KernelPath::Blocked => {
                // Fused stages: advect + SSP combine in one pass, with the
                // mass fluxes hoisted across the tracer loop.
                // Stage 1: q1 = q0 + dt L(q0)
                tracer_stage_blocked(
                    bops, *dims, &state.u, &state.v, &state.dp3d, &ws.qdp0, &ws.qdp0, dt,
                    StageCombine::Replace, &mut ws.q1,
                );
                finish_stage(plan, ops, *dims, *mode, limiter, ctx, &mut ws.q1, &mut ws.ex, stats, tag)?;
                // Stage 2: q2 = 3/4 q0 + 1/4 (q1 + dt L(q1))
                tracer_stage_blocked(
                    bops, *dims, &state.u, &state.v, &state.dp3d, &ws.q1, &ws.qdp0, dt,
                    StageCombine::Ssp2, &mut ws.q2,
                );
                finish_stage(plan, ops, *dims, *mode, limiter, ctx, &mut ws.q2, &mut ws.ex, stats, tag)?;
                // Stage 3: q^{n+1} = 1/3 q0 + 2/3 (q2 + dt L(q2))
                tracer_stage_blocked(
                    bops, *dims, &state.u, &state.v, &state.dp3d, &ws.q2, &ws.qdp0, dt,
                    StageCombine::Ssp3, &mut state.qdp,
                );
                finish_stage(plan, ops, *dims, *mode, limiter, ctx, &mut state.qdp, &mut ws.ex, stats, tag)
            }
            KernelPath::Scalar => {
                // Stage 1: q1 = q0 + dt L(q0)
                tracer_substep(ops, *dims, &state.u, &state.v, &state.dp3d, &ws.qdp0, dt, &mut ws.q1);
                finish_stage(plan, ops, *dims, *mode, limiter, ctx, &mut ws.q1, &mut ws.ex, stats, tag)?;
                // Stage 2: q2 = 3/4 q0 + 1/4 (q1 + dt L(q1))
                tracer_substep(ops, *dims, &state.u, &state.v, &state.dp3d, &ws.q1, dt, &mut ws.qtmp);
                for (q2, (q0, t)) in ws.q2.iter_mut().zip(ws.qdp0.iter().zip(&ws.qtmp)) {
                    *q2 = 0.75 * q0 + 0.25 * t;
                }
                finish_stage(plan, ops, *dims, *mode, limiter, ctx, &mut ws.q2, &mut ws.ex, stats, tag)?;
                // Stage 3: q^{n+1} = 1/3 q0 + 2/3 (q2 + dt L(q2))
                tracer_substep(ops, *dims, &state.u, &state.v, &state.dp3d, &ws.q2, dt, &mut ws.qtmp);
                for (qf, (q0, t)) in state.qdp.iter_mut().zip(ws.qdp0.iter().zip(&ws.qtmp)) {
                    *qf = q0 / 3.0 + 2.0 / 3.0 * t;
                }
                finish_stage(plan, ops, *dims, *mode, limiter, ctx, &mut state.qdp, &mut ws.ex, stats, tag)
            }
        }
    }

    /// Element-local vertical remap (no communication needed). Columns
    /// come from the workspace scratch — allocation-free.
    ///
    /// # Errors
    /// A collapsed Lagrangian layer or mass-inconsistent column surfaces as
    /// [`HealthError::Remap`] instead of panicking the rank thread (which
    /// would abort the whole process from under `try_run_ranks`); the
    /// resilient driver rolls back to a checkpoint. On `Err` the state may
    /// hold partially remapped elements.
    pub fn vertical_remap(&mut self, state: &mut State) -> Result<(), HealthError> {
        let DistDycore { rhs, dims, ws, kernels, .. } = self;
        let nlev = dims.nlev;
        let qsize = dims.qsize;
        let vert = &rhs.vert;
        let scratch = &mut ws.scratch;
        for es in state.elems_mut() {
            match kernels {
                KernelPath::Blocked => {
                    // Build the dp3d-only plan once, then stream u/v/t and
                    // every tracer through its coefficient-apply pass.
                    let WorkerScratch { plan, apply, .. } = scratch;
                    plan.build(vert, nlev, es.dp3d)?;
                    remap_element_planned(
                        plan, nlev, qsize, es.u, es.v, es.t, es.dp3d, es.qdp, apply,
                    )
                }
                KernelPath::Scalar => {
                    let WorkerScratch { remap, col_src, col_dst, col_val, col_out, .. } = scratch;
                    remap_element_scalar(
                        vert, nlev, qsize, es.u, es.v, es.t, es.dp3d, es.qdp, col_src, col_dst,
                        col_val, col_out, remap,
                    )?
                }
            }
        }
        Ok(())
    }

    /// One full distributed model step mirroring
    /// [`Dycore::step`](crate::prim::Dycore::step): dynamics RK +
    /// hyperviscosity + tracer advection + (every `rsplit` steps)
    /// vertical remap.
    pub fn step(&mut self, ctx: &mut RankCtx, state: &mut State) -> Result<(), DistError> {
        match self.step_path {
            StepPath::Bulk => {
                self.dynamics_step(ctx, state)?;
                self.apply_hypervis(ctx, state)?;
                self.euler_step_tracers(ctx, state)?;
            }
            StepPath::TaskGraph => {
                let subcycles = self.subcycles;
                self.taskgraph_step(ctx, state, subcycles, None)?;
            }
        }
        self.steps_since_remap += 1;
        if self.steps_since_remap >= self.cfg.rsplit {
            self.vertical_remap(state)?;
            self.steps_since_remap = 0;
        }
        Ok(())
    }

    /// [`DistDycore::step`] with in-step health guards and the degradation
    /// policy, mirroring [`Dycore::step_checked`](crate::prim::Dycore::step_checked)
    /// decision-for-decision so a guarded distributed run tracks the
    /// guarded serial run. The returned report is **rank-local**: the
    /// driver must merge it (one [`StepHealth::reduce_global`] per step
    /// attempt, executed by every rank) before acting on it, so all ranks
    /// take identical degradation decisions.
    ///
    /// On `Err` the state may hold a partially advanced step; restore a
    /// checkpoint before continuing.
    pub fn step_checked(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut State,
    ) -> Result<StepHealth, DistError> {
        if !self.health.enabled {
            self.step(ctx, state)?;
            return Ok(StepHealth::unchecked());
        }
        let full_dt = self.cfg.dt;
        let (splits, extra) = if self.degrade_pending > 0 {
            self.degrade_pending -= 1;
            (2usize, self.degrade.extra_subcycles)
        } else {
            (1usize, 0)
        };
        let mut health = StepHealth::begin();
        health.degraded = splits > 1;
        self.cfg.dt = full_dt / splits as f64;
        let base_subcycles = if splits > 1 { self.subcycles_half } else { self.subcycles };
        for _ in 0..splits {
            match self.step_path {
                StepPath::Bulk => {
                    if let Err(e) = self.dynamics_step_guarded(ctx, state, &mut health) {
                        self.cfg.dt = full_dt;
                        return Err(e);
                    }
                    if let Err(e) = self.apply_hypervis_n(ctx, state, base_subcycles + extra) {
                        self.cfg.dt = full_dt;
                        return Err(e);
                    }
                    if let Err(e) = self.euler_step_tracers(ctx, state) {
                        self.cfg.dt = full_dt;
                        return Err(e.into());
                    }
                    // Post-advection scan covers the tracer arenas, which
                    // the RK stage scans never see.
                    let scan =
                        scan_stage(&state.u, &state.v, &state.t, &state.dp3d, &state.qdp);
                    if let Err(e) = commit_scan(&mut health, &self.health, TRACER_STAGE, scan) {
                        self.cfg.dt = full_dt;
                        return Err(e.into());
                    }
                }
                StepPath::TaskGraph => {
                    if let Err(e) =
                        self.taskgraph_step(ctx, state, base_subcycles + extra, Some(&mut health))
                    {
                        self.cfg.dt = full_dt;
                        return Err(e);
                    }
                }
            }
        }
        self.cfg.dt = full_dt;
        self.steps_since_remap += 1;
        if self.steps_since_remap >= self.cfg.rsplit {
            self.vertical_remap(state)?;
            self.steps_since_remap = 0;
        }
        // CFL against the nominal dt, from the LOCAL max wind. Unlike the
        // serial driver this does NOT arm the degradation policy: ranks
        // would diverge (each sees a different local wind). The driver
        // reduces the verdict globally and calls
        // [`DistDycore::arm_degradation`] on every rank in lockstep.
        health.cfl = health.max_wind * full_dt / self.char_dx;
        Ok(health)
    }

    /// One complete pipeline pass (RK dynamics, sponge, hyperviscosity,
    /// tracers — the remap stays a separate phase) as a message-driven
    /// per-element task graph: each element advances through
    /// compute/gather substages the moment its local neighbours are ready
    /// and the relevant peer payloads have landed, instead of the rank
    /// marching through stage-wide exchanges. Per-link messages are packed
    /// the instant the last contributing element finishes a stage's
    /// compute, so early elements of stage `s+1` overlap late arrivals of
    /// stage `s`.
    ///
    /// Bitwise identical to the `Bulk` path under `Redesigned` exchanges:
    /// the [`GatherPlan`] reproduces `finish_aggregated`'s accumulation
    /// order exactly (DESIGN.md §5.6). Message count is unchanged — one
    /// message per peer per pipeline stage. Per-peer messages are consumed
    /// strictly in stage order so the reliable-mode watermark (fault
    /// recovery) keeps working; a lost peer surfaces as
    /// [`CommError::Timeout`] and the resilient driver rolls back, which
    /// fully re-seeds the graph on the next attempt.
    fn taskgraph_step(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut State,
        subcycles: usize,
        health: Option<&mut StepHealth>,
    ) -> Result<(), DistError> {
        let hv = self.cfg.hypervis;
        let hyp_on = !(hv.nu == 0.0 && hv.nu_p == 0.0);
        let checked = health.is_some();
        let hcfg = self.health;
        let DistDycore {
            plan, gplan, nbr, link_elems, ops, bops, rhs, dims, cfg, ws, kernels, stats, tag, ..
        } = self;
        let kernels = *kernels;
        let dims = *dims;
        let nlev = dims.nlev;
        let qsize = dims.qsize;
        let fl = dims.field_len();
        let tl = dims.tracer_len();
        let nelem = ops.len();
        let ptop = rhs.vert.ptop();
        let dt = cfg.dt;
        let limiter = cfg.limiter;
        let ks = hv.sponge_layers.min(nlev);
        let sl = ks * NPTS;
        let rawcap = crate::workspace::raw_capacity(dims);
        let nlinks = plan.links.len();

        let DistWorkspace { stage, next, hyp, qdp0, q1, q2, scratch, graph: g, hv_plan, .. } = ws;
        // Same hoisted plan as the bulk drivers; a corrupt element aborts
        // before any stage computes or any message is posted.
        if hyp_on {
            hv_plan.build(&hv, dt, subcycles, nlev, ops).map_err(HealthError::from)?;
        }
        let hv_plan: &ElemHypervisPlan = hv_plan;

        // Stage schedule and per-point payload widths, mirroring the bulk
        // exchange sequence exactly.
        g.stages.clear();
        g.stage_sz.clear();
        for s in 0..KG5_COEFFS.len() {
            g.stages.push(PipelineStage::Rk(s));
            g.stage_sz.push(NFIELDS * nlev);
        }
        if hyp_on {
            if hv.nu_top > 0.0 && ks > 0 {
                g.stages.push(PipelineStage::Sponge);
                g.stage_sz.push(3 * ks);
            }
            for _ in 0..subcycles {
                for pass in 0..2 {
                    g.stages.push(PipelineStage::HypLap { pass });
                    g.stage_sz.push(NFIELDS * nlev);
                }
            }
        }
        if qsize > 0 {
            for s in 0..3 {
                g.stages.push(PipelineStage::Tracer(s));
                g.stage_sz.push(qsize * nlev);
            }
        }
        g.ensure(nelem, rawcap, nlinks, |l| plan.links[l].1.len());

        let DistGraphBufs {
            done,
            claim,
            ready,
            raw0,
            raw1,
            stages,
            stage_sz,
            stage_off,
            pending_send,
            arrived,
            recv_buf,
            ..
        } = g;
        let stages: &[PipelineStage] = stages;
        let nstages = stages.len();

        // Reset the run (a rolled-back attempt leaves arbitrary state
        // here) and seed every element's stage-0 compute.
        ready.clear();
        for e in 0..nelem {
            done[e] = 0;
            claim[e] = 1;
            ready.push(e as u32);
        }
        for l in 0..nlinks {
            for s in 0..nstages {
                pending_send[l * nstages + s] = gplan.senders[l];
                arrived[l * nstages + s] = false;
            }
        }
        // Tags: stage `s` of this run is `tag_base + 1 + s`; claim the
        // whole range up front so an aborted run never reuses a tag.
        let tag_base = *tag;
        *tag += nstages as u64;

        // Stock the send-buffer pool with one buffer per (link, distinct
        // payload width) size class. Unlike the bulk path's lockstep
        // exchanges, graph sends fire whenever a stage's last boundary
        // element completes, so the instantaneous take/recycle imbalance
        // depends on thread timing — but the in-order link protocol bounds
        // it at one buffer per class (send (l,s) is gated on having
        // accepted, and therefore recycled, the peer's (l,s-1) payload).
        // With exact-fit `take_buffer` the per-class pool level is then a
        // step invariant, so this is a one-time allocation: on every later
        // step the classes are already stocked and the loop is a no-op.
        for l in 0..nlinks {
            for s in 0..nstages {
                let sz = stage_sz[s];
                if stage_sz[..s].contains(&sz) {
                    continue;
                }
                let len = sz * gplan.npts_of(l);
                let mut first = true;
                let mut count = 0usize;
                for l2 in 0..nlinks {
                    for s2 in 0..nstages {
                        let sz2 = stage_sz[s2];
                        if stage_sz[..s2].contains(&sz2) {
                            continue;
                        }
                        if sz2 * gplan.npts_of(l2) == len {
                            if (l2, s2) < (l, s) {
                                first = false;
                            }
                            count += 1;
                        }
                    }
                }
                if first {
                    ctx.comm.stock_buffers(len, count);
                }
            }
        }

        let mut remaining = nelem * 2 * nstages;
        let mut scans = [EMPTY_SCAN; 5];

        loop {
            // Drain every eligible substage.
            while let Some(e) = ready.pop() {
                let e = e as usize;
                let t = done[e] as usize;
                let sidx = t >> 1;
                let is_gather = t & 1 == 1;
                let ro = e * rawcap;
                let er = e * fl..(e + 1) * fl;
                if !is_gather {
                    // Element-local compute into this parity's raw window.
                    let raw: &mut Vec<f64> = if sidx & 1 == 0 { raw0 } else { raw1 };
                    match stages[sidx] {
                        PipelineStage::Rk(s) => {
                            let c_dt = KG5_COEFFS[s] * dt;
                            let (ou, rest) = raw[ro..ro + 4 * fl].split_at_mut(fl);
                            let (ov, rest) = rest.split_at_mut(fl);
                            let (ot, odp) = rest.split_at_mut(fl);
                            // The state is untouched during RK, so it
                            // doubles as the base (bulk copies it).
                            let (bu, bv, bt, bdp) = (
                                &state.u[er.clone()],
                                &state.v[er.clone()],
                                &state.t[er.clone()],
                                &state.dp3d[er.clone()],
                            );
                            let ev = if s == 0 {
                                None
                            } else if (s - 1) & 1 == 0 {
                                Some(&*next)
                            } else {
                                Some(&*stage)
                            };
                            let (evu, evv, evt, evdp) = match ev {
                                None => (bu, bv, bt, bdp),
                                Some(d) => (
                                    &d.u[er.clone()],
                                    &d.v[er.clone()],
                                    &d.t[er.clone()],
                                    &d.dp3d[er.clone()],
                                ),
                            };
                            let phis_e = &state.phis[e * NPTS..(e + 1) * NPTS];
                            match kernels {
                                KernelPath::Blocked => element_rhs_apply_blocked(
                                    &bops[e], nlev, ptop, evu, evv, evt, evdp, phis_e, bu, bv,
                                    bt, bdp, c_dt, ou, ov, ot, odp, &mut scratch.rhs,
                                ),
                                KernelPath::Scalar => {
                                    let WorkerScratch { tend, rhs: rhs_scratch, .. } = scratch;
                                    element_rhs_raw(
                                        &ops[e],
                                        nlev,
                                        ptop,
                                        evu,
                                        evv,
                                        evt,
                                        evdp,
                                        phis_e,
                                        &mut tend.u,
                                        &mut tend.v,
                                        &mut tend.t,
                                        &mut tend.dp3d,
                                        rhs_scratch,
                                    );
                                    for i in 0..fl {
                                        ou[i] = bu[i] + c_dt * tend.u[i];
                                        ov[i] = bv[i] + c_dt * tend.v[i];
                                        ot[i] = bt[i] + c_dt * tend.t[i];
                                        odp[i] = bdp[i] + c_dt * tend.dp3d[i];
                                    }
                                }
                            }
                        }
                        PipelineStage::Sponge => {
                            let (ru, rest) = raw[ro..ro + 3 * sl].split_at_mut(sl);
                            let (rv, rt) = rest.split_at_mut(sl);
                            let bu = &state.u[er.clone()];
                            let bv = &state.v[er.clone()];
                            let bt = &state.t[er.clone()];
                            match kernels {
                                KernelPath::Blocked => {
                                    sponge_pass_element_blocked(
                                        &bops[e], ks, &bu[..sl], &bv[..sl], &bt[..sl], ru, rv, rt,
                                    );
                                }
                                KernelPath::Scalar => {
                                    for k in 0..ks {
                                        let r = k * NPTS..(k + 1) * NPTS;
                                        let mut lu = [0.0; NPTS];
                                        let mut lv = [0.0; NPTS];
                                        ops[e].vlaplace_sphere(
                                            &bu[r.clone()],
                                            &bv[r.clone()],
                                            &mut lu,
                                            &mut lv,
                                        );
                                        ru[r.clone()].copy_from_slice(&lu);
                                        rv[r.clone()].copy_from_slice(&lv);
                                        let mut lt = [0.0; NPTS];
                                        ops[e].laplace_sphere_wk(&bt[r.clone()], &mut lt);
                                        rt[r].copy_from_slice(&lt);
                                    }
                                }
                            }
                        }
                        PipelineStage::HypLap { pass } => {
                            let (ru, rest) = raw[ro..ro + 4 * fl].split_at_mut(fl);
                            let (rv, rest) = rest.split_at_mut(fl);
                            let (rt, rdp) = rest.split_at_mut(fl);
                            let (iu, iv, it, idp) = if pass == 0 {
                                (
                                    &state.u[er.clone()],
                                    &state.v[er.clone()],
                                    &state.t[er.clone()],
                                    &state.dp3d[er.clone()],
                                )
                            } else {
                                (
                                    &hyp.u[er.clone()],
                                    &hyp.v[er.clone()],
                                    &hyp.t[er.clone()],
                                    &hyp.dp3d[er.clone()],
                                )
                            };
                            match kernels {
                                KernelPath::Blocked => {
                                    hypervis_pass_element_blocked(
                                        &bops[e], nlev, iu, iv, it, idp, ru, rv, rt, rdp,
                                    );
                                }
                                KernelPath::Scalar => {
                                    for k in 0..nlev {
                                        let r = k * NPTS..(k + 1) * NPTS;
                                        let mut lu = [0.0; NPTS];
                                        let mut lv = [0.0; NPTS];
                                        ops[e].vlaplace_sphere(
                                            &iu[r.clone()],
                                            &iv[r.clone()],
                                            &mut lu,
                                            &mut lv,
                                        );
                                        ru[r.clone()].copy_from_slice(&lu);
                                        rv[r.clone()].copy_from_slice(&lv);
                                        let mut lt = [0.0; NPTS];
                                        ops[e].laplace_sphere_wk(&it[r.clone()], &mut lt);
                                        rt[r.clone()].copy_from_slice(&lt);
                                        let mut ldp = [0.0; NPTS];
                                        ops[e].laplace_sphere_wk(&idp[r.clone()], &mut ldp);
                                        rdp[r].copy_from_slice(&ldp);
                                    }
                                }
                            }
                        }
                        PipelineStage::Tracer(s) => {
                            let tr = e * tl..(e + 1) * tl;
                            if s == 0 {
                                qdp0[tr.clone()].copy_from_slice(&state.qdp[tr.clone()]);
                            }
                            let q0 = &qdp0[tr.clone()];
                            let qin: &[f64] = match s {
                                0 => q0,
                                1 => &q1[tr.clone()],
                                _ => &q2[tr.clone()],
                            };
                            let (uu, vv, dp) = (
                                &state.u[er.clone()],
                                &state.v[er.clone()],
                                &state.dp3d[er.clone()],
                            );
                            let qout = &mut raw[ro..ro + tl];
                            match kernels {
                                KernelPath::Blocked => {
                                    let combine = match s {
                                        0 => StageCombine::Replace,
                                        1 => StageCombine::Ssp2,
                                        _ => StageCombine::Ssp3,
                                    };
                                    euler_stage_element_blocked(
                                        &bops[e], nlev, qsize, uu, vv, dp, qin, q0, dt, combine,
                                        qout,
                                    );
                                }
                                KernelPath::Scalar => {
                                    for q in 0..qsize {
                                        for k in 0..nlev {
                                            let r = k * NPTS..(k + 1) * NPTS;
                                            let rq = (q * nlev + k) * NPTS
                                                ..(q * nlev + k + 1) * NPTS;
                                            let mut tend = [0.0; NPTS];
                                            tracer_flux_divergence(
                                                &ops[e],
                                                &uu[r.clone()],
                                                &vv[r.clone()],
                                                &dp[r],
                                                &qin[rq.clone()],
                                                &mut tend,
                                            );
                                            for p in 0..NPTS {
                                                let i = rq.start + p;
                                                let t1 = qin[i] + dt * tend[p];
                                                qout[i] = match s {
                                                    0 => t1,
                                                    1 => 0.75 * q0[i] + 0.25 * t1,
                                                    _ => q0[i] / 3.0 + 2.0 / 3.0 * t1,
                                                };
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                } else {
                    // Canonical-order gather of this element's points.
                    let raw: &[f64] = if sidx & 1 == 0 { raw0 } else { raw1 };
                    let soff = stage_off[sidx];
                    let read_v = |v: usize, code: u32| {
                        let c = code as usize;
                        raw[(c / NPTS) * rawcap + v * NPTS + c % NPTS]
                    };
                    let recv_v = |v: usize, l: u32, j: u32| {
                        let l = l as usize;
                        recv_buf[l][(soff + v) * gplan.npts_of(l) + j as usize]
                    };
                    match stages[sidx] {
                        PipelineStage::Rk(s) => {
                            let (du, dv, dtt, ddp): (
                                &mut [f64],
                                &mut [f64],
                                &mut [f64],
                                &mut [f64],
                            ) = if s == 4 {
                                (&mut state.u, &mut state.v, &mut state.t, &mut state.dp3d)
                            } else {
                                let d: &mut DynFields =
                                    if s & 1 == 0 { next } else { stage };
                                (&mut d.u, &mut d.v, &mut d.t, &mut d.dp3d)
                            };
                            let mut part = EMPTY_SCAN;
                            for k in 0..nlev {
                                let ko = k * NPTS;
                                for p in 0..NPTS {
                                    let pi = e * NPTS + p;
                                    let gu = gplan.gather_point(
                                        pi,
                                        |c| read_v(k, c),
                                        |l, j| recv_v(k, l, j),
                                    );
                                    let gv = gplan.gather_point(
                                        pi,
                                        |c| read_v(nlev + k, c),
                                        |l, j| recv_v(nlev + k, l, j),
                                    );
                                    let gt = gplan.gather_point(
                                        pi,
                                        |c| read_v(2 * nlev + k, c),
                                        |l, j| recv_v(2 * nlev + k, l, j),
                                    );
                                    let gdp = gplan.gather_point(
                                        pi,
                                        |c| read_v(3 * nlev + k, c),
                                        |l, j| recv_v(3 * nlev + k, l, j),
                                    );
                                    du[er.start + ko + p] = gu;
                                    dv[er.start + ko + p] = gv;
                                    dtt[er.start + ko + p] = gt;
                                    ddp[er.start + ko + p] = gdp;
                                    if checked {
                                        // Same predicate as `scan_stage`.
                                        if !(gu.is_finite()
                                            && gv.is_finite()
                                            && gt.is_finite()
                                            && gdp.is_finite())
                                        {
                                            part.nonfinite += 1;
                                        }
                                        if gdp < part.min_dp3d {
                                            part.min_dp3d = gdp;
                                        }
                                        let s2 = gu * gu + gv * gv;
                                        if s2 > part.max_speed2 {
                                            part.max_speed2 = s2;
                                        }
                                    }
                                }
                            }
                            if checked {
                                let acc = &mut scans[s];
                                acc.nonfinite += part.nonfinite;
                                if part.min_dp3d < acc.min_dp3d {
                                    acc.min_dp3d = part.min_dp3d;
                                }
                                if part.max_speed2 > acc.max_speed2 {
                                    acc.max_speed2 = part.max_speed2;
                                }
                            }
                        }
                        PipelineStage::Sponge => {
                            for k in 0..ks {
                                // Hoisted `dt * nu_top * 2^-k` (bitwise the
                                // same product the bulk sponge forms).
                                let cs = hv_plan.sponge[k];
                                let ko = k * NPTS;
                                for p in 0..NPTS {
                                    let pi = e * NPTS + p;
                                    let gu = gplan.gather_point(
                                        pi,
                                        |c| read_v(k, c),
                                        |l, j| recv_v(k, l, j),
                                    );
                                    let gv = gplan.gather_point(
                                        pi,
                                        |c| read_v(ks + k, c),
                                        |l, j| recv_v(ks + k, l, j),
                                    );
                                    let gt = gplan.gather_point(
                                        pi,
                                        |c| read_v(2 * ks + k, c),
                                        |l, j| recv_v(2 * ks + k, l, j),
                                    );
                                    state.u[er.start + ko + p] += cs * gu;
                                    state.v[er.start + ko + p] += cs * gv;
                                    state.t[er.start + ko + p] += cs * gt;
                                }
                            }
                        }
                        PipelineStage::HypLap { pass } => {
                            // Hoisted `dt_sub * nu` / `dt_sub * nu_p`
                            // (bitwise the same products the bulk apply
                            // loops form).
                            let cu = hv_plan.coef_u;
                            let cdp = hv_plan.coef_dp;
                            for k in 0..nlev {
                                let ko = k * NPTS;
                                for p in 0..NPTS {
                                    let pi = e * NPTS + p;
                                    let gu = gplan.gather_point(
                                        pi,
                                        |c| read_v(k, c),
                                        |l, j| recv_v(k, l, j),
                                    );
                                    let gv = gplan.gather_point(
                                        pi,
                                        |c| read_v(nlev + k, c),
                                        |l, j| recv_v(nlev + k, l, j),
                                    );
                                    let gt = gplan.gather_point(
                                        pi,
                                        |c| read_v(2 * nlev + k, c),
                                        |l, j| recv_v(2 * nlev + k, l, j),
                                    );
                                    let gdp = gplan.gather_point(
                                        pi,
                                        |c| read_v(3 * nlev + k, c),
                                        |l, j| recv_v(3 * nlev + k, l, j),
                                    );
                                    let i = er.start + ko + p;
                                    if pass == 0 {
                                        hyp.u[i] = gu;
                                        hyp.v[i] = gv;
                                        hyp.t[i] = gt;
                                        hyp.dp3d[i] = gdp;
                                    } else {
                                        state.u[i] -= cu * gu;
                                        state.v[i] -= cu * gv;
                                        state.t[i] -= cu * gt;
                                        state.dp3d[i] -= cdp * gdp;
                                    }
                                }
                            }
                        }
                        PipelineStage::Tracer(s) => {
                            let tr = e * tl..(e + 1) * tl;
                            let dest: &mut [f64] = match s {
                                0 => &mut q1[tr],
                                1 => &mut q2[tr],
                                _ => &mut state.qdp[tr],
                            };
                            for q in 0..qsize {
                                for k in 0..nlev {
                                    let v = q * nlev + k;
                                    let qo = v * NPTS;
                                    for p in 0..NPTS {
                                        let pi = e * NPTS + p;
                                        dest[qo + p] = gplan.gather_point(
                                            pi,
                                            |c| read_v(v, c),
                                            |l, j| recv_v(v, l, j),
                                        );
                                    }
                                }
                            }
                            if limiter {
                                let mut spheremp = [0.0; NPTS];
                                spheremp.copy_from_slice(&ops[e].spheremp);
                                for q in 0..qsize {
                                    for k in 0..nlev {
                                        let r = (q * nlev + k) * NPTS
                                            ..(q * nlev + k + 1) * NPTS;
                                        limit_nonnegative(&spheremp, &mut dest[r]);
                                    }
                                }
                            }
                        }
                    }
                }
                done[e] = (t + 1) as u32;
                remaining -= 1;
                if !is_gather {
                    // Deferred packing: the instant the last contributor
                    // of link `l` finishes this stage's compute, the
                    // message goes out (canonical per-slot sums straight
                    // from the raw windows — no staging copy).
                    for &l in gplan.links_of(e) {
                        let l = l as usize;
                        let idx = l * nstages + sidx;
                        pending_send[idx] -= 1;
                        if pending_send[idx] == 0 {
                            let raw: &[f64] = if sidx & 1 == 0 { raw0 } else { raw1 };
                            graph_pack_send(
                                ctx,
                                gplan,
                                raw,
                                rawcap,
                                stage_sz[sidx],
                                plan.links[l].0,
                                l,
                                tag_base + 1 + sidx as u64,
                                stats,
                            );
                        }
                    }
                }
                graph_try_claim(done, claim, ready, nbr, gplan, arrived, nstages, e);
                for &n in nbr.of(e) {
                    graph_try_claim(done, claim, ready, nbr, gplan, arrived, nstages, n as usize);
                }
            }
            if remaining == 0 {
                break;
            }
            // No eligible work: make message progress. Per-peer payloads
            // are consumed strictly in stage order (the sender emits them
            // in stage order) so the reliable-mode watermark never skips a
            // still-in-flight tag.
            let mut progressed = false;
            for l in 0..nlinks {
                let peer = plan.links[l].0;
                while let Some(s) = (0..nstages).find(|&s| !arrived[l * nstages + s]) {
                    let req = ctx.comm.irecv(peer, tag_base + 1 + s as u64);
                    match ctx.comm.try_wait(req)? {
                        Some(m) => {
                            graph_accept(
                                ctx, m, l, s, nstages, gplan, stage_off, stage_sz, recv_buf,
                                arrived, link_elems, done, claim, ready, nbr,
                            );
                            progressed = true;
                        }
                        None => break,
                    }
                }
            }
            if progressed {
                continue;
            }
            // Fully stalled: block on the earliest outstanding payload
            // (smallest stage, then smallest link) — the global-minimum
            // substage argument in DESIGN.md §5.6 guarantees some rank can
            // always produce it, so this wait terminates or surfaces a
            // genuine fault as a timeout.
            let (l, s) = (0..nstages)
                .flat_map(|s| (0..nlinks).map(move |l| (l, s)))
                .find(|&(l, s)| !arrived[l * nstages + s])
                .expect("task graph stalled with every payload already arrived");
            let peer = plan.links[l].0;
            let req = ctx.comm.irecv(peer, tag_base + 1 + s as u64);
            let m = ctx.comm.wait(req).map_err(DistError::Comm)?;
            graph_accept(
                ctx, m, l, s, nstages, gplan, stage_off, stage_sz, recv_buf, arrived,
                link_elems, done, claim, ready, nbr,
            );
        }

        // Commit the health scans in bulk stage order, then the
        // post-advection scan over the final state (covers tracers).
        if let Some(health) = health {
            for (s, scan) in scans.iter().enumerate() {
                commit_scan(health, &hcfg, s, *scan).map_err(DistError::Health)?;
            }
            let scan = scan_stage(&state.u, &state.v, &state.t, &state.dp3d, &state.qdp);
            commit_scan(health, &hcfg, TRACER_STAGE, scan).map_err(DistError::Health)?;
        }
        Ok(())
    }

    /// Arm the degradation policy directly — the resilient driver calls
    /// this after the *global* verdict breaches the CFL limit, so every
    /// rank degrades in lockstep even when only one rank saw the breach.
    pub fn arm_degradation(&mut self) {
        self.degrade_pending = self.degrade_pending.max(self.degrade.halve_dt_steps);
    }

    /// Steps still owed to the degradation policy (0 = healthy cadence).
    pub fn degrade_pending(&self) -> usize {
        self.degrade_pending
    }

    /// How many dynamics steps have run since the last vertical remap
    /// (recorded in checkpoints; see [`DistDycore::set_remap_phase`]).
    pub fn remap_phase(&self) -> usize {
        self.steps_since_remap
    }

    /// Restore the remap cadence (checkpoint restart).
    pub fn set_remap_phase(&mut self, phase: usize) {
        self.steps_since_remap = phase;
    }

    /// Current rollback epoch (high bits of every message tag).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Enter rollback epoch `epoch`: future exchanges tag their messages
    /// `(epoch << EPOCH_SHIFT) | seq` with the sequence restarting at 1,
    /// so a `Comm::purge_below(tag_floor())` after the epoch bump discards
    /// every in-flight message from the aborted attempt.
    pub fn set_epoch(&mut self, epoch: u64) {
        assert!(epoch >= self.epoch, "epochs only move forward");
        self.epoch = epoch;
        self.tag = epoch << EPOCH_SHIFT;
    }

    /// Smallest tag a current-epoch message can carry; anything below is
    /// stale and safe to purge.
    pub fn tag_floor(&self) -> u64 {
        self.epoch << EPOCH_SHIFT
    }
}

/// Try to queue element `e`'s next substage on the ready stack. Computes
/// need only `claim == done` (WAR safety comes from the parity raw
/// windows); gathers additionally need every local neighbour caught up
/// and every incident link's payload for this stage landed.
#[allow(clippy::too_many_arguments)]
fn graph_try_claim(
    done: &[u32],
    claim: &mut [u32],
    ready: &mut Vec<u32>,
    nbr: &Neighbors,
    gplan: &GatherPlan,
    arrived: &[bool],
    nstages: usize,
    e: usize,
) {
    let d = done[e];
    if d >= 2 * nstages as u32 || claim[e] != d {
        return;
    }
    if d & 1 == 1 {
        let s = (d >> 1) as usize;
        for &n in nbr.of(e) {
            if done[n as usize] < d {
                return;
            }
        }
        for &l in gplan.links_of(e) {
            if !arrived[l as usize * nstages + s] {
                return;
            }
        }
    }
    claim[e] = d + 1;
    ready.push(e as u32);
}

/// Pack link `l`'s stage payload straight from the parity raw windows
/// (canonical per-slot contributor order, bitwise-matching the bulk
/// `start_aggregated` sums) and send it.
#[allow(clippy::too_many_arguments)]
fn graph_pack_send(
    ctx: &mut RankCtx,
    gplan: &GatherPlan,
    raw: &[f64],
    rawcap: usize,
    nval: usize,
    peer: usize,
    l: usize,
    tag: u64,
    stats: &mut CopyStats,
) {
    let npts = gplan.npts_of(l);
    let mut msg = ctx.comm.take_buffer(nval * npts);
    for v in 0..nval {
        for j in 0..npts {
            msg[v * npts + j] = gplan.send_value(l, j, |code| {
                let c = code as usize;
                raw[(c / NPTS) * rawcap + v * NPTS + c % NPTS]
            });
        }
    }
    stats.sent_bytes += (msg.len() * 8) as u64;
    stats.msgs_sent += 1;
    ctx.comm.send_owned(peer, tag, msg);
}

/// Land link `l`'s stage-`s` payload in its receive slot, flag it
/// arrived, and re-test every element touching that link — landing a
/// payload is one of the two events (with substage completion) that can
/// unlock new work.
#[allow(clippy::too_many_arguments)]
fn graph_accept(
    ctx: &mut RankCtx,
    m: Message,
    l: usize,
    s: usize,
    nstages: usize,
    gplan: &GatherPlan,
    stage_off: &[usize],
    stage_sz: &[usize],
    recv_buf: &mut [Vec<f64>],
    arrived: &mut [bool],
    link_elems: &[Vec<u32>],
    done: &[u32],
    claim: &mut [u32],
    ready: &mut Vec<u32>,
    nbr: &Neighbors,
) {
    let npts = gplan.npts_of(l);
    debug_assert_eq!(m.data.len(), stage_sz[s] * npts);
    let off = stage_off[s] * npts;
    recv_buf[l][off..off + stage_sz[s] * npts].copy_from_slice(&m.data);
    ctx.comm.recycle(m.data);
    arrived[l * nstages + s] = true;
    for &e in &link_elems[l] {
        graph_try_claim(done, claim, ready, nbr, gplan, arrived, nstages, e as usize);
    }
}

/// `out[li] = base[li] + c_dt RHS(eval[li])` for one owned element,
/// through the fused blocked kernel or the scalar raw-tendency + apply
/// pair (bitwise identical).
#[allow(clippy::too_many_arguments)]
fn update_element(
    kernels: KernelPath,
    ops: &[ElemOps],
    bops: &[BlockedOps],
    rhs: &Rhs,
    dims: Dims,
    li: usize,
    base: &DynFields,
    eval: &DynFields,
    phis: &[f64],
    c_dt: f64,
    out: &mut DynFields,
    scratch: &mut WorkerScratch,
) {
    let fl = dims.field_len();
    let r = li * fl..(li + 1) * fl;
    let WorkerScratch { tend, rhs: rhs_scratch, .. } = scratch;
    match kernels {
        KernelPath::Blocked => {
            let (ou, ov, ot, odp) = (
                &mut out.u[r.clone()],
                &mut out.v[r.clone()],
                &mut out.t[r.clone()],
                &mut out.dp3d[r.clone()],
            );
            element_rhs_apply_blocked(
                &bops[li],
                dims.nlev,
                rhs.vert.ptop(),
                &eval.u[r.clone()],
                &eval.v[r.clone()],
                &eval.t[r.clone()],
                &eval.dp3d[r.clone()],
                &phis[li * NPTS..(li + 1) * NPTS],
                &base.u[r.clone()],
                &base.v[r.clone()],
                &base.t[r.clone()],
                &base.dp3d[r.clone()],
                c_dt,
                ou,
                ov,
                ot,
                odp,
                rhs_scratch,
            );
        }
        KernelPath::Scalar => {
            element_rhs_raw(
                &ops[li],
                dims.nlev,
                rhs.vert.ptop(),
                &eval.u[r.clone()],
                &eval.v[r.clone()],
                &eval.t[r.clone()],
                &eval.dp3d[r.clone()],
                &phis[li * NPTS..(li + 1) * NPTS],
                &mut tend.u,
                &mut tend.v,
                &mut tend.t,
                &mut tend.dp3d,
                rhs_scratch,
            );
            for i in 0..fl {
                out.u[r.start + i] = base.u[r.start + i] + c_dt * tend.u[i];
                out.v[r.start + i] = base.v[r.start + i] + c_dt * tend.v[i];
                out.t[r.start + i] = base.t[r.start + i] + c_dt * tend.t[i];
                out.dp3d[r.start + i] = base.dp3d[r.start + i] + c_dt * tend.dp3d[i];
            }
        }
    }
}

/// One substep: `out = base + c_dt RHS(eval)` with distributed DSS of the
/// four prognostics.
#[allow(clippy::too_many_arguments)]
fn rk_substep(
    kernels: KernelPath,
    plan: &ExchangePlan,
    ops: &[ElemOps],
    bops: &[BlockedOps],
    rhs: &Rhs,
    dims: Dims,
    mode: ExchangeMode,
    ctx: &mut RankCtx,
    base: &DynFields,
    eval: &DynFields,
    phis: &[f64],
    c_dt: f64,
    out: &mut DynFields,
    scratch: &mut WorkerScratch,
    ex: &mut ExchangeBuffers,
    stats: &mut CopyStats,
    tag: &mut u64,
) -> Result<(), CommError> {
    let nlev = dims.nlev;
    match mode {
        ExchangeMode::Original => {
            // Legacy schedule: all compute, then one staged exchange per
            // (field, level).
            for li in 0..plan.owned.len() {
                update_element(kernels, ops, bops, rhs, dims, li, base, eval, phis, c_dt, out, scratch);
            }
            let mut arenas: [&mut [f64]; NFIELDS] =
                [&mut out.u, &mut out.v, &mut out.t, &mut out.dp3d];
            dss_arenas(plan, mode, ctx, &mut arenas, nlev, ex, stats, tag)
        }
        ExchangeMode::Redesigned => {
            // 1. boundary elements first.
            for &li in &plan.boundary {
                update_element(kernels, ops, bops, rhs, dims, li, base, eval, phis, c_dt, out, scratch);
            }
            // 2. one aggregated message per peer: all fields, all levels.
            *tag += 1;
            plan.start_aggregated(
                ctx,
                &[&out.u, &out.v, &out.t, &out.dp3d],
                nlev,
                *tag,
                ex,
                stats,
            );
            // 3. interior elements overlap the communication.
            for &li in &plan.interior {
                update_element(kernels, ops, bops, rhs, dims, li, base, eval, phis, c_dt, out, scratch);
            }
            // 4. accumulate straight from the receive buffers.
            let mut arenas: [&mut [f64]; NFIELDS] =
                [&mut out.u, &mut out.v, &mut out.t, &mut out.dp3d];
            plan.finish_aggregated(ctx, &mut arenas, nlev, ex)
        }
    }
}

/// Distributed DSS of several flat arenas: one aggregated exchange in
/// `Redesigned` mode, the legacy per-(arena, level) staged exchange in
/// `Original` mode.
#[allow(clippy::too_many_arguments)]
fn dss_arenas(
    plan: &ExchangePlan,
    mode: ExchangeMode,
    ctx: &mut RankCtx,
    arenas: &mut [&mut [f64]],
    nlev: usize,
    ex: &mut ExchangeBuffers,
    stats: &mut CopyStats,
    tag: &mut u64,
) -> Result<(), CommError> {
    match mode {
        ExchangeMode::Redesigned => {
            *tag += 1;
            plan.dss_aggregated(ctx, arenas, nlev, *tag, ex, stats)
        }
        ExchangeMode::Original => {
            let fl = nlev * NPTS;
            let nelem = plan.owned.len();
            for arena in arenas.iter_mut() {
                for k in 0..nlev {
                    let mut level: Vec<Vec<f64>> = (0..nelem)
                        .map(|e| arena[e * fl + k * NPTS..e * fl + (k + 1) * NPTS].to_vec())
                        .collect();
                    *tag += 1;
                    plan.dss_level(ctx, &mut level, ExchangeMode::Original, *tag, || {}, stats)?;
                    for (e, l) in level.iter().enumerate() {
                        arena[e * fl + k * NPTS..e * fl + (k + 1) * NPTS].copy_from_slice(l);
                    }
                }
            }
            Ok(())
        }
    }
}

/// Aggregated DSS + optional limiter for one tracer stage — the
/// distributed counterpart of the serial driver's `finish_tracer_stage`.
#[allow(clippy::too_many_arguments)]
fn finish_stage(
    plan: &ExchangePlan,
    ops: &[ElemOps],
    dims: Dims,
    mode: ExchangeMode,
    limiter: bool,
    ctx: &mut RankCtx,
    qdp: &mut [f64],
    ex: &mut ExchangeBuffers,
    stats: &mut CopyStats,
    tag: &mut u64,
) -> Result<(), CommError> {
    {
        let mut arenas = [&mut *qdp];
        dss_arenas(plan, mode, ctx, &mut arenas, dims.qsize * dims.nlev, ex, stats, tag)?;
    }
    if limiter {
        limit_tracer_arena(ops, dims, qdp);
    }
    Ok(())
}

/// One tracer Euler substep over the owned elements:
/// `qdp_out = qdp_in + dt L(qdp_in)` with the flux divergence evaluated
/// against the (u, v, dp3d) arenas.
#[allow(clippy::too_many_arguments)]
fn tracer_substep(
    ops: &[ElemOps],
    dims: Dims,
    u: &[f64],
    v: &[f64],
    dp: &[f64],
    qdp_in: &[f64],
    dt: f64,
    qdp_out: &mut [f64],
) {
    let nlev = dims.nlev;
    let fl = dims.field_len();
    let tl = dims.tracer_len();
    for (e, op) in ops.iter().enumerate() {
        for q in 0..dims.qsize {
            for k in 0..nlev {
                let r = e * fl + k * NPTS..e * fl + (k + 1) * NPTS;
                let rq = e * tl + (q * nlev + k) * NPTS..e * tl + (q * nlev + k + 1) * NPTS;
                let mut tend = [0.0; NPTS];
                tracer_flux_divergence(
                    op,
                    &u[r.clone()],
                    &v[r.clone()],
                    &dp[r.clone()],
                    &qdp_in[rq.clone()],
                    &mut tend,
                );
                for (p, o) in qdp_out[rq.clone()].iter_mut().enumerate() {
                    *o = qdp_in[rq.start + p] + dt * tend[p];
                }
            }
        }
    }
}

/// One fused blocked tracer stage over the owned elements: flux
/// divergence, Euler update and SSP combine in a single pass per element,
/// bitwise identical to [`tracer_substep`] + the driver's combine loop.
#[allow(clippy::too_many_arguments)]
fn tracer_stage_blocked(
    bops: &[BlockedOps],
    dims: Dims,
    u: &[f64],
    v: &[f64],
    dp: &[f64],
    qdp_in: &[f64],
    q0: &[f64],
    dt: f64,
    combine: StageCombine,
    qdp_out: &mut [f64],
) {
    let fl = dims.field_len();
    let tl = dims.tracer_len();
    for (e, bop) in bops.iter().enumerate() {
        euler_stage_element_blocked(
            bop,
            dims.nlev,
            dims.qsize,
            &u[e * fl..(e + 1) * fl],
            &v[e * fl..(e + 1) * fl],
            &dp[e * fl..(e + 1) * fl],
            &qdp_in[e * tl..(e + 1) * tl],
            &q0[e * tl..(e + 1) * tl],
            dt,
            combine,
            &mut qdp_out[e * tl..(e + 1) * tl],
        );
    }
}

/// Dispatch the element-local weak Laplacian to the scalar or blocked path.
fn laplace_elems_path(
    kernels: KernelPath,
    ops: &[ElemOps],
    bops: &[BlockedOps],
    nlev: usize,
    field: &mut [f64],
) {
    match kernels {
        KernelPath::Scalar => laplace_elems(ops, nlev, field),
        KernelPath::Blocked => {
            let fl = nlev * NPTS;
            for (e, bop) in bops.iter().enumerate() {
                laplace_levels_blocked(bop, nlev, &mut field[e * fl..(e + 1) * fl]);
            }
        }
    }
}

/// Dispatch the element-local vector Laplacian to the scalar or blocked path.
fn vlaplace_elems_path(
    kernels: KernelPath,
    ops: &[ElemOps],
    bops: &[BlockedOps],
    nlev: usize,
    u: &mut [f64],
    v: &mut [f64],
) {
    match kernels {
        KernelPath::Scalar => vlaplace_elems(ops, nlev, u, v),
        KernelPath::Blocked => {
            let fl = nlev * NPTS;
            for (e, bop) in bops.iter().enumerate() {
                vlaplace_levels_blocked(
                    bop,
                    nlev,
                    &mut u[e * fl..(e + 1) * fl],
                    &mut v[e * fl..(e + 1) * fl],
                );
            }
        }
    }
}

/// Element-local weak-form Laplacian of one arena (no DSS).
fn laplace_elems(ops: &[ElemOps], nlev: usize, field: &mut [f64]) {
    let fl = nlev * NPTS;
    for (e, op) in ops.iter().enumerate() {
        for k in 0..nlev {
            let r = e * fl + k * NPTS..e * fl + (k + 1) * NPTS;
            let mut lap = [0.0; NPTS];
            op.laplace_sphere_wk(&field[r.clone()], &mut lap);
            field[r].copy_from_slice(&lap);
        }
    }
}

/// Element-local vector Laplacian of `(u, v)` (no DSS).
fn vlaplace_elems(ops: &[ElemOps], nlev: usize, u: &mut [f64], v: &mut [f64]) {
    let fl = nlev * NPTS;
    for (e, op) in ops.iter().enumerate() {
        for k in 0..nlev {
            let r = e * fl + k * NPTS..e * fl + (k + 1) * NPTS;
            let mut lu = [0.0; NPTS];
            let mut lv = [0.0; NPTS];
            op.vlaplace_sphere(&u[r.clone()], &v[r.clone()], &mut lu, &mut lv);
            u[r.clone()].copy_from_slice(&lu);
            v[r].copy_from_slice(&lv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervis::HypervisConfig;
    use crate::prim::{Dycore, DycoreConfig};
    use crate::state::State;
    use cubesphere::consts::P0;
    use swmpi::run_ranks;

    fn initial_state(dy: &Dycore) -> State {
        let mut st = dy.zero_state();
        let elems = dy.grid.elements.clone();
        let vert = dy.rhs.vert.clone();
        let nlev = dy.dims.nlev;
        for (es, el) in st.elems_mut().zip(&elems) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                let lon = el.metric[p].lon;
                let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
                for k in 0..nlev {
                    es.u[k * NPTS + p] = 12.0 * lat.cos();
                    es.v[k * NPTS + p] = 2.0 * lon.sin();
                    es.t[k * NPTS + p] = 280.0 + 5.0 * lat.cos() + k as f64;
                    es.dp3d[k * NPTS + p] = vert.dp_ref(k, ps);
                }
            }
        }
        st
    }

    fn seed_tracers(dy: &Dycore, st: &mut State) {
        let elems = dy.grid.elements.clone();
        let dims = dy.dims;
        for (es, el) in st.elems_mut().zip(&elems) {
            for p in 0..NPTS {
                for q in 0..dims.qsize {
                    for k in 0..dims.nlev {
                        es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.004
                            * es.dp3d[k * NPTS + p]
                            * (1.0 + 0.3 * el.metric[p].lat.sin() + 0.1 * q as f64);
                    }
                }
            }
        }
    }

    /// The distributed dynamics step (both schedules) matches the serial
    /// Dycore to round-off after two full RK steps — and the redesigned
    /// schedule sends exactly one message per peer per RK substep.
    #[test]
    fn distributed_dynamics_matches_serial() {
        let ne = 3;
        let dims = Dims { nlev: 4, qsize: 0 };
        let cfg = DycoreConfig {
            dt: 300.0,
            hypervis: HypervisConfig::off(),
            limiter: false,
            rsplit: 1,
        };
        let mut serial = Dycore::new(ne, dims, 2000.0, cfg);
        let mut st = initial_state(&serial);
        let initial = st.clone();
        serial.dynamics_step(&mut st);
        serial.dynamics_step(&mut st);

        for mode in [ExchangeMode::Original, ExchangeMode::Redesigned] {
            let nranks = 5;
            let grid = CubedSphere::new(ne);
            let part = Partition::new(&grid, nranks);
            let results = run_ranks(nranks, |ctx| {
                let mut dist =
                    DistDycore::new(&grid, &part, ctx.rank(), dims, 2000.0, cfg, mode);
                let mut local = dist.local_state(&initial);
                dist.dynamics_step(ctx, &mut local).expect("dynamics step");
                dist.dynamics_step(ctx, &mut local).expect("dynamics step");
                assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
                let npeers = dist.plan.links.len() as u64;
                if mode == ExchangeMode::Redesigned {
                    assert_eq!(dist.stats.staged_bytes, 0, "redesign stages nothing");
                    // 2 steps x 5 RK substeps, ONE message per peer each.
                    assert_eq!(dist.stats.msgs_sent, 10 * npeers);
                    assert_eq!(ctx.comm.stats().sends, 10 * npeers);
                } else {
                    // Legacy: one message per peer per (field, level).
                    assert_eq!(
                        dist.stats.msgs_sent,
                        10 * NFIELDS as u64 * dims.nlev as u64 * npeers
                    );
                }
                (dist.plan.owned.clone(), local)
            });
            for (owned, local) in results {
                for (li, e) in owned.into_iter().enumerate() {
                    let es = local.elem(li);
                    let reference = st.elem(e);
                    for i in 0..dims.field_len() {
                        assert!(
                            (es.u[i] - reference.u[i]).abs() < 1e-9,
                            "{mode:?} elem {e} u[{i}]: {} vs {}",
                            es.u[i],
                            reference.u[i]
                        );
                        assert!((es.t[i] - reference.t[i]).abs() < 1e-9);
                        assert!((es.dp3d[i] - reference.dp3d[i]).abs() < 1e-9);
                    }
                }
            }
        }
    }

    fn assert_states_match(
        owned: &[usize],
        local: &State,
        reference: &State,
        dims: Dims,
        tol: f64,
        qtol: f64,
    ) {
        for (li, &e) in owned.iter().enumerate() {
            let es = local.elem(li);
            let rs = reference.elem(e);
            for i in 0..dims.field_len() {
                assert!(
                    (es.u[i] - rs.u[i]).abs() < tol,
                    "elem {e} u[{i}]: {} vs {}",
                    es.u[i],
                    rs.u[i]
                );
                assert!((es.v[i] - rs.v[i]).abs() < tol);
                assert!((es.t[i] - rs.t[i]).abs() < tol);
                assert!((es.dp3d[i] - rs.dp3d[i]).abs() < tol);
            }
            for i in 0..dims.tracer_len() {
                assert!(
                    (es.qdp[i] - rs.qdp[i]).abs() < qtol,
                    "elem {e} qdp[{i}]: {} vs {}",
                    es.qdp[i],
                    rs.qdp[i]
                );
            }
        }
    }

    /// The complete distributed step — dynamics + hyperviscosity + tracer
    /// advection + vertical remap — matches the serial driver.
    #[test]
    fn full_distributed_step_matches_serial() {
        let ne = 3;
        let dims = Dims { nlev: 4, qsize: 1 };
        let nu = 1.0e15;
        let hv = HypervisConfig { nu, nu_p: nu, subcycles: 3, nu_top: 0.0, sponge_layers: 0 };
        let cfg = DycoreConfig { dt: 300.0, hypervis: hv, limiter: false, rsplit: 1 };
        let mut serial = Dycore::new(ne, dims, 2000.0, cfg);
        let mut st = initial_state(&serial);
        seed_tracers(&serial, &mut st);
        let initial = st.clone();
        serial.step(&mut st);

        let nranks = 4;
        let grid = CubedSphere::new(ne);
        let part = Partition::new(&grid, nranks);
        let results = run_ranks(nranks, |ctx| {
            let mut dist = DistDycore::new(
                &grid,
                &part,
                ctx.rank(),
                dims,
                2000.0,
                cfg,
                ExchangeMode::Redesigned,
            );
            let mut local = dist.local_state(&initial);
            dist.step(ctx, &mut local).expect("step");
            assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
            (dist.plan.owned.clone(), local)
        });
        for (owned, local) in results {
            assert_states_match(&owned, &local, &st, dims, 1e-8, 1e-10);
        }
    }

    /// Same, with the previously-broken configuration: limiter on and a
    /// full hyperviscosity config with `nu_p != nu`, `nu_top > 0` and
    /// active sponge layers. Both exchange schedules must track the
    /// serial driver.
    #[test]
    fn full_distributed_step_matches_serial_with_limiter_and_sponge() {
        let ne = 3;
        let dims = Dims { nlev: 4, qsize: 2 };
        let nu = 1.0e15;
        let hv = HypervisConfig {
            nu,
            nu_p: 1.7 * nu,
            subcycles: 3,
            nu_top: 2.5e5,
            sponge_layers: 2,
        };
        let cfg = DycoreConfig { dt: 300.0, hypervis: hv, limiter: true, rsplit: 1 };
        let mut serial = Dycore::new(ne, dims, 2000.0, cfg);
        let mut st = initial_state(&serial);
        seed_tracers(&serial, &mut st);
        let initial = st.clone();
        serial.step(&mut st);
        serial.step(&mut st);

        for mode in [ExchangeMode::Original, ExchangeMode::Redesigned] {
            let nranks = 4;
            let grid = CubedSphere::new(ne);
            let part = Partition::new(&grid, nranks);
            let results = run_ranks(nranks, |ctx| {
                let mut dist =
                    DistDycore::new(&grid, &part, ctx.rank(), dims, 2000.0, cfg, mode);
                assert_eq!(
                    dist.hypervis_subcycles(),
                    3,
                    "distributed subcycles must match the serial formula"
                );
                let mut local = dist.local_state(&initial);
                dist.step(ctx, &mut local).expect("step");
                dist.step(ctx, &mut local).expect("step");
                assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
                (dist.plan.owned.clone(), local)
            });
            for (owned, local) in results {
                assert_states_match(&owned, &local, &st, dims, 1e-8, 1e-9);
            }
        }
    }

    /// Message accounting across the whole step: the redesigned schedule
    /// aggregates every exchange (RK substeps, sponge, hyperviscosity
    /// Laplacians, tracer stages) into exactly one message per peer, with
    /// zero staging bytes.
    #[test]
    fn redesigned_step_sends_one_message_per_peer_per_exchange() {
        let ne = 3;
        let dims = Dims { nlev: 4, qsize: 1 };
        let nu = 1.0e15;
        let hv = HypervisConfig {
            nu,
            nu_p: nu,
            subcycles: 2,
            nu_top: 2.5e5,
            sponge_layers: 2,
        };
        let cfg = DycoreConfig { dt: 300.0, hypervis: hv, limiter: true, rsplit: 1 };
        let grid = CubedSphere::new(ne);
        let nranks = 4;
        let part = Partition::new(&grid, nranks);
        let serial = Dycore::new(ne, dims, 2000.0, cfg);
        let mut init = initial_state(&serial);
        seed_tracers(&serial, &mut init);
        run_ranks(nranks, |ctx| {
            let mut dist = DistDycore::new(
                &grid,
                &part,
                ctx.rank(),
                dims,
                2000.0,
                cfg,
                ExchangeMode::Redesigned,
            );
            let mut local = dist.local_state(&init);
            dist.step(ctx, &mut local).expect("step");
            // Exchanges per step: 5 RK substeps + 1 sponge + 2 Laplacian
            // applications per hypervis subcycle + 3 tracer stages.
            let n_exchanges = (5 + 1 + 2 * dist.hypervis_subcycles() + 3) as u64;
            let npeers = dist.plan.links.len() as u64;
            assert_eq!(dist.stats.msgs_sent, n_exchanges * npeers);
            assert_eq!(ctx.comm.stats().sends, n_exchanges * npeers);
            assert_eq!(dist.stats.staged_bytes, 0);
            assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
        });
    }

    fn taskgraph_cfg() -> (Dims, DycoreConfig) {
        let nu = 1.0e15;
        let hv = HypervisConfig {
            nu,
            nu_p: 1.7 * nu,
            subcycles: 3,
            nu_top: 2.5e5,
            sponge_layers: 2,
        };
        (
            Dims { nlev: 4, qsize: 2 },
            DycoreConfig { dt: 300.0, hypervis: hv, limiter: true, rsplit: 2 },
        )
    }

    fn run_dist_path(path: StepPath, checked: bool) -> Vec<(Vec<usize>, State)> {
        let ne = 3;
        let (dims, cfg) = taskgraph_cfg();
        let serial = Dycore::new(ne, dims, 2000.0, cfg);
        let mut init = initial_state(&serial);
        seed_tracers(&serial, &mut init);
        let nranks = 4;
        let grid = CubedSphere::new(ne);
        let part = Partition::new(&grid, nranks);
        run_ranks(nranks, |ctx| {
            let mut dist = DistDycore::new(
                &grid,
                &part,
                ctx.rank(),
                dims,
                2000.0,
                cfg,
                ExchangeMode::Redesigned,
            );
            dist.step_path = path;
            if checked {
                dist.health = HealthConfig::on();
            }
            let mut local = dist.local_state(&init);
            for _ in 0..3 {
                if checked {
                    dist.step_checked(ctx, &mut local).expect("checked step");
                } else {
                    dist.step(ctx, &mut local).expect("step");
                }
            }
            assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
            // Same traffic as the bulk redesigned schedule: one message
            // per peer per pipeline stage, nothing staged.
            let n_exchanges = (5 + 1 + 2 * dist.hypervis_subcycles() + 3) as u64;
            let npeers = dist.plan.links.len() as u64;
            assert_eq!(dist.stats.msgs_sent, 3 * n_exchanges * npeers);
            assert_eq!(dist.stats.staged_bytes, 0);
            (dist.plan.owned.clone(), local)
        })
    }

    fn assert_bitwise_match(
        bulk: &[(Vec<usize>, State)],
        graph: &[(Vec<usize>, State)],
        dims: Dims,
    ) {
        for ((owned, b), (_, g)) in bulk.iter().zip(graph) {
            for (li, &e) in owned.iter().enumerate() {
                let bs = b.elem(li);
                let gs = g.elem(li);
                for i in 0..dims.field_len() {
                    assert_eq!(bs.u[i].to_bits(), gs.u[i].to_bits(), "elem {e} u[{i}]");
                    assert_eq!(bs.v[i].to_bits(), gs.v[i].to_bits(), "elem {e} v[{i}]");
                    assert_eq!(bs.t[i].to_bits(), gs.t[i].to_bits(), "elem {e} t[{i}]");
                    assert_eq!(bs.dp3d[i].to_bits(), gs.dp3d[i].to_bits(), "elem {e} dp3d[{i}]");
                }
                for i in 0..dims.tracer_len() {
                    assert_eq!(bs.qdp[i].to_bits(), gs.qdp[i].to_bits(), "elem {e} qdp[{i}]");
                }
            }
        }
    }

    /// The distributed task-graph step — limiter, sponge, `nu_p != nu`,
    /// rsplit remap all on — is bitwise identical to the bulk redesigned
    /// step on every rank, and sends exactly the same number of messages
    /// (one per peer per pipeline stage).
    #[test]
    fn taskgraph_distributed_step_matches_bulk_bitwise() {
        let (dims, _) = taskgraph_cfg();
        let bulk = run_dist_path(StepPath::Bulk, false);
        let graph = run_dist_path(StepPath::TaskGraph, false);
        assert_bitwise_match(&bulk, &graph, dims);
    }

    /// Same bitwise contract with the in-step health guards armed: the
    /// per-gather scan partials the task graph accumulates commit the
    /// same verdicts as the bulk path's stage-wide scans.
    #[test]
    fn taskgraph_distributed_checked_step_matches_bulk_bitwise() {
        let (dims, _) = taskgraph_cfg();
        let bulk = run_dist_path(StepPath::Bulk, true);
        let graph = run_dist_path(StepPath::TaskGraph, true);
        assert_bitwise_match(&bulk, &graph, dims);
    }

    /// The boundary-only partial sums of start_aggregated are complete: a
    /// point shared with a peer never receives contributions from interior
    /// elements.
    #[test]
    fn shared_points_live_only_on_boundary_elements() {
        let grid = CubedSphere::new(4);
        for nranks in [3usize, 6, 10] {
            let part = Partition::new(&grid, nranks);
            for rank in 0..nranks {
                let plan = ExchangePlan::new(&grid, &part, rank);
                for &li in &plan.interior {
                    for p in 0..NPTS {
                        assert!(
                            !plan.gid_slot.contains_key(&plan.gids[li][p]),
                            "interior element {li} touches a peer-shared point"
                        );
                    }
                }
            }
        }
    }
}
