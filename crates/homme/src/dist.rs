//! Distributed `prim_run` dynamics: the paper's redesigned schedule inside
//! the real model loop.
//!
//! Each rank owns a space-filling-curve patch of elements. A Runge–Kutta
//! substep runs exactly as Section 7.6 prescribes:
//!
//! 1. evaluate tendencies and update the **boundary** elements first;
//! 2. start the halo exchanges (post receives, send the boundary partial
//!    sums — complete, because only boundary elements touch shared
//!    points);
//! 3. evaluate tendencies and update the **interior** elements *while the
//!    messages are in flight*;
//! 4. complete the DSS with the received peer partials.
//!
//! The `Original` mode runs the same numerics without overlap (all compute
//! first, then the staging-buffer exchange). Both modes are verified
//! equivalent to the serial [`Dycore`](crate::prim::Dycore). Rank-local
//! state lives in the same flat SoA [`State`] arena as the serial driver,
//! sized for the owned elements only.

use crate::bndry::{CopyStats, ExchangeMode, ExchangePlan};
use crate::deriv::ElemOps;
use crate::prim::KG5_COEFFS;
use crate::rhs::{ElemTend, Rhs, RhsScratch};
use crate::state::{Dims, State};
use crate::vert::VertCoord;
use cubesphere::{CubedSphere, Partition, NPTS};
use swmpi::RankCtx;

/// Per-rank distributed dynamics driver.
pub struct DistDycore {
    /// Exchange plan (owned elements, peers, shared gids).
    pub plan: ExchangePlan,
    /// Operator tables for the owned elements (local indexing).
    pub ops: Vec<ElemOps>,
    /// RHS evaluator.
    pub rhs: Rhs,
    /// Dimensions.
    pub dims: Dims,
    /// Dynamics time step.
    pub dt: f64,
    /// Exchange schedule.
    pub mode: ExchangeMode,
    /// Accumulated staging-copy statistics.
    pub stats: CopyStats,
    tag: u64,
}

/// The four DSS'd prognostics, in exchange order.
const NFIELDS: usize = 4;

fn field_of(st: &State, f: usize) -> &[f64] {
    match f {
        0 => &st.u,
        1 => &st.v,
        2 => &st.t,
        _ => &st.dp3d,
    }
}

fn field_of_mut(st: &mut State, f: usize) -> &mut [f64] {
    match f {
        0 => &mut st.u,
        1 => &mut st.v,
        2 => &mut st.t,
        _ => &mut st.dp3d,
    }
}

impl DistDycore {
    /// Build the driver for `rank` of `part` on `grid`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grid: &CubedSphere,
        part: &Partition,
        rank: usize,
        dims: Dims,
        ptop: f64,
        dt: f64,
        mode: ExchangeMode,
    ) -> Self {
        let plan = ExchangePlan::new(grid, part, rank);
        let ops = plan
            .owned
            .iter()
            .map(|&e| ElemOps::new(&grid.elements[e], &grid.basis))
            .collect();
        let vert = VertCoord::standard(dims.nlev, ptop);
        DistDycore {
            plan,
            ops,
            rhs: Rhs::new(vert, dims),
            dims,
            dt,
            mode,
            stats: CopyStats::default(),
            tag: 0,
        }
    }

    /// Extract this rank's elements from a global state arena into a local
    /// arena (local index `li` = position in `plan.owned`).
    pub fn local_state(&self, global: &State) -> State {
        let mut local = State::zeros(self.dims, self.plan.owned.len());
        for (li, &e) in self.plan.owned.iter().enumerate() {
            let src = global.elem(e);
            let dst = local.elem_mut(li);
            dst.u.copy_from_slice(src.u);
            dst.v.copy_from_slice(src.v);
            dst.t.copy_from_slice(src.t);
            dst.dp3d.copy_from_slice(src.dp3d);
            dst.qdp.copy_from_slice(src.qdp);
            dst.phis.copy_from_slice(src.phis);
        }
        local
    }

    fn update_element(
        &self,
        li: usize,
        base: &State,
        eval: &State,
        c_dt: f64,
        out: &mut State,
        tend: &mut ElemTend,
        scratch: &mut RhsScratch,
    ) {
        self.rhs.element_tend(&self.ops[li], eval.elem(li), tend, scratch);
        let be = base.elem(li);
        let oe = out.elem_mut(li);
        for i in 0..self.dims.field_len() {
            oe.u[i] = be.u[i] + c_dt * tend.u[i];
            oe.v[i] = be.v[i] + c_dt * tend.v[i];
            oe.t[i] = be.t[i] + c_dt * tend.t[i];
            oe.dp3d[i] = be.dp3d[i] + c_dt * tend.dp3d[i];
        }
    }

    /// One substep: `out = base + c_dt RHS(eval)` with distributed DSS.
    fn rk_substep(
        &mut self,
        ctx: &mut RankCtx,
        base: &State,
        eval: &State,
        c_dt: f64,
        out: &mut State,
    ) {
        let nlev = self.dims.nlev;
        let fl = self.dims.field_len();
        let nelem = eval.nelem();
        let mut tend = ElemTend::zeros(self.dims);
        let mut scratch = RhsScratch::new(nlev);

        let level_of = |st: &State, f: usize, k: usize| -> Vec<Vec<f64>> {
            let arena = field_of(st, f);
            (0..nelem)
                .map(|e| arena[e * fl + k * NPTS..e * fl + (k + 1) * NPTS].to_vec())
                .collect()
        };

        match self.mode {
            ExchangeMode::Original => {
                // Legacy schedule: all compute, then exchange (with the
                // pack/unpack staging copies counted by dss_level).
                for li in 0..nelem {
                    self.update_element(li, base, eval, c_dt, out, &mut tend, &mut scratch);
                }
                for f in 0..NFIELDS {
                    for k in 0..nlev {
                        let mut level = level_of(out, f, k);
                        self.tag += 1;
                        let tag = self.tag;
                        let mut stats = std::mem::take(&mut self.stats);
                        self.plan.dss_level(
                            ctx,
                            &mut level,
                            ExchangeMode::Original,
                            tag,
                            || {},
                            &mut stats,
                        );
                        self.stats = stats;
                        let arena = field_of_mut(out, f);
                        for (e, l) in level.iter().enumerate() {
                            arena[e * fl + k * NPTS..e * fl + (k + 1) * NPTS].copy_from_slice(l);
                        }
                    }
                }
            }
            ExchangeMode::Redesigned => {
                // 1. boundary elements first.
                let boundary = self.plan.boundary.clone();
                for &li in &boundary {
                    self.update_element(li, base, eval, c_dt, out, &mut tend, &mut scratch);
                }
                // 2. start every halo exchange from the boundary values.
                let mut pendings = Vec::with_capacity(NFIELDS * nlev);
                for f in 0..NFIELDS {
                    for k in 0..nlev {
                        let level = level_of(out, f, k);
                        self.tag += 1;
                        let mut stats = std::mem::take(&mut self.stats);
                        let pending = self.plan.start_halo(ctx, &level, self.tag, &mut stats);
                        self.stats = stats;
                        pendings.push((f, k, pending));
                    }
                }
                // 3. interior elements overlap the communication.
                let interior = self.plan.interior.clone();
                for &li in &interior {
                    self.update_element(li, base, eval, c_dt, out, &mut tend, &mut scratch);
                }
                // 4. complete every exchange against the now-complete local
                // fields.
                for (f, k, pending) in pendings {
                    let mut level = level_of(out, f, k);
                    self.plan.finish_halo(ctx, pending, &mut level);
                    let arena = field_of_mut(out, f);
                    for (e, l) in level.iter().enumerate() {
                        arena[e * fl + k * NPTS..e * fl + (k + 1) * NPTS].copy_from_slice(l);
                    }
                }
            }
        }
    }

    /// Advance the dynamics by one `dt` with the 5-stage Kinnmark–Gray RK.
    pub fn dynamics_step(&mut self, ctx: &mut RankCtx, state: &mut State) {
        let base = state.clone();
        let mut stage = state.clone();
        let mut next = state.clone();
        for &c in &KG5_COEFFS {
            self.rk_substep(ctx, &base, &stage, c * self.dt, &mut next);
            std::mem::swap(&mut stage, &mut next);
        }
        *state = stage;
    }

    /// Distributed DSS of one multi-level per-element scratch field.
    fn dss_field(&mut self, ctx: &mut RankCtx, nlev: usize, field: &mut [Vec<f64>]) {
        for k in 0..nlev {
            let mut level: Vec<Vec<f64>> =
                field.iter().map(|f| f[k * NPTS..(k + 1) * NPTS].to_vec()).collect();
            self.tag += 1;
            let tag = self.tag;
            let mut stats = std::mem::take(&mut self.stats);
            self.plan.dss_level(ctx, &mut level, self.mode, tag, || {}, &mut stats);
            self.stats = stats;
            for (f, l) in field.iter_mut().zip(&level) {
                f[k * NPTS..(k + 1) * NPTS].copy_from_slice(l);
            }
        }
    }

    /// Distributed weak-form Laplacian with DSS (one application).
    fn laplace_dist(&mut self, ctx: &mut RankCtx, nlev: usize, field: &mut [Vec<f64>]) {
        for (li, f) in field.iter_mut().enumerate() {
            for k in 0..nlev {
                let r = k * NPTS..(k + 1) * NPTS;
                let mut lap = [0.0; NPTS];
                self.ops[li].laplace_sphere_wk(&f[r.clone()], &mut lap);
                f[r].copy_from_slice(&lap);
            }
        }
        self.dss_field(ctx, nlev, field);
    }

    /// Distributed vector Laplacian of `(u, v)` with DSS (one application),
    /// mirroring [`crate::hypervis::vlaplace_fields`].
    fn vlaplace_dist(
        &mut self,
        ctx: &mut RankCtx,
        nlev: usize,
        u: &mut [Vec<f64>],
        v: &mut [Vec<f64>],
    ) {
        for li in 0..u.len() {
            for k in 0..nlev {
                let r = k * NPTS..(k + 1) * NPTS;
                let mut lu = [0.0; NPTS];
                let mut lv = [0.0; NPTS];
                self.ops[li].vlaplace_sphere(&u[li][r.clone()], &v[li][r.clone()], &mut lu, &mut lv);
                u[li][r.clone()].copy_from_slice(&lu);
                v[li][r].copy_from_slice(&lv);
            }
        }
        self.dss_field(ctx, nlev, u);
        self.dss_field(ctx, nlev, v);
    }

    /// Distributed subcycled biharmonic hyperviscosity on u, v, T, dp3d,
    /// operator-for-operator identical to
    /// [`Dycore::apply_hypervis`](crate::prim::Dycore::apply_hypervis)
    /// (vector Laplacian for momentum, weak-form scalar Laplacian for T and
    /// dp3d), with the serial DSS replaced by the boundary exchange.
    pub fn apply_hypervis(
        &mut self,
        ctx: &mut RankCtx,
        state: &mut State,
        nu: f64,
        subcycles: usize,
    ) {
        if nu == 0.0 {
            return;
        }
        let nlev = self.dims.nlev;
        let dt_sub = self.dt / subcycles as f64;
        for _ in 0..subcycles {
            let mut u: Vec<Vec<f64>> = state.elems().map(|es| es.u.to_vec()).collect();
            let mut v: Vec<Vec<f64>> = state.elems().map(|es| es.v.to_vec()).collect();
            let mut t: Vec<Vec<f64>> = state.elems().map(|es| es.t.to_vec()).collect();
            let mut dp: Vec<Vec<f64>> = state.elems().map(|es| es.dp3d.to_vec()).collect();
            self.vlaplace_dist(ctx, nlev, &mut u, &mut v);
            self.vlaplace_dist(ctx, nlev, &mut u, &mut v);
            self.laplace_dist(ctx, nlev, &mut t);
            self.laplace_dist(ctx, nlev, &mut t);
            self.laplace_dist(ctx, nlev, &mut dp);
            self.laplace_dist(ctx, nlev, &mut dp);
            for (li, es) in state.elems_mut().enumerate() {
                for i in 0..self.dims.field_len() {
                    es.u[i] -= dt_sub * nu * u[li][i];
                    es.v[i] -= dt_sub * nu * v[li][i];
                    es.t[i] -= dt_sub * nu * t[li][i];
                    es.dp3d[i] -= dt_sub * nu * dp[li][i];
                }
            }
        }
    }

    /// Distributed 3-stage SSP-RK2 tracer advection (`euler_step`) with a
    /// DSS per stage, matching the serial driver (without the limiter).
    pub fn euler_step_tracers(&mut self, ctx: &mut RankCtx, state: &mut State) {
        if self.dims.qsize == 0 {
            return;
        }
        let nlev = self.dims.nlev;
        let qsize = self.dims.qsize;
        let dt = self.dt;
        let qdp0: Vec<Vec<f64>> = state.elems().map(|es| es.qdp.to_vec()).collect();

        let substep = |dy: &Self, st: &State, input: &[Vec<f64>], out: &mut [Vec<f64>]| {
            for (li, es) in st.elems().enumerate() {
                for q in 0..qsize {
                    for k in 0..nlev {
                        let r = k * NPTS..(k + 1) * NPTS;
                        let rq = (q * nlev + k) * NPTS..(q * nlev + k + 1) * NPTS;
                        let mut tend = [0.0; NPTS];
                        crate::euler::tracer_flux_divergence(
                            &dy.ops[li],
                            &es.u[r.clone()],
                            &es.v[r.clone()],
                            &es.dp3d[r.clone()],
                            &input[li][rq.clone()],
                            &mut tend,
                        );
                        for p in 0..NPTS {
                            out[li][rq.start + p] = input[li][rq.start + p] + dt * tend[p];
                        }
                    }
                }
            }
        };

        let mut q1 = qdp0.clone();
        substep(self, state, &qdp0, &mut q1);
        self.dss_field(ctx, qsize * nlev, &mut q1);
        let mut tmp = qdp0.clone();
        substep(self, state, &q1, &mut tmp);
        let mut q2 = qdp0.clone();
        for (q2e, (q0e, te)) in q2.iter_mut().zip(qdp0.iter().zip(&tmp)) {
            for i in 0..q2e.len() {
                q2e[i] = 0.75 * q0e[i] + 0.25 * te[i];
            }
        }
        self.dss_field(ctx, qsize * nlev, &mut q2);
        substep(self, state, &q2, &mut tmp);
        let mut qf = qdp0.clone();
        for (qfe, (q0e, te)) in qf.iter_mut().zip(qdp0.iter().zip(&tmp)) {
            for i in 0..qfe.len() {
                qfe[i] = q0e[i] / 3.0 + 2.0 / 3.0 * te[i];
            }
        }
        self.dss_field(ctx, qsize * nlev, &mut qf);
        for (es, qe) in state.elems_mut().zip(&qf) {
            es.qdp.copy_from_slice(qe);
        }
    }

    /// Element-local vertical remap (no communication needed).
    pub fn vertical_remap(&self, state: &mut State) {
        let nlev = self.dims.nlev;
        let vert = &self.rhs.vert;
        let ptop = vert.ptop();
        let mut src = vec![0.0; nlev];
        let mut dst = vec![0.0; nlev];
        let mut col = vec![0.0; nlev];
        let mut out = vec![0.0; nlev];
        for es in state.elems_mut() {
            for p in 0..NPTS {
                let mut ps = ptop;
                for k in 0..nlev {
                    src[k] = es.dp3d[k * NPTS + p];
                    ps += src[k];
                }
                for k in 0..nlev {
                    dst[k] = vert.dp_ref(k, ps);
                }
                for field in [&mut *es.u, &mut *es.v, &mut *es.t] {
                    for k in 0..nlev {
                        col[k] = field[k * NPTS + p];
                    }
                    crate::remap::remap_column_ppm(&src, &col, &dst, &mut out);
                    for k in 0..nlev {
                        field[k * NPTS + p] = out[k];
                    }
                }
                for q in 0..self.dims.qsize {
                    for k in 0..nlev {
                        col[k] = es.qdp[(q * nlev + k) * NPTS + p] / src[k];
                    }
                    crate::remap::remap_column_ppm(&src, &col, &dst, &mut out);
                    for k in 0..nlev {
                        es.qdp[(q * nlev + k) * NPTS + p] = out[k] * dst[k];
                    }
                }
                for k in 0..nlev {
                    es.dp3d[k * NPTS + p] = dst[k];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervis::HypervisConfig;
    use crate::prim::{Dycore, DycoreConfig};
    use crate::state::State;
    use cubesphere::consts::P0;
    use swmpi::run_ranks;

    fn initial_state(dy: &Dycore) -> State {
        let mut st = dy.zero_state();
        let elems = dy.grid.elements.clone();
        let vert = dy.rhs.vert.clone();
        let nlev = dy.dims.nlev;
        for (es, el) in st.elems_mut().zip(&elems) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                let lon = el.metric[p].lon;
                let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
                for k in 0..nlev {
                    es.u[k * NPTS + p] = 12.0 * lat.cos();
                    es.v[k * NPTS + p] = 2.0 * lon.sin();
                    es.t[k * NPTS + p] = 280.0 + 5.0 * lat.cos() + k as f64;
                    es.dp3d[k * NPTS + p] = vert.dp_ref(k, ps);
                }
            }
        }
        st
    }

    /// The distributed dynamics step (both schedules) matches the serial
    /// Dycore to round-off after two full RK steps.
    #[test]
    fn distributed_dynamics_matches_serial() {
        let ne = 3;
        let dims = Dims { nlev: 4, qsize: 0 };
        let dt = 300.0;
        let cfg = DycoreConfig {
            dt,
            hypervis: HypervisConfig::off(),
            limiter: false,
            rsplit: 1,
        };
        let mut serial = Dycore::new(ne, dims, 2000.0, cfg);
        let mut st = initial_state(&serial);
        let initial = st.clone();
        serial.dynamics_step(&mut st);
        serial.dynamics_step(&mut st);

        for mode in [ExchangeMode::Original, ExchangeMode::Redesigned] {
            let nranks = 5;
            let grid = CubedSphere::new(ne);
            let part = Partition::new(&grid, nranks);
            let results = run_ranks(nranks, |ctx| {
                let mut dist =
                    DistDycore::new(&grid, &part, ctx.rank(), dims, 2000.0, dt, mode);
                let mut local = dist.local_state(&initial);
                dist.dynamics_step(ctx, &mut local);
                dist.dynamics_step(ctx, &mut local);
                (dist.plan.owned.clone(), local, dist.stats)
            });
            for (owned, local, stats) in results {
                if mode == ExchangeMode::Redesigned {
                    assert_eq!(stats.staged_bytes, 0, "redesign stages nothing");
                }
                for (li, e) in owned.into_iter().enumerate() {
                    let es = local.elem(li);
                    let reference = st.elem(e);
                    for i in 0..dims.field_len() {
                        assert!(
                            (es.u[i] - reference.u[i]).abs() < 1e-9,
                            "{mode:?} elem {e} u[{i}]: {} vs {}",
                            es.u[i],
                            reference.u[i]
                        );
                        assert!((es.t[i] - reference.t[i]).abs() < 1e-9);
                        assert!((es.dp3d[i] - reference.dp3d[i]).abs() < 1e-9);
                    }
                }
            }
        }
    }

    /// The complete distributed step — dynamics + hyperviscosity + tracer
    /// advection + vertical remap — matches the serial driver.
    #[test]
    fn full_distributed_step_matches_serial() {
        let ne = 3;
        let dims = Dims { nlev: 4, qsize: 1 };
        let dt = 300.0;
        let nu = 1.0e15;
        let hv = HypervisConfig {
            nu,
            nu_p: nu,
            subcycles: 3,
            nu_top: 0.0,
            sponge_layers: 0,
        };
        let cfg = DycoreConfig { dt, hypervis: hv, limiter: false, rsplit: 1 };
        let mut serial = Dycore::new(ne, dims, 2000.0, cfg);
        let subcycles = serial.hypervis_subcycles();
        let mut st = initial_state(&serial);
        let elems = serial.grid.elements.clone();
        for (es, el) in st.elems_mut().zip(&elems) {
            for p in 0..NPTS {
                for k in 0..dims.nlev {
                    es.qdp[k * NPTS + p] =
                        0.004 * es.dp3d[k * NPTS + p] * (1.0 + 0.3 * el.metric[p].lat.sin());
                }
            }
        }
        let initial = st.clone();
        serial.step(&mut st);

        let nranks = 4;
        let grid = CubedSphere::new(ne);
        let part = Partition::new(&grid, nranks);
        let results = run_ranks(nranks, |ctx| {
            let mut dist = DistDycore::new(
                &grid,
                &part,
                ctx.rank(),
                dims,
                2000.0,
                dt,
                ExchangeMode::Redesigned,
            );
            let mut local = dist.local_state(&initial);
            dist.dynamics_step(ctx, &mut local);
            dist.apply_hypervis(ctx, &mut local, nu, subcycles);
            dist.euler_step_tracers(ctx, &mut local);
            dist.vertical_remap(&mut local);
            (dist.plan.owned.clone(), local)
        });
        for (owned, local) in results {
            for (li, e) in owned.into_iter().enumerate() {
                let es = local.elem(li);
                let reference = st.elem(e);
                for i in 0..dims.field_len() {
                    assert!(
                        (es.u[i] - reference.u[i]).abs() < 1e-8,
                        "elem {e} u[{i}]: {} vs {}",
                        es.u[i],
                        reference.u[i]
                    );
                    assert!((es.t[i] - reference.t[i]).abs() < 1e-8);
                    assert!((es.dp3d[i] - reference.dp3d[i]).abs() < 1e-8);
                    assert!((es.qdp[i] - reference.qdp[i]).abs() < 1e-10);
                }
            }
        }
    }

    /// The boundary-only partial sums of start_halo are complete: a point
    /// shared with a peer never receives contributions from interior
    /// elements.
    #[test]
    fn shared_points_live_only_on_boundary_elements() {
        let grid = CubedSphere::new(4);
        for nranks in [3usize, 6, 10] {
            let part = Partition::new(&grid, nranks);
            for rank in 0..nranks {
                let plan = ExchangePlan::new(&grid, &part, rank);
                for &li in &plan.interior {
                    for p in 0..NPTS {
                        assert!(
                            !plan.gid_slot.contains_key(&plan.gids[li][p]),
                            "interior element {li} touches a peer-shared point"
                        );
                    }
                }
            }
        }
    }
}
