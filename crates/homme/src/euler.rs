//! `euler_step`: tracer advection.
//!
//! "construct strong stability preserving (SSP) second order Runge–Kutta
//! method" (Table 1). Tracer mass `qdp` advances with the flux-form
//! equation `d(qdp)/dt = -div(v q dp)` in a 3-stage SSP-RK2 scheme, with an
//! optional sign-preserving mass-conserving limiter. Each stage ends with a
//! DSS — the "3 sub-cycles edge packing/unpacking and boundary exchange"
//! whose communication cost Section 7.6 attacks.

use crate::deriv::ElemOps;
use crate::kernels::blocked::{euler_stage_element_blocked, BlockedOps, StageCombine};
use crate::sched::{ArenaMut, ElemScheduler};
use crate::state::Dims;
use cubesphere::NPTS;

/// Element-local tracer tendency: `out = -div(u q dp, v q dp)` for one
/// level of one tracer. `q` is derived point-wise as `qdp / dp`.
pub fn tracer_flux_divergence(
    op: &ElemOps,
    u: &[f64],
    v: &[f64],
    dp: &[f64],
    qdp: &[f64],
    out: &mut [f64; NPTS],
) {
    let mut fx = [0.0; NPTS];
    let mut fy = [0.0; NPTS];
    for p in 0..NPTS {
        let q = qdp[p] / dp[p];
        fx[p] = u[p] * dp[p] * q;
        fy[p] = v[p] * dp[p] * q;
    }
    let mut div = [0.0; NPTS];
    op.divergence_sphere(&fx, &fy, &mut div);
    for p in 0..NPTS {
        out[p] = -div[p];
    }
}

/// One forward-Euler sub-step of all tracers of all elements:
/// `qdp_out = qdp_in + dt * RHS(qdp_in)` (no DSS; the caller assembles).
#[allow(clippy::too_many_arguments)]
pub fn euler_substep(
    ops: &[ElemOps],
    dims: Dims,
    u: &[Vec<f64>],
    v: &[Vec<f64>],
    dp: &[Vec<f64>],
    qdp_in: &[Vec<f64>],
    dt: f64,
    qdp_out: &mut [Vec<f64>],
) {
    for (e, op) in ops.iter().enumerate() {
        for q in 0..dims.qsize {
            for k in 0..dims.nlev {
                let r = dims.at(k, 0)..dims.at(k, 0) + NPTS;
                let rq = dims.atq(q, k, 0)..dims.atq(q, k, 0) + NPTS;
                let mut tend = [0.0; NPTS];
                tracer_flux_divergence(
                    op,
                    &u[e][r.clone()],
                    &v[e][r.clone()],
                    &dp[e][r.clone()],
                    &qdp_in[e][rq.clone()],
                    &mut tend,
                );
                for p in 0..NPTS {
                    qdp_out[e][rq.start + p] = qdp_in[e][rq.start + p] + dt * tend[p];
                }
            }
        }
    }
}

/// Flat-arena forward-Euler sub-step: `u`/`v`/`dp` are `[nelem][nlev]
/// [NPTS]` arenas, `qdp_in`/`qdp_out` are `[nelem][qsize][nlev][NPTS]`
/// arenas (the state-arena layout). Elements run across the scheduler's
/// workers; arithmetic is identical to [`euler_substep`] and the call is
/// allocation-free.
#[allow(clippy::too_many_arguments)]
pub fn euler_substep_flat(
    ops: &[ElemOps],
    dims: Dims,
    sched: &ElemScheduler,
    u: &[f64],
    v: &[f64],
    dp: &[f64],
    qdp_in: &[f64],
    dt: f64,
    qdp_out: &mut [f64],
) {
    let fl = dims.field_len();
    let tl = dims.tracer_len();
    let arena_out = ArenaMut::new(qdp_out);
    sched.run(ops.len(), &|_w, e| {
        let op = &ops[e];
        let ue = &u[e * fl..(e + 1) * fl];
        let ve = &v[e * fl..(e + 1) * fl];
        let dpe = &dp[e * fl..(e + 1) * fl];
        let qin = &qdp_in[e * tl..(e + 1) * tl];
        // Disjoint per-element window of the output arena.
        let qout = unsafe { arena_out.slice(e * tl, tl) };
        for q in 0..dims.qsize {
            for k in 0..dims.nlev {
                let r = dims.at(k, 0)..dims.at(k, 0) + NPTS;
                let rq = dims.atq(q, k, 0)..dims.atq(q, k, 0) + NPTS;
                let mut tend = [0.0; NPTS];
                tracer_flux_divergence(
                    op,
                    &ue[r.clone()],
                    &ve[r.clone()],
                    &dpe[r.clone()],
                    &qin[rq.clone()],
                    &mut tend,
                );
                for p in 0..NPTS {
                    qout[rq.start + p] = qin[rq.start + p] + dt * tend[p];
                }
            }
        }
    });
}

/// One full blocked Euler stage over a flat tracer arena: flux divergence,
/// forward-Euler update and SSP stage combination fused per element, with
/// mass fluxes hoisted across the tracer loop (see
/// [`euler_stage_element_blocked`]). Elements run across the scheduler's
/// workers; the call is allocation-free and bitwise identical to
/// [`euler_substep_flat`] followed by the driver's combination loop.
#[allow(clippy::too_many_arguments)]
pub fn euler_stage_flat_blocked(
    bops: &[BlockedOps],
    dims: Dims,
    sched: &ElemScheduler,
    u: &[f64],
    v: &[f64],
    dp: &[f64],
    qdp_in: &[f64],
    q0: &[f64],
    dt: f64,
    combine: StageCombine,
    qdp_out: &mut [f64],
) {
    let fl = dims.field_len();
    let tl = dims.tracer_len();
    let arena_out = ArenaMut::new(qdp_out);
    sched.run(bops.len(), &|_w, e| {
        // Disjoint per-element window of the output arena.
        let qout = unsafe { arena_out.slice(e * tl, tl) };
        euler_stage_element_blocked(
            &bops[e],
            dims.nlev,
            dims.qsize,
            &u[e * fl..(e + 1) * fl],
            &v[e * fl..(e + 1) * fl],
            &dp[e * fl..(e + 1) * fl],
            &qdp_in[e * tl..(e + 1) * tl],
            &q0[e * tl..(e + 1) * tl],
            dt,
            combine,
            qout,
        );
    });
}

/// Sign-preserving limiter: eliminate negative `qdp` within one element
/// level while conserving the element-level mass (the spirit of HOMME's
/// `limiter_optim_iter_full`, reduced to its non-iterative core).
///
/// Negative values are clipped to zero and the created mass is removed
/// proportionally from the positive values. If the level's total mass is
/// negative nothing can be conserved positively; values clip to zero.
pub fn limit_nonnegative(spheremp: &[f64; NPTS], qdp: &mut [f64]) {
    debug_assert_eq!(qdp.len(), NPTS);
    let mut deficit = 0.0;
    let mut positive_mass = 0.0;
    for p in 0..NPTS {
        let m = spheremp[p] * qdp[p];
        if qdp[p] < 0.0 {
            deficit += -m;
            qdp[p] = 0.0;
        } else {
            positive_mass += m;
        }
    }
    if deficit == 0.0 {
        return;
    }
    if positive_mass <= deficit {
        for v in qdp.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    let scale = (positive_mass - deficit) / positive_mass;
    for v in qdp.iter_mut() {
        *v *= scale;
    }
}

/// Apply [`limit_nonnegative`] to every (tracer, level) of a flat tracer
/// arena (`[nelem][qsize][nlev][NPTS]`). Shared by the serial and
/// distributed drivers so their tracer stages stay bit-identical.
pub fn limit_tracer_arena(ops: &[ElemOps], dims: Dims, qdp: &mut [f64]) {
    let nlev = dims.nlev;
    let tl = dims.tracer_len();
    for (e, op) in ops.iter().enumerate() {
        let mut spheremp = [0.0; NPTS];
        spheremp.copy_from_slice(&op.spheremp);
        let qe = &mut qdp[e * tl..(e + 1) * tl];
        for q in 0..dims.qsize {
            for k in 0..nlev {
                let r = (q * nlev + k) * NPTS..(q * nlev + k + 1) * NPTS;
                limit_nonnegative(&spheremp, &mut qe[r]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deriv::build_ops;
    use cubesphere::CubedSphere;

    #[test]
    fn flux_divergence_of_uniform_q_matches_dp_flux() {
        // With q = 2 everywhere, tendency must equal 2 x (-div(v dp)).
        let grid = CubedSphere::new(3);
        let ops = build_ops(&grid);
        for (el, op) in grid.elements.iter().zip(&ops).take(8) {
            let u: Vec<f64> = el.metric.iter().map(|m| 10.0 * m.lat.cos()).collect();
            let v: Vec<f64> = el.metric.iter().map(|m| 3.0 * m.lon.sin()).collect();
            let dp: Vec<f64> = el.metric.iter().map(|m| 850.0 + 5.0 * m.lat.sin()).collect();
            let qdp: Vec<f64> = dp.iter().map(|d| 2.0 * d).collect();
            let mut tend_q = [0.0; NPTS];
            tracer_flux_divergence(op, &u, &v, &dp, &qdp, &mut tend_q);
            // Reference: -div(u dp, v dp) scaled by 2.
            let mut fx = [0.0; NPTS];
            let mut fy = [0.0; NPTS];
            for p in 0..NPTS {
                fx[p] = u[p] * dp[p];
                fy[p] = v[p] * dp[p];
            }
            let mut div = [0.0; NPTS];
            op.divergence_sphere(&fx, &fy, &mut div);
            for p in 0..NPTS {
                assert!(
                    (tend_q[p] + 2.0 * div[p]).abs() < 1e-9 * div[p].abs().max(1e-6),
                    "{} vs {}",
                    tend_q[p],
                    -2.0 * div[p]
                );
            }
        }
    }

    #[test]
    fn flat_substep_matches_per_element_substep() {
        let grid = CubedSphere::new(2);
        let ops = build_ops(&grid);
        let dims = Dims { nlev: 3, qsize: 2 };
        let nelem = grid.nelem();
        let fl = dims.field_len();
        let tl = dims.tracer_len();
        let mk = |s: usize, len: usize| -> Vec<Vec<f64>> {
            (0..nelem)
                .map(|e| (0..len).map(|i| 800.0 + ((e * 31 + i * 7 + s) % 23) as f64).collect())
                .collect()
        };
        let u = mk(0, fl);
        let v = mk(1, fl);
        let dp = mk(2, fl);
        let qdp = mk(3, tl);
        let mut out_pe = vec![vec![0.0; tl]; nelem];
        euler_substep(&ops, dims, &u, &v, &dp, &qdp, 7.0, &mut out_pe);

        let flat = |f: &[Vec<f64>]| -> Vec<f64> { f.iter().flatten().copied().collect() };
        let sched = ElemScheduler::new(3);
        let mut out_flat = vec![0.0; nelem * tl];
        euler_substep_flat(
            &ops,
            dims,
            &sched,
            &flat(&u),
            &flat(&v),
            &flat(&dp),
            &flat(&qdp),
            7.0,
            &mut out_flat,
        );
        for (e, pe) in out_pe.iter().enumerate() {
            assert_eq!(pe.as_slice(), &out_flat[e * tl..(e + 1) * tl], "element {e}");
        }
    }

    #[test]
    fn limiter_clips_and_conserves() {
        let spheremp = [1.0; NPTS];
        let mut qdp = [1.0; NPTS];
        qdp[3] = -0.5;
        qdp[7] = -0.3;
        let mass_before: f64 = qdp.iter().sum();
        limit_nonnegative(&spheremp, &mut qdp);
        let mass_after: f64 = qdp.iter().sum();
        assert!(qdp.iter().all(|&x| x >= 0.0));
        assert!((mass_before - mass_after).abs() < 1e-12);
    }

    #[test]
    fn limiter_weighted_conservation() {
        let mut spheremp = [0.0; NPTS];
        for (i, w) in spheremp.iter_mut().enumerate() {
            *w = 1.0 + (i % 4) as f64;
        }
        let mut qdp = [0.5; NPTS];
        qdp[0] = -1.0;
        let before: f64 = spheremp.iter().zip(&qdp).map(|(w, q)| w * q).sum();
        limit_nonnegative(&spheremp, &mut qdp);
        let after: f64 = spheremp.iter().zip(&qdp).map(|(w, q)| w * q).sum();
        assert!((before - after).abs() < 1e-12);
        assert!(qdp.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn limiter_all_negative_floors_to_zero() {
        let spheremp = [1.0; NPTS];
        let mut qdp = [-1.0; NPTS];
        limit_nonnegative(&spheremp, &mut qdp);
        assert!(qdp.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn limiter_noop_when_nonnegative() {
        let spheremp = [1.0; NPTS];
        let mut qdp = [0.25; NPTS];
        let before = qdp;
        limit_nonnegative(&spheremp, &mut qdp);
        assert_eq!(qdp, before);
    }
}
