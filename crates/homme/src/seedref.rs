//! Reference stepper preserving the original (allocation-heavy,
//! serial, per-element `Vec`) driver algorithm, kept as the equivalence
//! oracle for the flat-arena pipeline in [`crate::prim`].
//!
//! Every arithmetic expression here is copied verbatim from the seed
//! `Dycore` methods; only the state access goes through the arena's
//! element views. The `state_arena` integration test asserts that
//! [`crate::prim::Dycore::step`] and [`SeedStepper::step`] produce
//! bitwise-identical trajectories.

use crate::euler::{euler_substep, limit_nonnegative};
use crate::hypervis::{biharmonic_fields, laplace_fields, vlaplace_fields};
use crate::prim::{Dycore, KG5_COEFFS};
use crate::remap::remap_column_ppm;
use crate::rhs::{ElemTend, RhsScratch};
use crate::state::State;
use cubesphere::NPTS;

/// Serial reference driver. Owns only the remap cadence counter; all
/// operators are borrowed from the [`Dycore`] so both paths share the
/// exact same tables.
#[derive(Debug, Default)]
pub struct SeedStepper {
    steps_since_remap: usize,
}

impl SeedStepper {
    /// Fresh stepper (remap counter at zero, like a fresh `Dycore`).
    pub fn new() -> Self {
        SeedStepper::default()
    }

    /// One full model step with the seed algorithm.
    pub fn step(&mut self, dy: &mut Dycore, state: &mut State) {
        self.dynamics_step(dy, state);
        self.apply_hypervis(dy, state);
        self.euler_step_tracers(dy, state);
        self.steps_since_remap += 1;
        if self.steps_since_remap >= dy.cfg.rsplit {
            self.vertical_remap(dy, state);
            self.steps_since_remap = 0;
        }
    }

    /// One explicit sub-step: `out = base + c dt RHS(eval)`, then DSS.
    fn rk_substep(dy: &mut Dycore, base: &State, eval: &State, c_dt: f64, out: &mut State) {
        let nlev = dy.dims.nlev;
        let mut tend = ElemTend::zeros(dy.dims);
        let mut scratch = RhsScratch::new(nlev);
        for e in 0..eval.nelem() {
            dy.rhs.element_tend(&dy.ops[e], eval.elem(e), &mut tend, &mut scratch);
            let oe = out.elem_mut(e);
            let be = eval_base(base, e);
            for i in 0..dy.dims.field_len() {
                oe.u[i] = be.0[i] + c_dt * tend.u[i];
                oe.v[i] = be.1[i] + c_dt * tend.v[i];
                oe.t[i] = be.2[i] + c_dt * tend.t[i];
                oe.dp3d[i] = be.3[i] + c_dt * tend.dp3d[i];
            }
        }
        // DSS the four updated prognostics via the per-element Vec path.
        let mut u: Vec<Vec<f64>> = out.elems().map(|e| e.u.to_vec()).collect();
        let mut v: Vec<Vec<f64>> = out.elems().map(|e| e.v.to_vec()).collect();
        let mut t: Vec<Vec<f64>> = out.elems().map(|e| e.t.to_vec()).collect();
        let mut dp: Vec<Vec<f64>> = out.elems().map(|e| e.dp3d.to_vec()).collect();
        dy.dss.apply(&mut u, nlev);
        dy.dss.apply(&mut v, nlev);
        dy.dss.apply(&mut t, nlev);
        dy.dss.apply(&mut dp, nlev);
        for (e, oe) in out.elems_mut().enumerate() {
            oe.u.copy_from_slice(&u[e]);
            oe.v.copy_from_slice(&v[e]);
            oe.t.copy_from_slice(&t[e]);
            oe.dp3d.copy_from_slice(&dp[e]);
        }
    }

    /// 5-stage Kinnmark–Gray RK, seed structure (full-state clones).
    pub fn dynamics_step(&mut self, dy: &mut Dycore, state: &mut State) {
        let dt = dy.cfg.dt;
        let base = state.clone();
        let mut stage = state.clone();
        let mut next = state.clone();
        for &c in &KG5_COEFFS {
            Self::rk_substep(dy, &base, &stage, c * dt, &mut next);
            std::mem::swap(&mut stage, &mut next);
        }
        *state = stage;
    }

    /// Subcycled biharmonic hyperviscosity, seed structure.
    pub fn apply_hypervis(&mut self, dy: &mut Dycore, state: &mut State) {
        let hv = dy.cfg.hypervis;
        if hv.nu == 0.0 && hv.nu_p == 0.0 {
            return;
        }
        let nlev = dy.dims.nlev;
        if hv.nu_top > 0.0 && hv.sponge_layers > 0 {
            let ks = hv.sponge_layers.min(nlev);
            let mut u: Vec<Vec<f64>> = state.elems().map(|e| e.u[..ks * NPTS].to_vec()).collect();
            let mut v: Vec<Vec<f64>> = state.elems().map(|e| e.v[..ks * NPTS].to_vec()).collect();
            let mut t: Vec<Vec<f64>> = state.elems().map(|e| e.t[..ks * NPTS].to_vec()).collect();
            vlaplace_fields(&dy.ops, &mut dy.dss, ks, &mut u, &mut v);
            laplace_fields(&dy.ops, &mut dy.dss, ks, &mut t);
            for (e, es) in state.elems_mut().enumerate() {
                for (k_rel, damp) in (0..ks).map(|k| (k, 1.0 / (1 << k) as f64)) {
                    for p in 0..NPTS {
                        let i = k_rel * NPTS + p;
                        es.u[i] += dy.cfg.dt * hv.nu_top * damp * u[e][i];
                        es.v[i] += dy.cfg.dt * hv.nu_top * damp * v[e][i];
                        es.t[i] += dy.cfg.dt * hv.nu_top * damp * t[e][i];
                    }
                }
            }
        }
        let subcycles = dy.hypervis_subcycles();
        let dt_sub = dy.cfg.dt / subcycles as f64;
        for _ in 0..subcycles {
            let mut u: Vec<Vec<f64>> = state.elems().map(|e| e.u.to_vec()).collect();
            let mut v: Vec<Vec<f64>> = state.elems().map(|e| e.v.to_vec()).collect();
            let mut t: Vec<Vec<f64>> = state.elems().map(|e| e.t.to_vec()).collect();
            let mut dp: Vec<Vec<f64>> = state.elems().map(|e| e.dp3d.to_vec()).collect();
            vlaplace_fields(&dy.ops, &mut dy.dss, nlev, &mut u, &mut v);
            vlaplace_fields(&dy.ops, &mut dy.dss, nlev, &mut u, &mut v);
            biharmonic_fields(&dy.ops, &mut dy.dss, nlev, &mut t);
            biharmonic_fields(&dy.ops, &mut dy.dss, nlev, &mut dp);
            for (e, es) in state.elems_mut().enumerate() {
                for i in 0..dy.dims.field_len() {
                    es.u[i] -= dt_sub * hv.nu * u[e][i];
                    es.v[i] -= dt_sub * hv.nu * v[e][i];
                    es.t[i] -= dt_sub * hv.nu * t[e][i];
                    es.dp3d[i] -= dt_sub * hv.nu_p * dp[e][i];
                }
            }
        }
    }

    /// 3-stage SSP-RK2 tracer advection, seed structure.
    pub fn euler_step_tracers(&mut self, dy: &mut Dycore, state: &mut State) {
        if dy.dims.qsize == 0 {
            return;
        }
        let dt = dy.cfg.dt;
        let nlev = dy.dims.nlev;
        let u: Vec<Vec<f64>> = state.elems().map(|e| e.u.to_vec()).collect();
        let v: Vec<Vec<f64>> = state.elems().map(|e| e.v.to_vec()).collect();
        let dp: Vec<Vec<f64>> = state.elems().map(|e| e.dp3d.to_vec()).collect();
        let qdp0: Vec<Vec<f64>> = state.elems().map(|e| e.qdp.to_vec()).collect();
        let mut q1 = qdp0.clone();
        let mut q2 = qdp0.clone();

        euler_substep(&dy.ops, dy.dims, &u, &v, &dp, &qdp0, dt, &mut q1);
        finish_tracer_stage(dy, &mut q1, nlev);
        let mut tmp = qdp0.clone();
        euler_substep(&dy.ops, dy.dims, &u, &v, &dp, &q1, dt, &mut tmp);
        for (q2e, (q0e, te)) in q2.iter_mut().zip(qdp0.iter().zip(&tmp)) {
            for i in 0..q2e.len() {
                q2e[i] = 0.75 * q0e[i] + 0.25 * te[i];
            }
        }
        finish_tracer_stage(dy, &mut q2, nlev);
        euler_substep(&dy.ops, dy.dims, &u, &v, &dp, &q2, dt, &mut tmp);
        for (es, (q0e, te)) in state.elems_mut().zip(qdp0.iter().zip(&tmp)) {
            for i in 0..es.qdp.len() {
                es.qdp[i] = q0e[i] / 3.0 + 2.0 / 3.0 * te[i];
            }
        }
        let mut qf: Vec<Vec<f64>> = state.elems().map(|e| e.qdp.to_vec()).collect();
        finish_tracer_stage(dy, &mut qf, nlev);
        for (es, qe) in state.elems_mut().zip(&qf) {
            es.qdp.copy_from_slice(qe);
        }
    }

    /// PPM vertical remap, seed structure (fresh column Vecs).
    pub fn vertical_remap(&mut self, dy: &mut Dycore, state: &mut State) {
        let nlev = dy.dims.nlev;
        let vert = &dy.rhs.vert;
        let ptop = vert.ptop();
        let qsize = dy.dims.qsize;
        let mut src = vec![0.0; nlev];
        let mut dst = vec![0.0; nlev];
        let mut col = vec![0.0; nlev];
        let mut out = vec![0.0; nlev];
        for es in state.elems_mut() {
            for p in 0..NPTS {
                let mut ps = ptop;
                for k in 0..nlev {
                    src[k] = es.dp3d[k * NPTS + p];
                    ps += src[k];
                }
                for k in 0..nlev {
                    dst[k] = vert.dp_ref(k, ps);
                }
                for field in [&mut *es.u, &mut *es.v, &mut *es.t] {
                    for k in 0..nlev {
                        col[k] = field[k * NPTS + p];
                    }
                    remap_column_ppm(&src, &col, &dst, &mut out).expect("remap");
                    for k in 0..nlev {
                        field[k * NPTS + p] = out[k];
                    }
                }
                for q in 0..qsize {
                    for k in 0..nlev {
                        col[k] = es.qdp[(q * nlev + k) * NPTS + p] / src[k];
                    }
                    remap_column_ppm(&src, &col, &dst, &mut out).expect("remap");
                    for k in 0..nlev {
                        es.qdp[(q * nlev + k) * NPTS + p] = out[k] * dst[k];
                    }
                }
                for k in 0..nlev {
                    es.dp3d[k * NPTS + p] = dst[k];
                }
            }
        }
    }
}

/// Borrow the four dynamics fields of element `e` from the base state.
fn eval_base(base: &State, e: usize) -> (&[f64], &[f64], &[f64], &[f64]) {
    let es = base.elem(e);
    (es.u, es.v, es.t, es.dp3d)
}

/// DSS + optional limiter for one tracer stage (seed per-element path).
fn finish_tracer_stage(dy: &mut Dycore, qdp: &mut [Vec<f64>], nlev: usize) {
    dy.dss.apply(qdp, dy.dims.qsize * nlev);
    if dy.cfg.limiter {
        for (e, qe) in qdp.iter_mut().enumerate() {
            let mut spheremp = [0.0; NPTS];
            spheremp.copy_from_slice(&dy.ops[e].spheremp);
            for q in 0..dy.dims.qsize {
                for k in 0..nlev {
                    let r = (q * nlev + k) * NPTS..(q * nlev + k + 1) * NPTS;
                    limit_nonnegative(&spheremp, &mut qe[r]);
                }
            }
        }
    }
}
