//! Horizontal dissipation: the `hypervis_dp1` / `hypervis_dp2` /
//! `biharmonic_dp3d` kernels of Table 1.
//!
//! CAM-SE stabilizes the spectral-element discretization with scale-
//! selective hyperviscosity: `df/dt = -nu lap^2(f)` applied (subcycled) to
//! `u, v, T, dp3d`. The building blocks are the element Laplacian
//! ([`crate::deriv::ElemOps::laplace_sphere`]) and a DSS between the two
//! Laplacian applications — the "weak biharmonic operator". A plain
//! Laplacian viscosity (`hypervis_dp1` in the paper's kernel table) is also
//! provided.

use crate::deriv::ElemOps;
use crate::dss::Dss;
use crate::kernels::blocked::{
    laplace_levels_blocked, vlaplace_levels_blocked, BlockedOps, KernelPath,
};
use crate::sched::{ArenaMut, ElemScheduler};
use cubesphere::NPTS;

/// Floor on the smallest GLL gap used in the subcycle stability estimate,
/// in **meters**.
///
/// [`HypervisConfig::stable_subcycles`] divides by the gap to form the grid
/// Nyquist wavenumber; a degenerate metric (zero or NaN `metdet`, a
/// collapsed element of a synthetic test grid) would otherwise drive
/// `k_max -> inf` and saturate the subcycle count. One meter is ~5 orders
/// of magnitude below any physical GLL spacing this model resolves (ne120
/// is ~25 km), so the floor is inert on real grids and only guards the
/// degenerate ones. Serial ([`crate::prim::Dycore`]) and distributed
/// ([`crate::dist::DistDycore`]) drivers both route their characteristic
/// grid spacing through this same constant so their subcycle counts always
/// agree.
pub const MIN_GLL_GAP_METERS: f64 = 1.0;

/// Hyperviscosity configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypervisConfig {
    /// Biharmonic coefficient for momentum and temperature, m^4/s.
    pub nu: f64,
    /// Biharmonic coefficient for `dp3d`, m^4/s.
    pub nu_p: f64,
    /// Subcycles per dynamics step.
    pub subcycles: usize,
    /// Sponge-layer Laplacian coefficient applied to the top layers,
    /// m^2/s (HOMME's `nu_top`; damps vertically-propagating waves that
    /// would otherwise reflect off the model top).
    pub nu_top: f64,
    /// Number of top layers the sponge covers.
    pub sponge_layers: usize,
}

impl HypervisConfig {
    /// CAM's resolution scaling: `nu = 1e15 (30/ne)^3.2` m^4/s.
    pub fn for_ne(ne: usize) -> Self {
        let nu = 1.0e15 * (30.0 / ne as f64).powf(3.2);
        HypervisConfig { nu, nu_p: nu, subcycles: 3, nu_top: 2.5e5, sponge_layers: 3 }
    }

    /// Disabled dissipation (for steady-state tests).
    pub fn off() -> Self {
        HypervisConfig { nu: 0.0, nu_p: 0.0, subcycles: 1, nu_top: 0.0, sponge_layers: 0 }
    }

    /// Stability-limited subcycle count: the explicit forward-Euler
    /// biharmonic update needs `nu k_max^4 dt_sub < ~0.4`, with `k_max`
    /// the spectral-element grid Nyquist (smallest GLL gap, with a
    /// factor-2 margin for the spectral operator's eigenvalue excess).
    /// `dab` is the element's angular width and `metdet0` the metric
    /// determinant at its first GLL node (any representative element of a
    /// quasi-uniform grid works). Production HOMME computes
    /// `hypervis_subcycle` the same way; the serial and distributed
    /// drivers share this so they always agree.
    pub fn stable_subcycles(&self, dab: f64, metdet0: f64, dt: f64) -> usize {
        let nu = self.nu.max(self.nu_p);
        if nu == 0.0 {
            return self.subcycles.max(1);
        }
        // Smallest GLL gap: |x1 - x0| = 1 - 1/sqrt(5) on [-1, 1].
        let ref_gap = 1.0 - 1.0 / 5.0_f64.sqrt();
        // metdet ~ (physical area)/(dalpha dbeta): sqrt gives the length
        // scale per unit angle.
        let scale = metdet0.sqrt();
        let gap = (ref_gap * 0.5 * dab * scale).max(MIN_GLL_GAP_METERS);
        let k_max = 2.0 * std::f64::consts::PI / gap;
        let needed = (nu * k_max.powi(4) * dt / 0.4).ceil() as usize;
        needed.max(self.subcycles).max(1)
    }
}

/// Why a hyperviscosity plan build rejected the step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HypervisError {
    /// An element's metric tables are unusable (non-finite or non-positive
    /// `metdet`/`rmetdet`/`spheremp` at the given GLL point) — the fused
    /// sweeps would silently propagate garbage through every field.
    BadGeometry { elem: usize, point: usize },
    /// A step coefficient (`dt_sub * nu`, `dt * nu_top`, ...) came out
    /// non-finite, e.g. from a NaN timestep after a corrupted rollback.
    NonFiniteCoef { coef: f64 },
}

impl std::fmt::Display for HypervisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypervisError::BadGeometry { elem, point } => write!(
                f,
                "hyperviscosity plan rejected element {elem}: degenerate metric at GLL point {point}"
            ),
            HypervisError::NonFiniteCoef { coef } => {
                write!(f, "hyperviscosity plan rejected non-finite step coefficient {coef}")
            }
        }
    }
}

impl std::error::Error for HypervisError {}

/// Per-step hyperviscosity plan: every coefficient the subcycle loop and
/// the sponge apply need, hoisted out of the sweeps and validated once.
///
/// The paper's Table-1 hypervis kernels earn their speedup from data reuse
/// across the two Laplacian passes and the coefficient applies; the host
/// analogue is this plan plus the fused kernels in
/// [`crate::kernels::blocked`]. The geometry itself already lives hoisted
/// in [`BlockedOps`]; what the plan adds is
///
/// * the forward-Euler damping coefficients per level, **negated** so the
///   fused DSS-and-apply sweep ([`Dss::apply_flat_scaled_add`]) is a single
///   `+=` for both the subcycle applies (`x -= c*l  ==  x += (-c)*l`
///   bitwise — IEEE negation of the exact product) and the sponge,
/// * the per-layer sponge coefficients `(dt*nu_top) * 2^-k`, and
/// * a fail-fast validation pass over the step coefficients and every
///   element's metric rows, so a corrupt element rejects the step through
///   the typed-error rollback path instead of poisoning the trajectory.
///
/// Buffers are presized by [`ElemHypervisPlan::new`]; a steady-state
/// [`ElemHypervisPlan::build`] never allocates.
#[derive(Debug, Clone)]
pub struct ElemHypervisPlan {
    /// Subcycle count the coefficients were built for.
    pub subcycles: usize,
    /// Clamped sponge depth `sponge_layers.min(nlev)`.
    pub ks: usize,
    /// `dt_sub * nu` (u, v, T applies — the bulk drivers' hoisted form).
    pub coef_u: f64,
    /// `dt_sub * nu_p` (dp3d apply).
    pub coef_dp: f64,
    /// Per-level `-(dt_sub * nu)` for the fused `+=` apply, `[nlev]`.
    pub damp_u: Vec<f64>,
    /// Per-level `-(dt_sub * nu_p)`, `[nlev]`.
    pub damp_dp: Vec<f64>,
    /// Per-layer sponge coefficient `(dt * nu_top) * 2^-k`, `[ks]`.
    pub sponge: Vec<f64>,
}

impl ElemHypervisPlan {
    /// Presize for a problem shape (allocates; `build` then never does).
    pub fn new(nlev: usize, sponge_layers: usize) -> Self {
        ElemHypervisPlan {
            subcycles: 0,
            ks: sponge_layers.min(nlev),
            coef_u: 0.0,
            coef_dp: 0.0,
            damp_u: vec![0.0; nlev],
            damp_dp: vec![0.0; nlev],
            sponge: vec![0.0; sponge_layers.min(nlev)],
        }
    }

    /// Build the step coefficients and validate the geometry. Grow-only on
    /// the presized buffers; steady-state rebuilds are allocation-free.
    pub fn build(
        &mut self,
        hv: &HypervisConfig,
        dt: f64,
        subcycles: usize,
        nlev: usize,
        ops: &[ElemOps],
    ) -> Result<(), HypervisError> {
        let dt_sub = dt / subcycles as f64;
        let coef_u = dt_sub * hv.nu;
        let coef_dp = dt_sub * hv.nu_p;
        let sponge0 = dt * hv.nu_top;
        for coef in [coef_u, coef_dp, sponge0] {
            if !coef.is_finite() {
                return Err(HypervisError::NonFiniteCoef { coef });
            }
        }
        // The fused sweeps divide by spheremp and multiply by
        // metdet/rmetdet in every walk; reject any element whose metric
        // rows could turn the whole-step sweep into NaN soup — NaN as
        // well as zero/negative.
        let bad = |x: f64| x.is_nan() || x <= 0.0;
        for (e, op) in ops.iter().enumerate() {
            for p in 0..NPTS {
                if bad(op.metdet[p]) || bad(op.rmetdet[p]) || bad(op.spheremp[p]) {
                    return Err(HypervisError::BadGeometry { elem: e, point: p });
                }
            }
        }
        self.subcycles = subcycles;
        self.ks = hv.sponge_layers.min(nlev);
        self.coef_u = coef_u;
        self.coef_dp = coef_dp;
        if self.damp_u.len() < nlev {
            self.damp_u.resize(nlev, 0.0);
            self.damp_dp.resize(nlev, 0.0);
        }
        for k in 0..nlev {
            self.damp_u[k] = -coef_u;
            self.damp_dp[k] = -coef_dp;
        }
        if self.sponge.len() < self.ks {
            self.sponge.resize(self.ks, 0.0);
        }
        for (k, c) in self.sponge[..self.ks].iter_mut().enumerate() {
            *c = sponge0 * (1.0 / (1u64 << k) as f64);
        }
        Ok(())
    }
}

/// In-place `lap(f)` per element level with DSS, using the weak-form
/// (Galerkin) Laplacian [`ElemOps::laplace_sphere_wk`]: conservative to
/// round-off, which is what makes the subcycled `dp3d` dissipation
/// mass-conserving. `fields[e]` is `[nlev][NPTS]`.
pub fn laplace_fields(ops: &[ElemOps], dss: &mut Dss, nlev: usize, fields: &mut [Vec<f64>]) {
    for (e, op) in ops.iter().enumerate() {
        for k in 0..nlev {
            let r = k * NPTS..(k + 1) * NPTS;
            let mut lap = [0.0; NPTS];
            op.laplace_sphere_wk(&fields[e][r.clone()], &mut lap);
            fields[e][r].copy_from_slice(&lap);
        }
    }
    dss.apply(fields, nlev);
}

/// In-place weak biharmonic `lap(lap(f))` with DSS after each Laplacian —
/// the paper's `biharmonic_dp3d` kernel when applied to `dp3d`.
pub fn biharmonic_fields(ops: &[ElemOps], dss: &mut Dss, nlev: usize, fields: &mut [Vec<f64>]) {
    laplace_fields(ops, dss, nlev, fields);
    laplace_fields(ops, dss, nlev, fields);
}

/// In-place vector Laplacian with DSS for `(u, v)` per level.
pub fn vlaplace_fields(
    ops: &[ElemOps],
    dss: &mut Dss,
    nlev: usize,
    u: &mut [Vec<f64>],
    v: &mut [Vec<f64>],
) {
    for (e, op) in ops.iter().enumerate() {
        for k in 0..nlev {
            let r = k * NPTS..(k + 1) * NPTS;
            let mut lu = [0.0; NPTS];
            let mut lv = [0.0; NPTS];
            op.vlaplace_sphere(&u[e][r.clone()], &v[e][r.clone()], &mut lu, &mut lv);
            u[e][r.clone()].copy_from_slice(&lu);
            v[e][r].copy_from_slice(&lv);
        }
    }
    dss.apply(u, nlev);
    dss.apply(v, nlev);
}

/// Flat-arena `lap(f)` with DSS: `field` is one `[nelem][nlev][NPTS]`
/// buffer (the state-arena layout). Element Laplacians run across the
/// scheduler's workers; the DSS is the serial synchronization point.
/// Identical arithmetic to [`laplace_fields`], allocation-free.
pub fn laplace_flat(
    ops: &[ElemOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    field: &mut [f64],
) {
    let fl = nlev * NPTS;
    {
        let arena = ArenaMut::new(field);
        sched.run(ops.len(), &|_w, e| {
            // Disjoint per-element window of the arena.
            let f = unsafe { arena.slice(e * fl, fl) };
            for k in 0..nlev {
                let r = k * NPTS..(k + 1) * NPTS;
                let mut lap = [0.0; NPTS];
                ops[e].laplace_sphere_wk(&f[r.clone()], &mut lap);
                f[r].copy_from_slice(&lap);
            }
        });
    }
    dss.apply_flat(field, nlev);
}

/// Flat-arena weak biharmonic `lap(lap(f))` with DSS after each Laplacian.
pub fn biharmonic_flat(
    ops: &[ElemOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    field: &mut [f64],
) {
    laplace_flat(ops, dss, sched, nlev, field);
    laplace_flat(ops, dss, sched, nlev, field);
}

/// Flat-arena vector Laplacian with DSS for `(u, v)` per level.
pub fn vlaplace_flat(
    ops: &[ElemOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    u: &mut [f64],
    v: &mut [f64],
) {
    let fl = nlev * NPTS;
    {
        let au = ArenaMut::new(u);
        let av = ArenaMut::new(v);
        sched.run(ops.len(), &|_w, e| {
            let ue = unsafe { au.slice(e * fl, fl) };
            let ve = unsafe { av.slice(e * fl, fl) };
            for k in 0..nlev {
                let r = k * NPTS..(k + 1) * NPTS;
                let mut lu = [0.0; NPTS];
                let mut lv = [0.0; NPTS];
                ops[e].vlaplace_sphere(&ue[r.clone()], &ve[r.clone()], &mut lu, &mut lv);
                ue[r.clone()].copy_from_slice(&lu);
                ve[r].copy_from_slice(&lv);
            }
        });
    }
    dss.apply_flat(u, nlev);
    dss.apply_flat(v, nlev);
}

/// Blocked flat-arena `lap(f)` with DSS — the 4-wide image of
/// [`laplace_flat`], bitwise identical to it.
pub fn laplace_flat_blocked(
    bops: &[BlockedOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    field: &mut [f64],
) {
    let fl = nlev * NPTS;
    {
        let arena = ArenaMut::new(field);
        sched.run(bops.len(), &|_w, e| {
            // Disjoint per-element window of the arena.
            let f = unsafe { arena.slice(e * fl, fl) };
            laplace_levels_blocked(&bops[e], nlev, f);
        });
    }
    dss.apply_flat(field, nlev);
}

/// Blocked flat-arena weak biharmonic with DSS after each Laplacian.
pub fn biharmonic_flat_blocked(
    bops: &[BlockedOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    field: &mut [f64],
) {
    laplace_flat_blocked(bops, dss, sched, nlev, field);
    laplace_flat_blocked(bops, dss, sched, nlev, field);
}

/// Blocked flat-arena vector Laplacian with DSS for `(u, v)` per level.
pub fn vlaplace_flat_blocked(
    bops: &[BlockedOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    u: &mut [f64],
    v: &mut [f64],
) {
    let fl = nlev * NPTS;
    {
        let au = ArenaMut::new(u);
        let av = ArenaMut::new(v);
        sched.run(bops.len(), &|_w, e| {
            let ue = unsafe { au.slice(e * fl, fl) };
            let ve = unsafe { av.slice(e * fl, fl) };
            vlaplace_levels_blocked(&bops[e], nlev, ue, ve);
        });
    }
    dss.apply_flat(u, nlev);
    dss.apply_flat(v, nlev);
}

/// Dispatch `lap(f)` to the scalar or blocked flat path.
#[allow(clippy::too_many_arguments)]
pub fn laplace_flat_path(
    path: KernelPath,
    ops: &[ElemOps],
    bops: &[BlockedOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    field: &mut [f64],
) {
    match path {
        KernelPath::Scalar => laplace_flat(ops, dss, sched, nlev, field),
        KernelPath::Blocked => laplace_flat_blocked(bops, dss, sched, nlev, field),
    }
}

/// Dispatch the weak biharmonic to the scalar or blocked flat path.
#[allow(clippy::too_many_arguments)]
pub fn biharmonic_flat_path(
    path: KernelPath,
    ops: &[ElemOps],
    bops: &[BlockedOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    field: &mut [f64],
) {
    match path {
        KernelPath::Scalar => biharmonic_flat(ops, dss, sched, nlev, field),
        KernelPath::Blocked => biharmonic_flat_blocked(bops, dss, sched, nlev, field),
    }
}

/// Dispatch the vector Laplacian to the scalar or blocked flat path.
#[allow(clippy::too_many_arguments)]
pub fn vlaplace_flat_path(
    path: KernelPath,
    ops: &[ElemOps],
    bops: &[BlockedOps],
    dss: &mut Dss,
    sched: &ElemScheduler,
    nlev: usize,
    u: &mut [f64],
    v: &mut [f64],
) {
    match path {
        KernelPath::Scalar => vlaplace_flat(ops, dss, sched, nlev, u, v),
        KernelPath::Blocked => vlaplace_flat_blocked(bops, dss, sched, nlev, u, v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deriv::build_ops;
    use cubesphere::CubedSphere;

    fn field_of(grid: &CubedSphere, f: impl Fn(f64, f64) -> f64) -> Vec<Vec<f64>> {
        grid.elements
            .iter()
            .map(|el| el.metric.iter().map(|m| f(m.lat, m.lon)).collect())
            .collect()
    }

    #[test]
    fn laplace_of_constant_is_zero() {
        let grid = CubedSphere::new(3);
        let ops = build_ops(&grid);
        let mut dss = Dss::new(&grid);
        let mut fields = field_of(&grid, |_, _| 4.2);
        laplace_fields(&ops, &mut dss, 1, &mut fields);
        for f in &fields {
            for &x in f {
                assert!(x.abs() < 1e-15);
            }
        }
    }

    #[test]
    fn laplacian_conserves_the_global_integral() {
        // integral of lap(f) over the closed sphere is zero.
        let grid = CubedSphere::new(4);
        let ops = build_ops(&grid);
        let mut dss = Dss::new(&grid);
        let mut fields = field_of(&grid, |lat, lon| lat.sin() * (2.0 * lon).cos() + 0.3);
        laplace_fields(&ops, &mut dss, 1, &mut fields);
        let integral = grid.global_integral(&fields);
        let area = grid.total_area();
        assert!(
            (integral / area).abs() < 1e-15,
            "mean of lap = {}",
            integral / area
        );
    }

    #[test]
    fn biharmonic_damps_high_wavenumbers_more() {
        // lap^2 of Y_l scales as (l(l+1)/a^2)^2: the l=4 harmonic must come
        // back with a much larger amplitude ratio than l=1.
        let grid = CubedSphere::new(6);
        let ops = build_ops(&grid);
        let mut dss = Dss::new(&grid);
        let mut ratio = |l: i32| -> f64 {
            let f = |lat: f64, lon: f64| (l as f64 * lon).cos() * lat.cos().powi(l);
            let mut fields = field_of(&grid, f);
            let before: f64 =
                fields.iter().flat_map(|v| v.iter()).map(|x| x * x).sum::<f64>().sqrt();
            biharmonic_fields(&ops, &mut dss, 1, &mut fields);
            let after: f64 =
                fields.iter().flat_map(|v| v.iter()).map(|x| x * x).sum::<f64>().sqrt();
            after / before
        };
        let r1 = ratio(1);
        let r4 = ratio(4);
        // (4*5 / 1*2)^2 = 100; allow generous slack for the cos^l proxy.
        assert!(r4 > 20.0 * r1, "r1 = {r1}, r4 = {r4}");
    }

    #[test]
    fn flat_operators_match_per_element_operators() {
        let grid = CubedSphere::new(3);
        let ops = build_ops(&grid);
        let mut dss = Dss::new(&grid);
        let sched = ElemScheduler::new(4);
        let nlev = 2;
        let per_elem: Vec<Vec<f64>> = grid
            .elements
            .iter()
            .enumerate()
            .map(|(e, el)| {
                (0..nlev)
                    .flat_map(|k| {
                        el.metric
                            .iter()
                            .map(move |m| (m.lat * (k + 1) as f64).sin() * m.lon.cos() + e as f64 * 1e-3)
                            .collect::<Vec<_>>()
                    })
                    .collect()
            })
            .collect();
        let flat0: Vec<f64> = per_elem.iter().flatten().copied().collect();

        let mut a = per_elem.clone();
        let mut b = flat0.clone();
        biharmonic_fields(&ops, &mut dss, nlev, &mut a);
        biharmonic_flat(&ops, &mut dss, &sched, nlev, &mut b);
        for (e, ae) in a.iter().enumerate() {
            assert_eq!(ae.as_slice(), &b[e * nlev * NPTS..(e + 1) * nlev * NPTS], "biharm e={e}");
        }

        let mut u1 = per_elem.clone();
        let mut v1: Vec<Vec<f64>> = per_elem.iter().map(|f| f.iter().map(|x| -x).collect()).collect();
        let mut u2 = flat0.clone();
        let mut v2: Vec<f64> = flat0.iter().map(|x| -x).collect();
        vlaplace_fields(&ops, &mut dss, nlev, &mut u1, &mut v1);
        vlaplace_flat(&ops, &mut dss, &sched, nlev, &mut u2, &mut v2);
        for (e, (ue, ve)) in u1.iter().zip(&v1).enumerate() {
            assert_eq!(ue.as_slice(), &u2[e * nlev * NPTS..(e + 1) * nlev * NPTS], "vlap u e={e}");
            assert_eq!(ve.as_slice(), &v2[e * nlev * NPTS..(e + 1) * nlev * NPTS], "vlap v e={e}");
        }
    }

    #[test]
    fn config_scaling_matches_cam() {
        let ne30 = HypervisConfig::for_ne(30);
        assert!((ne30.nu - 1.0e15).abs() < 1e9);
        let ne120 = HypervisConfig::for_ne(120);
        // (30/120)^3.2 ~ 0.0117.
        assert!((ne120.nu / 1.0e15 - 0.25f64.powf(3.2)).abs() < 1e-6);
        assert!(ne120.nu < ne30.nu);
        let off = HypervisConfig::off();
        assert_eq!(off.nu, 0.0);
    }

    #[test]
    fn vlaplace_of_rigid_rotation_is_small_and_tangent() {
        // Rigid rotation u = U cos(lat) is an l=1 vector harmonic:
        // vlap(v) = -2 v / a^2 (for the rotational part). Check magnitude.
        use cubesphere::EARTH_RADIUS;
        let grid = CubedSphere::new(6);
        let ops = build_ops(&grid);
        let mut dss = Dss::new(&grid);
        let uu = 10.0;
        let mut u = field_of(&grid, |lat, _| uu * lat.cos());
        let mut v = field_of(&grid, |_, _| 0.0);
        vlaplace_fields(&ops, &mut dss, 1, &mut u, &mut v);
        let scale = 2.0 * uu / (EARTH_RADIUS * EARTH_RADIUS);
        for (el, (ue, _ve)) in grid.elements.iter().zip(u.iter().zip(&v)) {
            for p in 0..NPTS {
                let expect = -2.0 * uu * el.metric[p].lat.cos() / (EARTH_RADIUS * EARTH_RADIUS);
                assert!(
                    (ue[p] - expect).abs() < 0.1 * scale,
                    "{} vs {expect}",
                    ue[p]
                );
            }
        }
    }
}
