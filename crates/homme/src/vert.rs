//! Hybrid pressure vertical coordinate.
//!
//! CAM-SE uses a terrain-following hybrid coordinate: interface pressures
//! are `p(k) = hyai(k) p0 + hybi(k) ps`. The dynamical core is *vertically
//! Lagrangian* — layer pressure thicknesses `dp3d` evolve freely during a
//! dynamics step and are remapped back to these reference levels by
//! `vertical_remap` (the Table 1 kernel). The paper's experiments run 128
//! layers; the reproduction keeps the layer count configurable.

use cubesphere::consts::P0;

/// Hybrid-coordinate coefficient tables.
#[derive(Debug, Clone, PartialEq)]
pub struct VertCoord {
    /// Number of layers.
    pub nlev: usize,
    /// Interface `A` coefficients, length `nlev + 1`, `hyai[0]` at the top.
    pub hyai: Vec<f64>,
    /// Interface `B` coefficients, length `nlev + 1`.
    pub hybi: Vec<f64>,
    /// Midpoint `A` coefficients, length `nlev`.
    pub hyam: Vec<f64>,
    /// Midpoint `B` coefficients, length `nlev`.
    pub hybm: Vec<f64>,
}

impl VertCoord {
    /// Standard table: model top at `ptop`, pure sigma at the surface,
    /// transitioning linearly in between (`A(eta) = eta_top (1 - s)`,
    /// `B(eta) = s` with `s` uniform in [0, 1]).
    ///
    /// # Panics
    /// Panics if `nlev == 0` or `ptop` is not in `(0, P0)`.
    pub fn standard(nlev: usize, ptop: f64) -> Self {
        assert!(nlev > 0, "nlev must be positive");
        assert!(ptop > 0.0 && ptop < P0, "ptop {ptop} out of range");
        let eta_top = ptop / P0;
        let mut hyai = Vec::with_capacity(nlev + 1);
        let mut hybi = Vec::with_capacity(nlev + 1);
        for i in 0..=nlev {
            let s = i as f64 / nlev as f64;
            hyai.push(eta_top * (1.0 - s));
            hybi.push(s);
        }
        let hyam = (0..nlev).map(|k| 0.5 * (hyai[k] + hyai[k + 1])).collect();
        let hybm = (0..nlev).map(|k| 0.5 * (hybi[k] + hybi[k + 1])).collect();
        VertCoord { nlev, hyai, hybi, hyam, hybm }
    }

    /// Model-top pressure, Pa.
    #[inline]
    pub fn ptop(&self) -> f64 {
        self.hyai[0] * P0
    }

    /// Interface pressure `k` (0 = top, `nlev` = surface) for surface
    /// pressure `ps`.
    #[inline]
    pub fn p_int(&self, k: usize, ps: f64) -> f64 {
        self.hyai[k] * P0 + self.hybi[k] * ps
    }

    /// Midpoint pressure of layer `k` for surface pressure `ps`.
    #[inline]
    pub fn p_mid(&self, k: usize, ps: f64) -> f64 {
        self.hyam[k] * P0 + self.hybm[k] * ps
    }

    /// Reference layer thickness `dp(k)` for surface pressure `ps`.
    #[inline]
    pub fn dp_ref(&self, k: usize, ps: f64) -> f64 {
        (self.hyai[k + 1] - self.hyai[k]) * P0 + (self.hybi[k + 1] - self.hybi[k]) * ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_conditions() {
        let v = VertCoord::standard(30, 500.0);
        assert!((v.ptop() - 500.0).abs() < 1e-9);
        // Top interface: pure A; surface interface: pure B.
        assert!((v.p_int(0, 98_000.0) - 500.0).abs() < 1e-9);
        assert!((v.p_int(30, 98_000.0) - 98_000.0).abs() < 1e-9);
    }

    #[test]
    fn thicknesses_sum_to_column() {
        let v = VertCoord::standard(20, 200.0);
        for &ps in &[90_000.0, 100_000.0, 103_000.0] {
            let total: f64 = (0..20).map(|k| v.dp_ref(k, ps)).sum();
            assert!((total - (ps - v.ptop())).abs() < 1e-6, "ps={ps}: {total}");
        }
    }

    #[test]
    fn interfaces_monotone_and_midpoints_between() {
        let v = VertCoord::standard(16, 300.0);
        let ps = 101_325.0;
        for k in 0..16 {
            assert!(v.p_int(k, ps) < v.p_int(k + 1, ps));
            assert!(v.p_mid(k, ps) > v.p_int(k, ps));
            assert!(v.p_mid(k, ps) < v.p_int(k + 1, ps));
            assert!(v.dp_ref(k, ps) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_ptop() {
        let _ = VertCoord::standard(10, 200_000.0);
    }
}
