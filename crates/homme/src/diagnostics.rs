//! Global conservation diagnostics: the quantities CAM's `check_energy`
//! machinery tracks each step, computed from the spectral-element state
//! with the same quadrature the dycore uses.

use crate::prim::Dycore;
use crate::state::State;
use cubesphere::consts::{CP, GRAV};
use cubesphere::NPTS;

/// One snapshot of the global budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budgets {
    /// Dry-air mass, `integral(sum_k dp) dA / g`, kg.
    pub dry_mass: f64,
    /// Total energy `integral((cp T + 0.5 (u^2+v^2)) dp) dA / g`, J.
    pub total_energy: f64,
    /// Kinetic part of `total_energy`, J.
    pub kinetic_energy: f64,
    /// Relative enstrophy `0.5 integral(zeta^2) dA` of the lowest layer,
    /// 1/s^2 m^2 (a turbulence-cascade diagnostic).
    pub enstrophy: f64,
    /// Mass of tracer 0 (water vapour when moist), kg.
    pub tracer_mass: f64,
}

/// Compute the budgets of `state` on `dy`'s grid.
pub fn budgets(dy: &Dycore, state: &State) -> Budgets {
    let nlev = dy.dims.nlev;
    let nelem = state.nelem();
    let mut dry = vec![vec![0.0; NPTS]; nelem];
    let mut te = vec![vec![0.0; NPTS]; nelem];
    let mut ke = vec![vec![0.0; NPTS]; nelem];
    let mut qm = vec![vec![0.0; NPTS]; nelem];
    let mut ens = vec![vec![0.0; NPTS]; nelem];

    for (e, es) in state.elems().enumerate() {
        for p in 0..NPTS {
            let mut col_dp = 0.0;
            let mut col_te = 0.0;
            let mut col_ke = 0.0;
            let mut col_q = 0.0;
            for k in 0..nlev {
                let i = k * NPTS + p;
                let dp = es.dp3d[i];
                let kin = 0.5 * (es.u[i] * es.u[i] + es.v[i] * es.v[i]);
                col_dp += dp;
                col_ke += kin * dp;
                col_te += (CP * es.t[i] + kin) * dp;
                if dy.dims.qsize > 0 {
                    col_q += es.qdp[i];
                }
            }
            dry[e][p] = col_dp / GRAV;
            te[e][p] = col_te / GRAV;
            ke[e][p] = col_ke / GRAV;
            qm[e][p] = col_q / GRAV;
        }
        // Lowest-layer relative vorticity for the enstrophy diagnostic.
        let r = (nlev - 1) * NPTS..nlev * NPTS;
        let mut vort = [0.0; NPTS];
        dy.ops[e].vorticity_sphere(&es.u[r.clone()], &es.v[r], &mut vort);
        for p in 0..NPTS {
            ens[e][p] = 0.5 * vort[p] * vort[p];
        }
    }

    Budgets {
        dry_mass: dy.grid.global_integral(&dry),
        total_energy: dy.grid.global_integral(&te),
        kinetic_energy: dy.grid.global_integral(&ke),
        enstrophy: dy.grid.global_integral(&ens),
        tracer_mass: dy.grid.global_integral(&qm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervis::HypervisConfig;
    use crate::prim::DycoreConfig;
    use crate::state::Dims;
    use cubesphere::consts::P0;

    fn test_model() -> (Dycore, State) {
        let dims = Dims { nlev: 6, qsize: 1 };
        let cfg = DycoreConfig {
            dt: 300.0,
            hypervis: HypervisConfig::for_ne(3),
            limiter: true,
            rsplit: 1,
        };
        let dy = Dycore::new(3, dims, 2000.0, cfg);
        let mut st = dy.zero_state();
        let elems = dy.grid.elements.clone();
        let vert = dy.rhs.vert.clone();
        for (es, el) in st.elems_mut().zip(&elems) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                for k in 0..6 {
                    let i = k * NPTS + p;
                    es.u[i] = 15.0 * lat.cos();
                    es.t[i] = 280.0 + 3.0 * lat.cos();
                    es.dp3d[i] = vert.dp_ref(k, P0);
                    es.qdp[i] = 0.008 * es.dp3d[i];
                }
            }
        }
        (dy, st)
    }

    #[test]
    fn budgets_have_physical_magnitudes() {
        let (dy, st) = test_model();
        let b = budgets(&dy, &st);
        // Earth's atmosphere: ~5.2e18 kg of dry air.
        assert!(b.dry_mass > 4.5e18 && b.dry_mass < 6.0e18, "mass {}", b.dry_mass);
        // Thermal energy dominates: cp T ~ 2.8e5 J/kg x 5e18 kg ~ 1.4e24 J.
        assert!(b.total_energy > 1.0e24 && b.total_energy < 2.0e24);
        assert!(b.kinetic_energy > 0.0 && b.kinetic_energy < 1e-3 * b.total_energy);
        assert!(b.enstrophy > 0.0);
        assert!((b.tracer_mass / b.dry_mass - 0.008).abs() < 1e-4);
    }

    #[test]
    fn budgets_evolve_sensibly_under_stepping() {
        let (mut dy, mut st) = test_model();
        let b0 = budgets(&dy, &st);
        for _ in 0..5 {
            dy.step(&mut st);
        }
        let b1 = budgets(&dy, &st);
        // Mass and tracer mass conserved tightly.
        assert!(((b1.dry_mass - b0.dry_mass) / b0.dry_mass).abs() < 1e-11);
        assert!(((b1.tracer_mass - b0.tracer_mass) / b0.tracer_mass).abs() < 1e-11);
        // Total energy bounded (the explicit dycore is not exactly
        // energy-conserving, but five steps must not move it measurably).
        assert!(((b1.total_energy - b0.total_energy) / b0.total_energy).abs() < 1e-4);
        // Hyperviscosity dissipates kinetic energy monotonically for this
        // smooth state (no forcing).
        assert!(b1.kinetic_energy < b0.kinetic_energy * 1.01);
    }
}
