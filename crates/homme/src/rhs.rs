//! `compute_and_apply_rhs`: the right-hand side of the hydrostatic
//! primitive equations in vector-invariant form.
//!
//! Per element and per Runge–Kutta stage this kernel:
//!
//! 1. scans the column for interface/midpoint pressures
//!    (`p(k) = p(k-1) + dp(k)` — the dependency chain the paper
//!    parallelizes with register communication, Section 7.4/Figure 2);
//! 2. integrates the hydrostatic equation upward for the geopotential
//!    (a second scan);
//! 3. evaluates horizontal gradients, vorticity and flux divergences;
//! 4. accumulates the `(u, v, T, dp3d)` tendencies.
//!
//! The caller applies the tendencies (`state += dt * tend`) and performs the
//! DSS — "compute the RHS, accumulate into velocity and apply DSS"
//! (Table 1). Column temporaries live in a caller-owned [`RhsScratch`] so
//! steady-state evaluation allocates nothing (one scratch per scheduler
//! worker in the parallel driver).

use crate::deriv::ElemOps;
use crate::kernels::blocked::load_rows;
use crate::state::{Dims, ElemRef};
use crate::vert::VertCoord;
use cubesphere::consts::{CP, RD};
use cubesphere::{NP, NPTS};
use sw26010::V4F64;

/// Tendencies of one element's prognostic dynamics fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemTend {
    /// du/dt, `[nlev][NPTS]`.
    pub u: Vec<f64>,
    /// dv/dt.
    pub v: Vec<f64>,
    /// dT/dt.
    pub t: Vec<f64>,
    /// d(dp3d)/dt.
    pub dp3d: Vec<f64>,
}

impl ElemTend {
    /// Zero tendency container.
    pub fn zeros(dims: Dims) -> Self {
        let n = dims.field_len();
        ElemTend { u: vec![0.0; n], v: vec![0.0; n], t: vec![0.0; n], dp3d: vec![0.0; n] }
    }
}

/// Reusable column temporaries for one RHS evaluation. Every buffer is
/// fully overwritten by [`element_rhs_raw`], so a scratch can be reused
/// across elements and steps without re-zeroing.
#[derive(Debug, Clone)]
pub struct RhsScratch {
    /// Interface pressures, `[nlev+1][NPTS]`.
    pub p_int: Vec<f64>,
    /// Midpoint pressures, `[nlev][NPTS]`.
    pub p_mid: Vec<f64>,
    /// Midpoint geopotential, `[nlev][NPTS]`.
    pub phi_mid: Vec<f64>,
    /// `div(v dp)` per level, `[nlev][NPTS]`.
    pub divdp: Vec<f64>,
    /// `v . grad p` per level, `[nlev][NPTS]`.
    pub vgrad_p: Vec<f64>,
    /// `omega / p` per level, `[nlev][NPTS]`.
    pub omega_p: Vec<f64>,
}

impl RhsScratch {
    /// Scratch sized for `nlev` layers.
    pub fn new(nlev: usize) -> Self {
        RhsScratch {
            p_int: vec![0.0; (nlev + 1) * NPTS],
            p_mid: vec![0.0; nlev * NPTS],
            phi_mid: vec![0.0; nlev * NPTS],
            divdp: vec![0.0; nlev * NPTS],
            vgrad_p: vec![0.0; nlev * NPTS],
            omega_p: vec![0.0; nlev * NPTS],
        }
    }
}

/// Column scan: interface and midpoint pressures from layer thicknesses.
///
/// `dp` is `[nlev][NPTS]`; `p_int` gets `[nlev+1][NPTS]`, `p_mid`
/// `[nlev][NPTS]`. This is the sequential reference for the paper's
/// three-stage register-communication scan.
pub fn pressure_scan(nlev: usize, ptop: f64, dp: &[f64], p_int: &mut [f64], p_mid: &mut [f64]) {
    debug_assert_eq!(dp.len(), nlev * NPTS);
    debug_assert_eq!(p_int.len(), (nlev + 1) * NPTS);
    debug_assert_eq!(p_mid.len(), nlev * NPTS);
    for p in 0..NPTS {
        p_int[p] = ptop;
    }
    for k in 0..nlev {
        for p in 0..NPTS {
            let below = p_int[k * NPTS + p] + dp[k * NPTS + p];
            p_int[(k + 1) * NPTS + p] = below;
            p_mid[k * NPTS + p] = p_int[k * NPTS + p] + 0.5 * dp[k * NPTS + p];
        }
    }
}

/// Blocked pressure scan, structured as the host form of the paper's
/// three-stage scan (§6.3): per level-tile, (1) a bounds-check-free load of
/// the 16-lane thickness row, (2) the sequential partial-sum chain with the
/// carry resident in one 16-lane register tile across the whole column, and
/// (3) the fix-up stores of the interface/midpoint rows. The carry chain is
/// deliberately *not* reassociated across levels — the paper's CPE scan
/// trades bit-reproducibility for parallelism, but this layer's contract is
/// bitwise identity with [`pressure_scan`], so the win comes from the
/// register-resident carry and the elided bounds checks (the earlier
/// 4-wide-struct formulation lost to the scalar loop's autovectorization).
pub fn pressure_scan_blocked(
    nlev: usize,
    ptop: f64,
    dp: &[f64],
    p_int: &mut [f64],
    p_mid: &mut [f64],
) {
    debug_assert_eq!(dp.len(), nlev * NPTS);
    debug_assert_eq!(p_int.len(), (nlev + 1) * NPTS);
    debug_assert_eq!(p_mid.len(), nlev * NPTS);
    let mut carry = [ptop; NPTS];
    p_int[..NPTS].copy_from_slice(&carry);
    for ((dpk, pik), pmk) in dp
        .chunks_exact(NPTS)
        .zip(p_int[NPTS..].chunks_exact_mut(NPTS))
        .zip(p_mid.chunks_exact_mut(NPTS))
    {
        for p in 0..NPTS {
            // Midpoint before the carry update: `p_int[k] + 0.5*dp`, then
            // `p_int[k+1] = p_int[k] + dp` — the scalar scan's exact order.
            pmk[p] = carry[p] + 0.5 * dpk[p];
            carry[p] += dpk[p];
        }
        pik.copy_from_slice(&carry);
    }
}

/// Reverse column scan: hydrostatic geopotential at layer midpoints.
///
/// `phi_mid(k) = phis + sum_{l>k} Rd T(l) ln(p_int(l+1)/p_int(l))
///             + Rd T(k) ln(p_int(k+1)/p_mid(k))`.
pub fn geopotential_scan(
    nlev: usize,
    phis: &[f64],
    t: &[f64],
    p_int: &[f64],
    p_mid: &[f64],
    phi_mid: &mut [f64],
) {
    debug_assert_eq!(phis.len(), NPTS);
    let mut phi_below = [0.0; NPTS];
    phi_below.copy_from_slice(phis);
    for k in (0..nlev).rev() {
        for p in 0..NPTS {
            let i = k * NPTS + p;
            let tk = t[i];
            phi_mid[i] = phi_below[p] + RD * tk * (p_int[(k + 1) * NPTS + p] / p_mid[i]).ln();
            phi_below[p] += RD * tk * (p_int[(k + 1) * NPTS + p] / p_int[k * NPTS + p]).ln();
        }
    }
}

/// Blocked geopotential scan: the running `phi_below` accumulator lives in
/// four row registers across the reverse sweep. Bitwise identical to
/// [`geopotential_scan`] (the shared `Rd T` product is computed once; IEEE
/// evaluation of the identical expression yields identical bits).
pub fn geopotential_scan_blocked(
    nlev: usize,
    phis: &[f64],
    t: &[f64],
    p_int: &[f64],
    p_mid: &[f64],
    phi_mid: &mut [f64],
) {
    debug_assert_eq!(phis.len(), NPTS);
    let rd = V4F64::splat(RD);
    let mut phi_below = load_rows(phis);
    for k in (0..nlev).rev() {
        let o = k * NPTS;
        let tr = load_rows(&t[o..]);
        let pm = load_rows(&p_mid[o..]);
        let pi_k = load_rows(&p_int[o..]);
        let pi_next = load_rows(&p_int[o + NPTS..]);
        for r in 0..NP {
            let rdt = rd * tr[r];
            (phi_below[r] + rdt * (pi_next[r] / pm[r]).ln()).store(&mut phi_mid[o + r * NP..]);
            phi_below[r] = phi_below[r] + rdt * (pi_next[r] / pi_k[r]).ln();
        }
    }
}

/// The RHS evaluator (owns the vertical coordinate).
#[derive(Debug, Clone)]
pub struct Rhs {
    /// Vertical coordinate tables.
    pub vert: VertCoord,
    /// Problem dimensions.
    pub dims: Dims,
}

impl Rhs {
    /// Construct; `vert.nlev` must match `dims.nlev`.
    pub fn new(vert: VertCoord, dims: Dims) -> Self {
        assert_eq!(vert.nlev, dims.nlev, "vertical tables disagree with dims");
        Rhs { vert, dims }
    }

    /// Evaluate the dynamics tendencies of one element into `tend`.
    pub fn element_tend(
        &self,
        op: &ElemOps,
        es: ElemRef<'_>,
        tend: &mut ElemTend,
        scratch: &mut RhsScratch,
    ) {
        element_rhs_raw(
            op,
            self.dims.nlev,
            self.vert.ptop(),
            es.u,
            es.v,
            es.t,
            es.dp3d,
            es.phis,
            &mut tend.u,
            &mut tend.v,
            &mut tend.t,
            &mut tend.dp3d,
            scratch,
        );
    }
}

/// The raw `compute_and_apply_rhs` math on flat `[nlev][NPTS]` slices —
/// shared by the dycore driver and every kernel variant. All column
/// temporaries come from `scratch`; nothing is allocated.
#[allow(clippy::too_many_arguments)]
pub fn element_rhs_raw(
    op: &ElemOps,
    nlev: usize,
    ptop: f64,
    es_u: &[f64],
    es_v: &[f64],
    es_t: &[f64],
    es_dp3d: &[f64],
    es_phis: &[f64],
    tend_u: &mut [f64],
    tend_v: &mut [f64],
    tend_t: &mut [f64],
    tend_dp3d: &mut [f64],
    scratch: &mut RhsScratch,
) {
    // --- column scans -------------------------------------------------
    let RhsScratch { p_int, p_mid, phi_mid, divdp, vgrad_p, omega_p } = scratch;
    pressure_scan(nlev, ptop, es_dp3d, p_int, p_mid);
    geopotential_scan(nlev, es_phis, es_t, p_int, p_mid, phi_mid);

    // --- per-level horizontal operators -------------------------------
    // div(v dp) per level, needed by the omega scan and the dp tendency.
    for k in 0..nlev {
        let r = k * NPTS..(k + 1) * NPTS;
        let u = &es_u[r.clone()];
        let v = &es_v[r.clone()];
        let dp = &es_dp3d[r.clone()];
        let mut udp = [0.0; NPTS];
        let mut vdp = [0.0; NPTS];
        for p in 0..NPTS {
            udp[p] = u[p] * dp[p];
            vdp[p] = v[p] * dp[p];
        }
        let mut div = [0.0; NPTS];
        op.divergence_sphere(&udp, &vdp, &mut div);
        divdp[r.clone()].copy_from_slice(&div);

        let mut gpx = [0.0; NPTS];
        let mut gpy = [0.0; NPTS];
        op.gradient_sphere(&p_mid[r.clone()], &mut gpx, &mut gpy);
        for p in 0..NPTS {
            vgrad_p[k * NPTS + p] = u[p] * gpx[p] + v[p] * gpy[p];
        }
    }

    // --- omega/p scan --------------------------------------------------
    // omega/p(k) = (vgrad_p(k) - sum_{l<k} divdp(l) - 0.5 divdp(k)) / pmid(k)
    let mut acc = [0.0; NPTS];
    for k in 0..nlev {
        for p in 0..NPTS {
            let i = k * NPTS + p;
            omega_p[i] = (vgrad_p[i] - acc[p] - 0.5 * divdp[i]) / p_mid[i];
            acc[p] += divdp[i];
        }
    }

    // --- tendencies -----------------------------------------------------
    let kappa = RD / CP;
    for k in 0..nlev {
        let r = k * NPTS..(k + 1) * NPTS;
        let u = &es_u[r.clone()];
        let v = &es_v[r.clone()];
        let t = &es_t[r.clone()];

        let mut vort = [0.0; NPTS];
        op.vorticity_sphere(u, v, &mut vort);

        // Energy E = phi + KE; grad E.
        let mut energy = [0.0; NPTS];
        for p in 0..NPTS {
            energy[p] = phi_mid[k * NPTS + p] + 0.5 * (u[p] * u[p] + v[p] * v[p]);
        }
        let mut gex = [0.0; NPTS];
        let mut gey = [0.0; NPTS];
        op.gradient_sphere(&energy, &mut gex, &mut gey);

        let mut gpx = [0.0; NPTS];
        let mut gpy = [0.0; NPTS];
        op.gradient_sphere(&p_mid[r.clone()], &mut gpx, &mut gpy);

        let mut gtx = [0.0; NPTS];
        let mut gty = [0.0; NPTS];
        op.gradient_sphere(t, &mut gtx, &mut gty);

        for p in 0..NPTS {
            let i = k * NPTS + p;
            let abs_vort = op.fcor[p] + vort[p];
            let rtp = RD * t[p] / p_mid[i];
            tend_u[i] = abs_vort * v[p] - gex[p] - rtp * gpx[p];
            tend_v[i] = -abs_vort * u[p] - gey[p] - rtp * gpy[p];
            tend_t[i] = -(u[p] * gtx[p] + v[p] * gty[p]) + kappa * t[p] * omega_p[i];
            tend_dp3d[i] = -divdp[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deriv::build_ops;
    use crate::state::State;
    use cubesphere::consts::{EARTH_RADIUS, OMEGA, P0};
    use cubesphere::CubedSphere;

    fn resting_isothermal(grid: &CubedSphere, vert: &VertCoord, dims: Dims) -> State {
        let mut st = State::zeros(dims, grid.nelem());
        for es in st.elems_mut() {
            for k in 0..dims.nlev {
                for p in 0..NPTS {
                    es.t[dims.at(k, p)] = 300.0;
                    es.dp3d[dims.at(k, p)] = vert.dp_ref(k, P0);
                }
            }
        }
        st
    }

    #[test]
    fn pressure_scan_matches_direct_sum() {
        let nlev = 8;
        let dp: Vec<f64> = (0..nlev * NPTS).map(|i| 100.0 + (i % 7) as f64).collect();
        let mut p_int = vec![0.0; (nlev + 1) * NPTS];
        let mut p_mid = vec![0.0; nlev * NPTS];
        pressure_scan(nlev, 50.0, &dp, &mut p_int, &mut p_mid);
        for p in 0..NPTS {
            let mut acc = 50.0;
            for k in 0..nlev {
                assert!((p_int[k * NPTS + p] - acc).abs() < 1e-12);
                assert!((p_mid[k * NPTS + p] - (acc + 0.5 * dp[k * NPTS + p])).abs() < 1e-12);
                acc += dp[k * NPTS + p];
            }
            assert!((p_int[nlev * NPTS + p] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn blocked_scans_match_scalar_scans_bitwise() {
        for nlev in [1usize, 3, 26, 128] {
            let dp: Vec<f64> =
                (0..nlev * NPTS).map(|i| 150.0 + 37.0 * ((i * 2654435761) % 97) as f64).collect();
            let t: Vec<f64> =
                (0..nlev * NPTS).map(|i| 230.0 + ((i * 40503) % 80) as f64).collect();
            let phis: Vec<f64> = (0..NPTS).map(|p| 11.0 * p as f64).collect();
            let ptop = 225.0;

            let mut p_int_s = vec![0.0; (nlev + 1) * NPTS];
            let mut p_mid_s = vec![0.0; nlev * NPTS];
            pressure_scan(nlev, ptop, &dp, &mut p_int_s, &mut p_mid_s);
            let mut p_int_b = vec![0.0; (nlev + 1) * NPTS];
            let mut p_mid_b = vec![0.0; nlev * NPTS];
            pressure_scan_blocked(nlev, ptop, &dp, &mut p_int_b, &mut p_mid_b);
            let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&p_int_s), bits(&p_int_b), "p_int nlev={nlev}");
            assert_eq!(bits(&p_mid_s), bits(&p_mid_b), "p_mid nlev={nlev}");

            let mut phi_s = vec![0.0; nlev * NPTS];
            geopotential_scan(nlev, &phis, &t, &p_int_s, &p_mid_s, &mut phi_s);
            let mut phi_b = vec![0.0; nlev * NPTS];
            geopotential_scan_blocked(nlev, &phis, &t, &p_int_b, &p_mid_b, &mut phi_b);
            assert_eq!(bits(&phi_s), bits(&phi_b), "phi_mid nlev={nlev}");
        }
    }

    #[test]
    fn geopotential_of_isothermal_column_is_analytic() {
        // Isothermal: phi(p) = phis + Rd T ln(ps / p).
        let nlev = 16;
        let vert = VertCoord::standard(nlev, 200.0);
        let t0 = 280.0;
        let dp: Vec<f64> = (0..nlev)
            .flat_map(|k| std::iter::repeat_n(vert.dp_ref(k, P0), NPTS))
            .collect();
        let t = vec![t0; nlev * NPTS];
        let phis = vec![123.0; NPTS];
        let mut p_int = vec![0.0; (nlev + 1) * NPTS];
        let mut p_mid = vec![0.0; nlev * NPTS];
        pressure_scan(nlev, vert.ptop(), &dp, &mut p_int, &mut p_mid);
        let mut phi = vec![0.0; nlev * NPTS];
        geopotential_scan(nlev, &phis, &t, &p_int, &p_mid, &mut phi);
        for k in 0..nlev {
            for p in 0..NPTS {
                let expect = 123.0 + RD * t0 * (P0 / p_mid[k * NPTS + p]).ln();
                let got = phi[k * NPTS + p];
                assert!(
                    (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                    "k={k}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn resting_isothermal_atmosphere_is_steady() {
        let grid = CubedSphere::new(2);
        let ops = build_ops(&grid);
        let dims = Dims { nlev: 8, qsize: 0 };
        let vert = VertCoord::standard(8, 200.0);
        let st = resting_isothermal(&grid, &vert, dims);
        let rhs = Rhs::new(vert, dims);
        let mut tend = ElemTend::zeros(dims);
        let mut scratch = RhsScratch::new(dims.nlev);
        for (e, op) in ops.iter().enumerate() {
            rhs.element_tend(op, st.elem(e), &mut tend, &mut scratch);
            for i in 0..dims.field_len() {
                assert!(tend.u[i].abs() < 1e-12, "du = {}", tend.u[i]);
                assert!(tend.v[i].abs() < 1e-12, "dv = {}", tend.v[i]);
                assert!(tend.t[i].abs() < 1e-12, "dT = {}", tend.t[i]);
                assert!(tend.dp3d[i].abs() < 1e-12, "ddp = {}", tend.dp3d[i]);
            }
        }
    }

    #[test]
    fn balanced_solid_body_rotation_has_small_residual() {
        // u = u0 cos(lat), T = T0, ps = p0 exp(-(a O u0 + u0^2/2) sin^2(lat)
        // / (Rd T0)) is an exact steady state; the discrete residual must be
        // small relative to the Coriolis term and shrink with resolution.
        let t0 = 300.0;
        let u0 = 40.0;
        let c = (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) / (RD * t0);
        let residual = |ne: usize| -> f64 {
            let grid = CubedSphere::new(ne);
            let ops = build_ops(&grid);
            let nlev = 6;
            let dims = Dims { nlev, qsize: 0 };
            let vert = VertCoord::standard(nlev, 200.0);
            let mut st = State::zeros(dims, grid.nelem());
            for (es, el) in st.elems_mut().zip(&grid.elements) {
                for p in 0..NPTS {
                    let lat = el.metric[p].lat;
                    let ps = P0 * (-c * lat.sin() * lat.sin()).exp();
                    for k in 0..nlev {
                        es.u[dims.at(k, p)] = u0 * lat.cos();
                        es.t[dims.at(k, p)] = t0;
                        es.dp3d[dims.at(k, p)] = vert.dp_ref(k, ps);
                    }
                }
            }
            let rhs = Rhs::new(vert, dims);
            let mut tend = ElemTend::zeros(dims);
            let mut scratch = RhsScratch::new(nlev);
            let mut worst: f64 = 0.0;
            for (e, op) in ops.iter().enumerate() {
                rhs.element_tend(op, st.elem(e), &mut tend, &mut scratch);
                for i in 0..dims.field_len() {
                    worst = worst.max(tend.u[i].abs().max(tend.v[i].abs()));
                }
            }
            worst
        };
        let coriolis_scale = 2.0 * OMEGA * u0; // ~ 6e-3 m/s^2
        let r4 = residual(4);
        let r8 = residual(8);
        assert!(r4 < 0.05 * coriolis_scale, "ne4 residual {r4}");
        assert!(r8 < r4 / 3.0, "no convergence: {r4} -> {r8}");
    }
}
