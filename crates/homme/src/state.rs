//! Prognostic state of the dynamical core, stored as a flat
//! structure-of-arrays arena.
//!
//! Per element, per layer, per GLL point: horizontal velocity `(u, v)`
//! (physical east/north components, m/s), temperature `T` (K), layer
//! pressure thickness `dp3d` (Pa, the vertically-Lagrangian prognostic),
//! and tracer mass `qdp = q * dp3d` (Pa kg/kg).
//!
//! Each field lives in ONE contiguous buffer covering every element:
//!
//! - 3-D fields: `[nelem][nlev][NPTS]`, flat index `(e*nlev + k)*NPTS + p`
//! - tracers:    `[nelem][qsize][nlev][NPTS]`,
//!   flat index `((e*qsize + q)*nlev + k)*NPTS + p`
//! - surface geopotential: `[nelem][NPTS]`, flat index `e*NPTS + p`
//!
//! This is the same `(e, k, p)` convention `kernels::KernelData` uses, so
//! dycore state can be handed to kernel variants without repacking. The 16
//! GLL values of one level stay contiguous — horizontal operators work on
//! 16-point slices, vertical scans stride by `NPTS` (the axis switch whose
//! cost motivates the paper's shuffle transposition, Section 7.5).
//!
//! Per-element access goes through [`ElemRef`]/[`ElemMut`] views whose
//! fields are plain slices indexed exactly like the old per-element
//! `Vec<f64>`s (`dims.at(k, p)` / `dims.atq(q, k, p)`), so inner loops are
//! unchanged by the arena layout.

use cubesphere::NPTS;

/// Problem dimensions shared by all state containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Vertical layers.
    pub nlev: usize,
    /// Number of advected tracers.
    pub qsize: usize,
}

impl Dims {
    /// Values per 3-D field per element.
    #[inline]
    pub fn field_len(&self) -> usize {
        self.nlev * NPTS
    }

    /// Values per tracer field per element.
    #[inline]
    pub fn tracer_len(&self) -> usize {
        self.qsize * self.nlev * NPTS
    }

    /// Flat index of `(k, p)` within one element's field.
    #[inline]
    pub fn at(&self, k: usize, p: usize) -> usize {
        debug_assert!(k < self.nlev && p < NPTS);
        k * NPTS + p
    }

    /// Flat index of `(q, k, p)` within one element's tracer block.
    #[inline]
    pub fn atq(&self, q: usize, k: usize, p: usize) -> usize {
        debug_assert!(q < self.qsize);
        (q * self.nlev + k) * NPTS + p
    }
}

/// Read-only view of one element's fields. Slice lengths: `u`/`v`/`t`/
/// `dp3d` are `nlev*NPTS`, `qdp` is `qsize*nlev*NPTS`, `phis` is `NPTS`.
#[derive(Debug, Clone, Copy)]
pub struct ElemRef<'a> {
    /// Eastward wind, `[nlev][NPTS]`.
    pub u: &'a [f64],
    /// Northward wind, `[nlev][NPTS]`.
    pub v: &'a [f64],
    /// Temperature, `[nlev][NPTS]`.
    pub t: &'a [f64],
    /// Layer pressure thickness, `[nlev][NPTS]`.
    pub dp3d: &'a [f64],
    /// Tracer mass, `[qsize][nlev][NPTS]`.
    pub qdp: &'a [f64],
    /// Surface geopotential (fixed), `[NPTS]`.
    pub phis: &'a [f64],
}

impl<'a> ElemRef<'a> {
    /// Diagnostic surface pressure: `ptop + sum_k dp3d`.
    pub fn surface_pressure(&self, dims: Dims, ptop: f64, p: usize) -> f64 {
        let mut ps = ptop;
        for k in 0..dims.nlev {
            ps += self.dp3d[dims.at(k, p)];
        }
        ps
    }
}

/// Mutable view of one element's fields; same layout as [`ElemRef`].
#[derive(Debug)]
pub struct ElemMut<'a> {
    /// Eastward wind, `[nlev][NPTS]`.
    pub u: &'a mut [f64],
    /// Northward wind, `[nlev][NPTS]`.
    pub v: &'a mut [f64],
    /// Temperature, `[nlev][NPTS]`.
    pub t: &'a mut [f64],
    /// Layer pressure thickness, `[nlev][NPTS]`.
    pub dp3d: &'a mut [f64],
    /// Tracer mass, `[qsize][nlev][NPTS]`.
    pub qdp: &'a mut [f64],
    /// Surface geopotential (fixed), `[NPTS]`.
    pub phis: &'a mut [f64],
}

impl<'a> ElemMut<'a> {
    /// Reborrow as a read-only view.
    pub fn as_ref(&self) -> ElemRef<'_> {
        ElemRef {
            u: self.u,
            v: self.v,
            t: self.t,
            dp3d: self.dp3d,
            qdp: self.qdp,
            phis: self.phis,
        }
    }
}

/// The whole (local) model state: one contiguous buffer per field,
/// spanning all elements (structure-of-arrays arena).
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Shared dimensions.
    pub dims: Dims,
    nelem: usize,
    /// Eastward wind arena, `[nelem][nlev][NPTS]`.
    pub u: Vec<f64>,
    /// Northward wind arena, `[nelem][nlev][NPTS]`.
    pub v: Vec<f64>,
    /// Temperature arena, `[nelem][nlev][NPTS]`.
    pub t: Vec<f64>,
    /// Layer pressure thickness arena, `[nelem][nlev][NPTS]`.
    pub dp3d: Vec<f64>,
    /// Tracer mass arena, `[nelem][qsize][nlev][NPTS]`.
    pub qdp: Vec<f64>,
    /// Surface geopotential arena (fixed), `[nelem][NPTS]`.
    pub phis: Vec<f64>,
}

impl State {
    /// Zero state for `nelem` elements.
    pub fn zeros(dims: Dims, nelem: usize) -> Self {
        let n = nelem * dims.field_len();
        State {
            dims,
            nelem,
            u: vec![0.0; n],
            v: vec![0.0; n],
            t: vec![0.0; n],
            dp3d: vec![0.0; n],
            qdp: vec![0.0; nelem * dims.tracer_len()],
            phis: vec![0.0; nelem * NPTS],
        }
    }

    /// Number of elements in the arena.
    #[inline]
    pub fn nelem(&self) -> usize {
        self.nelem
    }

    /// Arena-global flat index of `(e, k, p)` in a 3-D field.
    #[inline]
    pub fn at(&self, e: usize, k: usize, p: usize) -> usize {
        debug_assert!(e < self.nelem);
        e * self.dims.field_len() + self.dims.at(k, p)
    }

    /// Arena-global flat index of `(e, q, k, p)` in the tracer arena.
    #[inline]
    pub fn atq(&self, e: usize, q: usize, k: usize, p: usize) -> usize {
        debug_assert!(e < self.nelem);
        e * self.dims.tracer_len() + self.dims.atq(q, k, p)
    }

    /// Read-only view of element `e`.
    #[inline]
    pub fn elem(&self, e: usize) -> ElemRef<'_> {
        let fl = self.dims.field_len();
        let tl = self.dims.tracer_len();
        ElemRef {
            u: &self.u[e * fl..(e + 1) * fl],
            v: &self.v[e * fl..(e + 1) * fl],
            t: &self.t[e * fl..(e + 1) * fl],
            dp3d: &self.dp3d[e * fl..(e + 1) * fl],
            qdp: &self.qdp[e * tl..(e + 1) * tl],
            phis: &self.phis[e * NPTS..(e + 1) * NPTS],
        }
    }

    /// Mutable view of element `e`.
    #[inline]
    pub fn elem_mut(&mut self, e: usize) -> ElemMut<'_> {
        let fl = self.dims.field_len();
        let tl = self.dims.tracer_len();
        ElemMut {
            u: &mut self.u[e * fl..(e + 1) * fl],
            v: &mut self.v[e * fl..(e + 1) * fl],
            t: &mut self.t[e * fl..(e + 1) * fl],
            dp3d: &mut self.dp3d[e * fl..(e + 1) * fl],
            qdp: &mut self.qdp[e * tl..(e + 1) * tl],
            phis: &mut self.phis[e * NPTS..(e + 1) * NPTS],
        }
    }

    /// Iterate over read-only element views.
    pub fn elems(&self) -> impl Iterator<Item = ElemRef<'_>> {
        (0..self.nelem).map(move |e| self.elem(e))
    }

    /// Iterate over mutable element views (progressive slice splitting —
    /// no interior mutability, no allocation).
    pub fn elems_mut(&mut self) -> ElemsMut<'_> {
        ElemsMut {
            u: &mut self.u,
            v: &mut self.v,
            t: &mut self.t,
            dp3d: &mut self.dp3d,
            qdp: &mut self.qdp,
            phis: &mut self.phis,
            field_len: self.dims.field_len(),
            tracer_len: self.dims.tracer_len(),
        }
    }

    /// Copy every field from `other` (same dims/nelem required).
    pub fn copy_from(&mut self, other: &State) {
        assert_eq!(self.dims, other.dims);
        assert_eq!(self.nelem, other.nelem);
        self.u.copy_from_slice(&other.u);
        self.v.copy_from_slice(&other.v);
        self.t.copy_from_slice(&other.t);
        self.dp3d.copy_from_slice(&other.dp3d);
        self.qdp.copy_from_slice(&other.qdp);
        self.phis.copy_from_slice(&other.phis);
    }

    /// `self += s * other` over every prognostic field (RK stage update).
    pub fn axpy(&mut self, s: f64, other: &State) {
        for (a, b) in self.u.iter_mut().zip(&other.u) {
            *a += s * b;
        }
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a += s * b;
        }
        for (a, b) in self.t.iter_mut().zip(&other.t) {
            *a += s * b;
        }
        for (a, b) in self.dp3d.iter_mut().zip(&other.dp3d) {
            *a += s * b;
        }
        for (a, b) in self.qdp.iter_mut().zip(&other.qdp) {
            *a += s * b;
        }
    }

    /// Maximum absolute difference of all prognostic fields vs `other`
    /// (used by the variant-equivalence tests).
    pub fn max_abs_diff(&self, other: &State) -> f64 {
        let mut m: f64 = 0.0;
        for (x, y) in self.u.iter().zip(&other.u) {
            m = m.max((x - y).abs());
        }
        for (x, y) in self.v.iter().zip(&other.v) {
            m = m.max((x - y).abs());
        }
        for (x, y) in self.t.iter().zip(&other.t) {
            m = m.max((x - y).abs());
        }
        for (x, y) in self.dp3d.iter().zip(&other.dp3d) {
            m = m.max((x - y).abs());
        }
        for (x, y) in self.qdp.iter().zip(&other.qdp) {
            m = m.max((x - y).abs());
        }
        m
    }
}

/// Mutable element-view iterator over the arena (see
/// [`State::elems_mut`]).
#[derive(Debug)]
pub struct ElemsMut<'a> {
    u: &'a mut [f64],
    v: &'a mut [f64],
    t: &'a mut [f64],
    dp3d: &'a mut [f64],
    qdp: &'a mut [f64],
    phis: &'a mut [f64],
    field_len: usize,
    tracer_len: usize,
}

impl<'a> Iterator for ElemsMut<'a> {
    type Item = ElemMut<'a>;

    fn next(&mut self) -> Option<ElemMut<'a>> {
        if self.u.is_empty() {
            return None;
        }
        let (u, u_rest) = std::mem::take(&mut self.u).split_at_mut(self.field_len);
        let (v, v_rest) = std::mem::take(&mut self.v).split_at_mut(self.field_len);
        let (t, t_rest) = std::mem::take(&mut self.t).split_at_mut(self.field_len);
        let (dp3d, dp_rest) = std::mem::take(&mut self.dp3d).split_at_mut(self.field_len);
        let (qdp, q_rest) = std::mem::take(&mut self.qdp).split_at_mut(self.tracer_len);
        let (phis, ph_rest) = std::mem::take(&mut self.phis).split_at_mut(NPTS);
        self.u = u_rest;
        self.v = v_rest;
        self.t = t_rest;
        self.dp3d = dp_rest;
        self.qdp = q_rest;
        self.phis = ph_rest;
        Some(ElemMut { u, v, t, dp3d, qdp, phis })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_layout() {
        let d = Dims { nlev: 4, qsize: 2 };
        assert_eq!(d.field_len(), 64);
        assert_eq!(d.at(0, 0), 0);
        assert_eq!(d.at(1, 0), NPTS);
        assert_eq!(d.at(3, 15), 63);
        assert_eq!(d.atq(1, 0, 0), 64);
        assert_eq!(d.atq(1, 3, 15), 127);
    }

    #[test]
    fn arena_indexing_matches_kernel_layout() {
        let d = Dims { nlev: 4, qsize: 2 };
        let st = State::zeros(d, 3);
        // Same convention as kernels::KernelData::at / atq.
        assert_eq!(st.at(2, 1, 5), (2 * 4 + 1) * NPTS + 5);
        assert_eq!(st.atq(2, 1, 3, 5), ((2 * 2 + 1) * 4 + 3) * NPTS + 5);
        // Element views are windows into the arena.
        assert_eq!(st.elem(1).u.len(), d.field_len());
        assert_eq!(st.elem(1).qdp.len(), d.tracer_len());
        assert_eq!(st.elem(1).phis.len(), NPTS);
    }

    #[test]
    fn elem_views_alias_the_arena() {
        let d = Dims { nlev: 2, qsize: 1 };
        let mut st = State::zeros(d, 2);
        {
            let em = st.elem_mut(1);
            em.u[d.at(1, 3)] = 7.0;
            em.qdp[d.atq(0, 0, 2)] = 9.0;
            em.phis[4] = 11.0;
        }
        assert_eq!(st.u[st.at(1, 1, 3)], 7.0);
        assert_eq!(st.qdp[st.atq(1, 0, 0, 2)], 9.0);
        assert_eq!(st.phis[NPTS + 4], 11.0);
    }

    #[test]
    fn elems_mut_yields_disjoint_views_in_order() {
        let d = Dims { nlev: 2, qsize: 1 };
        let mut st = State::zeros(d, 3);
        for (e, em) in st.elems_mut().enumerate() {
            em.u[0] = e as f64;
            em.qdp[1] = 10.0 + e as f64;
        }
        for e in 0..3 {
            assert_eq!(st.u[st.at(e, 0, 0)], e as f64);
            assert_eq!(st.qdp[st.atq(e, 0, 0, 1)], 10.0 + e as f64);
        }
        assert_eq!(st.elems().count(), 3);
    }

    #[test]
    fn surface_pressure_accumulates() {
        let d = Dims { nlev: 3, qsize: 0 };
        let mut st = State::zeros(d, 1);
        {
            let e = st.elem_mut(0);
            for k in 0..3 {
                for p in 0..NPTS {
                    e.dp3d[d.at(k, p)] = 100.0 * (k + 1) as f64;
                }
            }
        }
        assert_eq!(st.elem(0).surface_pressure(d, 50.0, 7), 650.0);
    }

    #[test]
    fn axpy_touches_all_prognostics() {
        let d = Dims { nlev: 2, qsize: 1 };
        let mut a = State::zeros(d, 1);
        let mut b = State::zeros(d, 1);
        b.u[0] = 1.0;
        b.v[1] = 2.0;
        b.t[2] = 3.0;
        b.dp3d[3] = 4.0;
        b.qdp[4] = 5.0;
        a.axpy(2.0, &b);
        assert_eq!(a.u[0], 2.0);
        assert_eq!(a.v[1], 4.0);
        assert_eq!(a.t[2], 6.0);
        assert_eq!(a.dp3d[3], 8.0);
        assert_eq!(a.qdp[4], 10.0);
    }

    #[test]
    fn max_abs_diff_detects_every_field() {
        let d = Dims { nlev: 1, qsize: 1 };
        let a = State::zeros(d, 2);
        for field in ["u", "qdp"] {
            let mut b = a.clone();
            let (iu, iq) = (b.at(1, 0, 5), b.atq(1, 0, 0, 5));
            match field {
                "u" => b.u[iu] = 0.5,
                _ => b.qdp[iq] = 0.5,
            }
            assert_eq!(a.max_abs_diff(&b), 0.5);
        }
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
