//! Prognostic state of the dynamical core.
//!
//! Per element, per layer, per GLL point: horizontal velocity `(u, v)`
//! (physical east/north components, m/s), temperature `T` (K), layer
//! pressure thickness `dp3d` (Pa, the vertically-Lagrangian prognostic),
//! and tracer mass `qdp = q * dp3d` (Pa kg/kg). Layout is
//! `[level][gll point]` with the 16 GLL values of one level contiguous —
//! the horizontal operators work on 16-point slices, while vertical scans
//! stride by `NPTS` (the axis switch whose cost motivates the paper's
//! shuffle transposition, Section 7.5).

use cubesphere::NPTS;

/// Problem dimensions shared by all state containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Vertical layers.
    pub nlev: usize,
    /// Number of advected tracers.
    pub qsize: usize,
}

impl Dims {
    /// Values per 3-D field per element.
    #[inline]
    pub fn field_len(&self) -> usize {
        self.nlev * NPTS
    }

    /// Flat index of `(k, p)`.
    #[inline]
    pub fn at(&self, k: usize, p: usize) -> usize {
        debug_assert!(k < self.nlev && p < NPTS);
        k * NPTS + p
    }

    /// Flat index of `(q, k, p)` in a tracer array.
    #[inline]
    pub fn atq(&self, q: usize, k: usize, p: usize) -> usize {
        debug_assert!(q < self.qsize);
        (q * self.nlev + k) * NPTS + p
    }
}

/// Prognostic + fixed fields of one element.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemState {
    /// Eastward wind, `[nlev][NPTS]`.
    pub u: Vec<f64>,
    /// Northward wind, `[nlev][NPTS]`.
    pub v: Vec<f64>,
    /// Temperature, `[nlev][NPTS]`.
    pub t: Vec<f64>,
    /// Layer pressure thickness, `[nlev][NPTS]`.
    pub dp3d: Vec<f64>,
    /// Tracer mass, `[qsize][nlev][NPTS]`.
    pub qdp: Vec<f64>,
    /// Surface geopotential (fixed), `[NPTS]`.
    pub phis: Vec<f64>,
}

impl ElemState {
    /// Zero-initialized state.
    pub fn zeros(dims: Dims) -> Self {
        let n = dims.field_len();
        ElemState {
            u: vec![0.0; n],
            v: vec![0.0; n],
            t: vec![0.0; n],
            dp3d: vec![0.0; n],
            qdp: vec![0.0; dims.qsize * n],
            phis: vec![0.0; NPTS],
        }
    }

    /// Diagnostic surface pressure: `ptop + sum_k dp3d`.
    pub fn surface_pressure(&self, dims: Dims, ptop: f64, p: usize) -> f64 {
        let mut ps = ptop;
        for k in 0..dims.nlev {
            ps += self.dp3d[dims.at(k, p)];
        }
        ps
    }

    /// `a += s * b` over every prognostic field (used by RK stages).
    pub fn axpy(&mut self, s: f64, other: &ElemState) {
        for (a, b) in self.u.iter_mut().zip(&other.u) {
            *a += s * b;
        }
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a += s * b;
        }
        for (a, b) in self.t.iter_mut().zip(&other.t) {
            *a += s * b;
        }
        for (a, b) in self.dp3d.iter_mut().zip(&other.dp3d) {
            *a += s * b;
        }
        for (a, b) in self.qdp.iter_mut().zip(&other.qdp) {
            *a += s * b;
        }
    }
}

/// The whole (local) model state: one [`ElemState`] per owned element.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Shared dimensions.
    pub dims: Dims,
    /// Per-element states, indexed like the grid's element list.
    pub elems: Vec<ElemState>,
}

impl State {
    /// Zero state for `nelem` elements.
    pub fn zeros(dims: Dims, nelem: usize) -> Self {
        State { dims, elems: (0..nelem).map(|_| ElemState::zeros(dims)).collect() }
    }

    /// Maximum absolute difference of all prognostic fields vs `other`
    /// (used by the variant-equivalence tests).
    pub fn max_abs_diff(&self, other: &State) -> f64 {
        let mut m: f64 = 0.0;
        for (a, b) in self.elems.iter().zip(&other.elems) {
            for (x, y) in a.u.iter().zip(&b.u) {
                m = m.max((x - y).abs());
            }
            for (x, y) in a.v.iter().zip(&b.v) {
                m = m.max((x - y).abs());
            }
            for (x, y) in a.t.iter().zip(&b.t) {
                m = m.max((x - y).abs());
            }
            for (x, y) in a.dp3d.iter().zip(&b.dp3d) {
                m = m.max((x - y).abs());
            }
            for (x, y) in a.qdp.iter().zip(&b.qdp) {
                m = m.max((x - y).abs());
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_layout() {
        let d = Dims { nlev: 4, qsize: 2 };
        assert_eq!(d.field_len(), 64);
        assert_eq!(d.at(0, 0), 0);
        assert_eq!(d.at(1, 0), NPTS);
        assert_eq!(d.at(3, 15), 63);
        assert_eq!(d.atq(1, 0, 0), 64);
        assert_eq!(d.atq(1, 3, 15), 127);
    }

    #[test]
    fn surface_pressure_accumulates() {
        let d = Dims { nlev: 3, qsize: 0 };
        let mut e = ElemState::zeros(d);
        for k in 0..3 {
            for p in 0..NPTS {
                e.dp3d[d.at(k, p)] = 100.0 * (k + 1) as f64;
            }
        }
        assert_eq!(e.surface_pressure(d, 50.0, 7), 650.0);
    }

    #[test]
    fn axpy_touches_all_prognostics() {
        let d = Dims { nlev: 2, qsize: 1 };
        let mut a = ElemState::zeros(d);
        let mut b = ElemState::zeros(d);
        b.u[0] = 1.0;
        b.v[1] = 2.0;
        b.t[2] = 3.0;
        b.dp3d[3] = 4.0;
        b.qdp[4] = 5.0;
        a.axpy(2.0, &b);
        assert_eq!(a.u[0], 2.0);
        assert_eq!(a.v[1], 4.0);
        assert_eq!(a.t[2], 6.0);
        assert_eq!(a.dp3d[3], 8.0);
        assert_eq!(a.qdp[4], 10.0);
    }

    #[test]
    fn max_abs_diff_detects_every_field() {
        let d = Dims { nlev: 1, qsize: 1 };
        let a = State::zeros(d, 2);
        for (field, idx) in [("u", 0), ("qdp", 5)] {
            let mut b = a.clone();
            match field {
                "u" => b.elems[1].u[idx] = 0.5,
                _ => b.elems[1].qdp[idx] = 0.5,
            }
            assert_eq!(a.max_abs_diff(&b), 0.5);
        }
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
