//! Direct Stiffness Summation (DSS).
//!
//! Spectral elements duplicate the GLL points on shared edges and corners;
//! after computing element-local operators, the duplicated values must be
//! made continuous by mass-weighted averaging over every element sharing
//! the point. This serial implementation is the single-rank reference; the
//! distributed version (with the paper's redesigned boundary exchange)
//! lives in [`crate::bndry`] and must agree with this one exactly.

use cubesphere::{CubedSphere, NPTS};
use sw26010::V4F64;

/// Serial DSS engine for a grid.
#[derive(Debug, Clone)]
pub struct Dss {
    nglobal: usize,
    inv_mass: Vec<f64>,
    /// Per element: global ids and spheremp, flattened.
    gids: Vec<usize>,
    spheremp: Vec<f64>,
    /// Scratch accumulator.
    accum: Vec<f64>,
    /// Four-lane scratch accumulator for the fused four-field walks.
    accum4: Vec<f64>,
    /// Member-lane scratch accumulator: one `V4F64` per global point per
    /// field of the fused four-tile walks (the single-tile walks use the
    /// first `nglobal` slots).
    accum_lanes: Vec<V4F64>,
}

impl Dss {
    /// Build from the grid's assembly map.
    pub fn new(grid: &CubedSphere) -> Self {
        let mut gids = Vec::with_capacity(grid.nelem() * NPTS);
        let mut spheremp = Vec::with_capacity(grid.nelem() * NPTS);
        for el in &grid.elements {
            gids.extend_from_slice(&el.gids);
            spheremp.extend_from_slice(&el.spheremp);
        }
        Dss {
            nglobal: grid.nglobal,
            inv_mass: grid.inv_mass.clone(),
            gids,
            spheremp,
            accum: vec![0.0; grid.nglobal],
            accum4: vec![0.0; 4 * grid.nglobal],
            accum_lanes: vec![V4F64::zero(); 4 * grid.nglobal],
        }
    }

    /// Assemble one horizontal level stored as per-element 16-value chunks.
    ///
    /// `field` is a mutable per-element view: `field[e][p]`. After the call
    /// every shared point holds the identical mass-weighted average.
    pub fn apply_level(&mut self, field: &mut [&mut [f64]]) {
        debug_assert_eq!(field.len() * NPTS, self.gids.len());
        for a in &mut self.accum {
            *a = 0.0;
        }
        for (e, chunk) in field.iter().enumerate() {
            let base = e * NPTS;
            for p in 0..NPTS {
                self.accum[self.gids[base + p]] += self.spheremp[base + p] * chunk[p];
            }
        }
        for (e, chunk) in field.iter_mut().enumerate() {
            let base = e * NPTS;
            for p in 0..NPTS {
                let g = self.gids[base + p];
                chunk[p] = self.accum[g] * self.inv_mass[g];
            }
        }
    }

    /// Assemble a full 3-D field: `fields[e]` holds `[nlev][NPTS]` values.
    /// Levels are assembled independently.
    pub fn apply(&mut self, fields: &mut [Vec<f64>], nlev: usize) {
        let nelem = fields.len();
        for k in 0..nlev {
            // Reborrow each element's level-k chunk.
            let mut views: Vec<&mut [f64]> = Vec::with_capacity(nelem);
            // SAFETY-free approach: split progressively.
            let mut rest: &mut [Vec<f64>] = fields;
            while let Some((head, tail)) = rest.split_first_mut() {
                views.push(&mut head[k * NPTS..(k + 1) * NPTS]);
                rest = tail;
            }
            self.apply_level(&mut views);
        }
    }

    /// Assemble a field stored in one flat structure-of-arrays buffer of
    /// `[nelem][levels][NPTS]` (the [`crate::state::State`] arena layout;
    /// pass `levels = qsize * nlev` for the tracer arena). Accumulation
    /// order per level matches [`Dss::apply`] element-for-element, so the
    /// two paths are bitwise identical. Allocation-free.
    pub fn apply_flat(&mut self, field: &mut [f64], levels: usize) {
        let nelem = self.gids.len() / NPTS;
        debug_assert_eq!(field.len(), nelem * levels * NPTS);
        let estride = levels * NPTS;
        for k in 0..levels {
            for a in &mut self.accum {
                *a = 0.0;
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    self.accum[self.gids[base + p]] += self.spheremp[base + p] * field[off + p];
                }
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    field[off + p] = self.accum[g] * self.inv_mass[g];
                }
            }
        }
    }

    /// Fused DSS + scaled forward-Euler apply: assemble `field` (layout
    /// `[nelem][levels][NPTS]`, *left unchanged* — it is dead scratch
    /// afterwards) and add `coefs[k]` times the assembled value into
    /// `target`, whose per-element stride is `tstride` (`target` may hold
    /// more levels than `field`, e.g. a full-depth state arena receiving a
    /// sponge-depth Laplacian).
    ///
    /// Per point this computes `target += coefs[k] * (accum * inv_mass)` —
    /// the assembled value is bitwise the one [`Dss::apply_flat`] would
    /// have written (same accumulation order), and the scaled add matches
    /// the drivers' separate apply loops when `coefs[k]` carries the
    /// hoisted (possibly negated) coefficient product. Fusing removes a
    /// full write-back + reread sweep of the Laplacian arena per field per
    /// subcycle. Allocation-free.
    pub fn apply_flat_scaled_add(
        &mut self,
        field: &[f64],
        levels: usize,
        coefs: &[f64],
        target: &mut [f64],
        tstride: usize,
    ) {
        let nelem = self.gids.len() / NPTS;
        debug_assert_eq!(field.len(), nelem * levels * NPTS);
        debug_assert_eq!(target.len(), nelem * tstride);
        debug_assert!(coefs.len() >= levels);
        let estride = levels * NPTS;
        for (k, &c) in coefs[..levels].iter().enumerate() {
            for a in &mut self.accum {
                *a = 0.0;
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    self.accum[self.gids[base + p]] += self.spheremp[base + p] * field[off + p];
                }
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * tstride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    target[off + p] += c * (self.accum[g] * self.inv_mass[g]);
                }
            }
        }
    }

    /// [`Dss::apply_flat`] on four equal-shape arenas in ONE walk of the
    /// assembly map per level: the `gids`/`spheremp` loads and index
    /// arithmetic are shared across the four fields instead of re-walked
    /// per field. Each field accumulates in its own lane in the exact
    /// element-ascending, point-ascending order of the single-field walk,
    /// so the result is bitwise identical to four `apply_flat` calls.
    /// Allocation-free.
    pub fn apply_flat4(&mut self, fields: [&mut [f64]; 4], levels: usize) {
        let nelem = self.gids.len() / NPTS;
        let estride = levels * NPTS;
        let n = self.nglobal;
        let [f0, f1, f2, f3] = fields;
        debug_assert!([&f0, &f1, &f2, &f3].iter().all(|f| f.len() == nelem * estride));
        for k in 0..levels {
            for a in &mut self.accum4 {
                *a = 0.0;
            }
            let (a01, a23) = self.accum4.split_at_mut(2 * n);
            let (a0, a1) = a01.split_at_mut(n);
            let (a2, a3) = a23.split_at_mut(n);
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    let w = self.spheremp[base + p];
                    a0[g] += w * f0[off + p];
                    a1[g] += w * f1[off + p];
                    a2[g] += w * f2[off + p];
                    a3[g] += w * f3[off + p];
                }
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    let m = self.inv_mass[g];
                    f0[off + p] = a0[g] * m;
                    f1[off + p] = a1[g] * m;
                    f2[off + p] = a2[g] * m;
                    f3[off + p] = a3[g] * m;
                }
            }
        }
    }

    /// [`Dss::apply_flat_scaled_add`] on four fields in ONE walk of the
    /// assembly map per level, one coefficient table per field. Bitwise
    /// identical to four single-field calls (per-field accumulation order
    /// unchanged). Allocation-free.
    pub fn apply_flat_scaled_add4(
        &mut self,
        fields: [&[f64]; 4],
        levels: usize,
        coefs: [&[f64]; 4],
        targets: [&mut [f64]; 4],
        tstride: usize,
    ) {
        let nelem = self.gids.len() / NPTS;
        let estride = levels * NPTS;
        let n = self.nglobal;
        let [f0, f1, f2, f3] = fields;
        let [t0, t1, t2, t3] = targets;
        debug_assert!([f0, f1, f2, f3].iter().all(|f| f.len() == nelem * estride));
        debug_assert!([&t0, &t1, &t2, &t3].iter().all(|t| t.len() == nelem * tstride));
        debug_assert!(coefs.iter().all(|c| c.len() >= levels));
        for k in 0..levels {
            let (c0, c1, c2, c3) = (coefs[0][k], coefs[1][k], coefs[2][k], coefs[3][k]);
            for a in &mut self.accum4 {
                *a = 0.0;
            }
            let (a01, a23) = self.accum4.split_at_mut(2 * n);
            let (a0, a1) = a01.split_at_mut(n);
            let (a2, a3) = a23.split_at_mut(n);
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    let w = self.spheremp[base + p];
                    a0[g] += w * f0[off + p];
                    a1[g] += w * f1[off + p];
                    a2[g] += w * f2[off + p];
                    a3[g] += w * f3[off + p];
                }
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * tstride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    let m = self.inv_mass[g];
                    t0[off + p] += c0 * (a0[g] * m);
                    t1[off + p] += c1 * (a1[g] * m);
                    t2[off + p] += c2 * (a2[g] * m);
                    t3[off + p] += c3 * (a3[g] * m);
                }
            }
        }
    }

    /// [`Dss::apply_flat`] on a member-lane tile (`[nelem][levels][NPTS]`
    /// of `V4F64`, lanes are members): one walk of the assembly map
    /// assembles four members at once. Lane `m` accumulates in the exact
    /// element-ascending, point-ascending order of the single-member flat
    /// walk, with the shared `spheremp`/`inv_mass` scalars splat across
    /// lanes — so lane `m` is bitwise identical to `apply_flat` on member
    /// `m`'s own arena. Allocation-free.
    pub fn apply_lanes(&mut self, tile: &mut [V4F64], levels: usize) {
        let nelem = self.gids.len() / NPTS;
        debug_assert_eq!(tile.len(), nelem * levels * NPTS);
        let estride = levels * NPTS;
        let acc = &mut self.accum_lanes[..self.nglobal];
        for k in 0..levels {
            for a in acc.iter_mut() {
                *a = V4F64::zero();
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    acc[g] = acc[g] + V4F64::splat(self.spheremp[base + p]) * tile[off + p];
                }
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    tile[off + p] = acc[g] * V4F64::splat(self.inv_mass[g]);
                }
            }
        }
    }

    /// [`Dss::apply_flat_scaled_add`] on member-lane tiles: assemble `tile`
    /// (left unchanged) and add `coefs[k]` times the assembled value into
    /// `target` (per-element stride `tstride` in `V4F64` units). Lane `m`
    /// is bitwise `apply_flat_scaled_add` on member `m`. Allocation-free.
    pub fn apply_lanes_scaled_add(
        &mut self,
        tile: &[V4F64],
        levels: usize,
        coefs: &[f64],
        target: &mut [V4F64],
        tstride: usize,
    ) {
        let nelem = self.gids.len() / NPTS;
        debug_assert_eq!(tile.len(), nelem * levels * NPTS);
        debug_assert_eq!(target.len(), nelem * tstride);
        debug_assert!(coefs.len() >= levels);
        let estride = levels * NPTS;
        let acc = &mut self.accum_lanes[..self.nglobal];
        for (k, &c) in coefs[..levels].iter().enumerate() {
            for a in acc.iter_mut() {
                *a = V4F64::zero();
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    acc[g] = acc[g] + V4F64::splat(self.spheremp[base + p]) * tile[off + p];
                }
            }
            let cs = V4F64::splat(c);
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * tstride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    target[off + p] =
                        target[off + p] + cs * (acc[g] * V4F64::splat(self.inv_mass[g]));
                }
            }
        }
    }

    /// [`Dss::apply_lanes`] on four equal-shape member-lane tiles in ONE
    /// walk of the assembly map per level (the hypervis `u, v, t, dp3d`
    /// quartet). Bitwise four `apply_lanes` calls. Allocation-free.
    pub fn apply_lanes4(&mut self, tiles: [&mut [V4F64]; 4], levels: usize) {
        let nelem = self.gids.len() / NPTS;
        let estride = levels * NPTS;
        let n = self.nglobal;
        let [f0, f1, f2, f3] = tiles;
        debug_assert!([&f0, &f1, &f2, &f3].iter().all(|f| f.len() == nelem * estride));
        for k in 0..levels {
            for a in &mut self.accum_lanes {
                *a = V4F64::zero();
            }
            let (a01, a23) = self.accum_lanes.split_at_mut(2 * n);
            let (a0, a1) = a01.split_at_mut(n);
            let (a2, a3) = a23.split_at_mut(n);
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    let w = V4F64::splat(self.spheremp[base + p]);
                    a0[g] = a0[g] + w * f0[off + p];
                    a1[g] = a1[g] + w * f1[off + p];
                    a2[g] = a2[g] + w * f2[off + p];
                    a3[g] = a3[g] + w * f3[off + p];
                }
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    let m = V4F64::splat(self.inv_mass[g]);
                    f0[off + p] = a0[g] * m;
                    f1[off + p] = a1[g] * m;
                    f2[off + p] = a2[g] * m;
                    f3[off + p] = a3[g] * m;
                }
            }
        }
    }

    /// [`Dss::apply_lanes_scaled_add`] on four member-lane tiles in ONE
    /// walk of the assembly map per level, one coefficient table per tile.
    /// Bitwise four single-tile calls. Allocation-free.
    pub fn apply_lanes_scaled_add4(
        &mut self,
        tiles: [&[V4F64]; 4],
        levels: usize,
        coefs: [&[f64]; 4],
        targets: [&mut [V4F64]; 4],
        tstride: usize,
    ) {
        let nelem = self.gids.len() / NPTS;
        let estride = levels * NPTS;
        let n = self.nglobal;
        let [f0, f1, f2, f3] = tiles;
        let [t0, t1, t2, t3] = targets;
        debug_assert!([f0, f1, f2, f3].iter().all(|f| f.len() == nelem * estride));
        debug_assert!([&t0, &t1, &t2, &t3].iter().all(|t| t.len() == nelem * tstride));
        debug_assert!(coefs.iter().all(|c| c.len() >= levels));
        for k in 0..levels {
            let (c0, c1, c2, c3) = (
                V4F64::splat(coefs[0][k]),
                V4F64::splat(coefs[1][k]),
                V4F64::splat(coefs[2][k]),
                V4F64::splat(coefs[3][k]),
            );
            for a in &mut self.accum_lanes {
                *a = V4F64::zero();
            }
            let (a01, a23) = self.accum_lanes.split_at_mut(2 * n);
            let (a0, a1) = a01.split_at_mut(n);
            let (a2, a3) = a23.split_at_mut(n);
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * estride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    let w = V4F64::splat(self.spheremp[base + p]);
                    a0[g] = a0[g] + w * f0[off + p];
                    a1[g] = a1[g] + w * f1[off + p];
                    a2[g] = a2[g] + w * f2[off + p];
                    a3[g] = a3[g] + w * f3[off + p];
                }
            }
            for e in 0..nelem {
                let base = e * NPTS;
                let off = e * tstride + k * NPTS;
                for p in 0..NPTS {
                    let g = self.gids[base + p];
                    let m = V4F64::splat(self.inv_mass[g]);
                    t0[off + p] = t0[off + p] + c0 * (a0[g] * m);
                    t1[off + p] = t1[off + p] + c1 * (a1[g] * m);
                    t2[off + p] = t2[off + p] + c2 * (a2[g] * m);
                    t3[off + p] = t3[off + p] + c3 * (a3[g] * m);
                }
            }
        }
    }

    /// Number of assembled (unique) points.
    pub fn nglobal(&self) -> usize {
        self.nglobal
    }

    /// Global point ids of element `e` (the assembly map row).
    pub fn element_gids(&self, e: usize) -> &[usize] {
        &self.gids[e * NPTS..(e + 1) * NPTS]
    }
}

/// Per-element DSS accumulation plan for the task-graph step: for every
/// (element, point) it lists all sharing (element, point) pairs — itself
/// included — in the *canonical* order [`Dss::apply_flat`] accumulates
/// them (element-ascending, point-ascending), with their spheremp weights.
/// Summing a point's sharers in this fixed order and scaling by the
/// point's inverse mass reproduces the barrier DSS bitwise, no matter
/// which task performs the gather or when its inputs arrived.
#[derive(Debug, Clone)]
pub struct DssGather {
    /// CSR offsets, one slot per (element, point): `nelem * NPTS + 1`.
    off: Vec<u32>,
    /// Sharer codes `elem * NPTS + point`, canonical order.
    codes: Vec<u32>,
    /// spheremp weight of each sharer entry.
    w: Vec<f64>,
    /// Inverse global mass per (element, point).
    inv: Vec<f64>,
}

impl DssGather {
    /// Build the plan from the serial DSS assembly map.
    pub fn new(dss: &Dss) -> Self {
        let npoints = dss.gids.len();
        // gid -> sharer codes; insertion order (e asc, p asc) is already
        // canonical because we scan points in that order.
        let mut by_gid: std::collections::HashMap<usize, Vec<u32>> =
            std::collections::HashMap::new();
        for (code, &g) in dss.gids.iter().enumerate() {
            by_gid.entry(g).or_default().push(code as u32);
        }
        let mut off = Vec::with_capacity(npoints + 1);
        let mut codes = Vec::new();
        let mut w = Vec::new();
        let mut inv = Vec::with_capacity(npoints);
        off.push(0u32);
        for &g in &dss.gids {
            for &c in &by_gid[&g] {
                codes.push(c);
                w.push(dss.spheremp[c as usize]);
            }
            off.push(codes.len() as u32);
            inv.push(dss.inv_mass[g]);
        }
        DssGather { off, codes, w, inv }
    }

    /// Number of elements covered.
    pub fn nelem(&self) -> usize {
        self.inv.len() / NPTS
    }

    /// Sharer codes + weights of flat point `pi = e * NPTS + p`, and the
    /// point's inverse mass. `read(code)` must yield the raw (pre-DSS)
    /// value of the sharer at `elem = code / NPTS`, `point = code % NPTS`.
    #[inline]
    pub fn gather_point(&self, pi: usize, read: impl Fn(usize) -> f64) -> f64 {
        let lo = self.off[pi] as usize;
        let hi = self.off[pi + 1] as usize;
        let mut acc = 0.0;
        for i in lo..hi {
            acc += self.w[i] * read(self.codes[i] as usize);
        }
        acc * self.inv[pi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesphere::pidx;

    fn level_views(fields: &mut [Vec<f64>]) -> Vec<&mut [f64]> {
        fields.iter_mut().map(|f| &mut f[..]).collect()
    }

    #[test]
    fn dss_is_idempotent() {
        let grid = CubedSphere::new(3);
        let mut dss = Dss::new(&grid);
        let mut fields: Vec<Vec<f64>> = (0..grid.nelem())
            .map(|e| (0..NPTS).map(|p| ((e * 31 + p * 7) % 17) as f64).collect())
            .collect();
        {
            let mut v = level_views(&mut fields);
            dss.apply_level(&mut v);
        }
        let once = fields.clone();
        {
            let mut v = level_views(&mut fields);
            dss.apply_level(&mut v);
        }
        for (a, b) in once.iter().zip(&fields) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn dss_preserves_continuous_fields() {
        // A field already continuous (sampled from lat/lon) is unchanged.
        let grid = CubedSphere::new(3);
        let mut dss = Dss::new(&grid);
        let mut fields: Vec<Vec<f64>> = grid
            .elements
            .iter()
            .map(|el| el.metric.iter().map(|m| m.lat.sin() * m.lon.cos()).collect())
            .collect();
        let before = fields.clone();
        let mut v = level_views(&mut fields);
        dss.apply_level(&mut v);
        drop(v);
        for (a, b) in before.iter().zip(&fields) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dss_conserves_the_global_integral() {
        let grid = CubedSphere::new(3);
        let mut dss = Dss::new(&grid);
        let mut fields: Vec<Vec<f64>> = (0..grid.nelem())
            .map(|e| (0..NPTS).map(|p| ((e + p) % 13) as f64 - 6.0).collect())
            .collect();
        let before = grid.global_integral(&fields);
        let mut v = level_views(&mut fields);
        dss.apply_level(&mut v);
        drop(v);
        let after = grid.global_integral(&fields);
        assert!(
            ((before - after) / before.abs().max(1.0)).abs() < 1e-12,
            "{before} vs {after}"
        );
    }

    #[test]
    fn shared_points_become_identical() {
        let grid = CubedSphere::new(2);
        let mut dss = Dss::new(&grid);
        let mut fields: Vec<Vec<f64>> =
            (0..grid.nelem()).map(|e| vec![e as f64; NPTS]).collect();
        let mut v = level_views(&mut fields);
        dss.apply_level(&mut v);
        drop(v);
        // Group values by global id; all must agree.
        let mut by_gid: std::collections::HashMap<usize, f64> = Default::default();
        for (e, el) in grid.elements.iter().enumerate() {
            for p in 0..NPTS {
                let g = el.gids[p];
                let val = fields[e][p];
                if let Some(prev) = by_gid.insert(g, val) {
                    assert!((prev - val).abs() < 1e-12, "gid {g}: {prev} vs {val}");
                }
            }
        }
    }

    #[test]
    fn multi_level_apply_matches_per_level() {
        let grid = CubedSphere::new(2);
        let mut dss = Dss::new(&grid);
        let nlev = 3;
        let mut full: Vec<Vec<f64>> = (0..grid.nelem())
            .map(|e| {
                (0..nlev * NPTS)
                    .map(|i| ((e * 13 + i * 5) % 29) as f64)
                    .collect()
            })
            .collect();
        let mut by_level = full.clone();
        dss.apply(&mut full, nlev);
        for k in 0..nlev {
            let mut views: Vec<&mut [f64]> = by_level
                .iter_mut()
                .map(|f| &mut f[k * NPTS..(k + 1) * NPTS])
                .collect();
            dss.apply_level(&mut views);
        }
        for (a, b) in full.iter().zip(&by_level) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn flat_arena_apply_is_bitwise_identical_to_per_element_apply() {
        let grid = CubedSphere::new(2);
        let mut dss = Dss::new(&grid);
        let nlev = 3;
        let nelem = grid.nelem();
        let mut per_elem: Vec<Vec<f64>> = (0..nelem)
            .map(|e| {
                (0..nlev * NPTS)
                    .map(|i| ((e * 13 + i * 5) % 29) as f64 - 11.0)
                    .collect()
            })
            .collect();
        let mut flat: Vec<f64> = per_elem.iter().flatten().copied().collect();
        dss.apply(&mut per_elem, nlev);
        dss.apply_flat(&mut flat, nlev);
        for (e, pe) in per_elem.iter().enumerate() {
            let fl = &flat[e * nlev * NPTS..(e + 1) * nlev * NPTS];
            assert_eq!(pe.as_slice(), fl, "element {e}");
        }
    }

    /// The fused DSS + scaled apply matches `apply_flat` followed by a
    /// manual `target += coef * assembled` loop, bit for bit — including a
    /// target arena deeper than the assembled field (the sponge shape).
    #[test]
    fn scaled_add_matches_apply_flat_plus_manual_apply_bitwise() {
        let grid = CubedSphere::new(2);
        let mut dss = Dss::new(&grid);
        let nelem = grid.nelem();
        let (nlev, ks) = (4usize, 2usize);
        let estride = nlev * NPTS;
        let raw: Vec<f64> = (0..nelem * ks * NPTS)
            .map(|i| ((i * 193) % 101) as f64 / 9.0 - 5.0)
            .collect();
        let target0: Vec<f64> = (0..nelem * estride)
            .map(|i| ((i * 37) % 53) as f64 / 3.0 - 8.0)
            .collect();
        let coefs = [-1.75e-3, 0.5e-3];

        // Reference: assemble a copy, then the drivers' separate apply loop.
        let mut assembled = raw.clone();
        dss.apply_flat(&mut assembled, ks);
        let mut expect = target0.clone();
        for e in 0..nelem {
            for k in 0..ks {
                for p in 0..NPTS {
                    expect[e * estride + k * NPTS + p] +=
                        coefs[k] * assembled[e * ks * NPTS + k * NPTS + p];
                }
            }
        }

        let mut got = target0.clone();
        dss.apply_flat_scaled_add(&raw, ks, &coefs, &mut got, estride);
        for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "slot {i}: {a:e} vs {b:e}");
        }
    }

    /// The fused four-field walk is bitwise four single-field walks.
    #[test]
    fn four_field_apply_matches_four_single_applies_bitwise() {
        let grid = CubedSphere::new(2);
        let mut dss = Dss::new(&grid);
        let nelem = grid.nelem();
        let nlev = 3;
        let mk = |seed: usize| -> Vec<f64> {
            (0..nelem * nlev * NPTS)
                .map(|i| ((i * 131 + seed * 17) % 97) as f64 / 7.0 - 6.5)
                .collect()
        };
        let mut single: [Vec<f64>; 4] = std::array::from_fn(mk);
        let mut fused = single.clone();
        for f in &mut single {
            dss.apply_flat(f, nlev);
        }
        let [f0, f1, f2, f3] = &mut fused;
        dss.apply_flat4([f0, f1, f2, f3], nlev);
        for (f, (a, b)) in single.iter().zip(&fused).enumerate() {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "field {f} slot {i}: {x:e} vs {y:e}");
            }
        }
    }

    /// Same for the fused DSS + scaled apply: four coefficient tables,
    /// four targets, one map walk — bitwise four single-field calls.
    #[test]
    fn four_field_scaled_add_matches_four_single_calls_bitwise() {
        let grid = CubedSphere::new(2);
        let mut dss = Dss::new(&grid);
        let nelem = grid.nelem();
        let (nlev, ks) = (4usize, 2usize);
        let estride = nlev * NPTS;
        let mk = |seed: usize, len: usize| -> Vec<f64> {
            (0..len).map(|i| ((i * 193 + seed * 29) % 101) as f64 / 9.0 - 5.0).collect()
        };
        let raw: [Vec<f64>; 4] = std::array::from_fn(|f| mk(f, nelem * ks * NPTS));
        let mut single: [Vec<f64>; 4] = std::array::from_fn(|f| mk(f + 4, nelem * estride));
        let mut fused = single.clone();
        let coefs =
            [[-1.75e-3, 0.5e-3], [2.5e-4, -9.0e-4], [1.0e-3, 1.0e-3], [-3.0e-5, 7.0e-4]];
        for f in 0..4 {
            dss.apply_flat_scaled_add(&raw[f], ks, &coefs[f], &mut single[f], estride);
        }
        let [t0, t1, t2, t3] = &mut fused;
        dss.apply_flat_scaled_add4(
            [&raw[0], &raw[1], &raw[2], &raw[3]],
            ks,
            [&coefs[0], &coefs[1], &coefs[2], &coefs[3]],
            [t0, t1, t2, t3],
            estride,
        );
        for (f, (a, b)) in single.iter().zip(&fused).enumerate() {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "field {f} slot {i}: {x:e} vs {y:e}");
            }
        }
    }

    /// Every lane of the member-lane DSS walks is bitwise the single-member
    /// flat walk on that member's own arena — for the single-tile apply,
    /// the fused four-tile apply, and both scaled-add forms.
    #[test]
    fn lane_dss_walks_match_per_member_flat_walks_bitwise() {
        use crate::kernels::member_lanes::{gather_member_tile, scatter_member_tile};
        let grid = CubedSphere::new(2);
        let mut dss = Dss::new(&grid);
        let nelem = grid.nelem();
        let (nlev, ks) = (3usize, 2usize);
        let estride = nlev * NPTS;
        let mk = |seed: usize, len: usize| -> Vec<f64> {
            (0..len).map(|i| ((i * 131 + seed * 17) % 97) as f64 / 7.0 - 6.5).collect()
        };
        let members: Vec<Vec<f64>> = (0..4).map(|m| mk(m, nelem * estride)).collect();
        let gather = |fields: &[Vec<f64>], n: usize| -> Vec<sw26010::V4F64> {
            let mut tile = vec![sw26010::V4F64::zero(); n];
            let srcs: Vec<&[f64]> = fields.iter().map(|f| f.as_slice()).collect();
            gather_member_tile(&srcs, &mut tile);
            tile
        };
        let scatter = |tile: &[sw26010::V4F64]| -> Vec<Vec<f64>> {
            let mut outs = vec![vec![0.0f64; tile.len()]; 4];
            let mut views: Vec<&mut [f64]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
            scatter_member_tile(tile, &mut views);
            outs
        };
        let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();

        // Single-tile apply.
        let mut tile = gather(&members, nelem * estride);
        dss.apply_lanes(&mut tile, nlev);
        let mut expect = members.clone();
        for e in &mut expect {
            dss.apply_flat(e, nlev);
        }
        for (m, got) in scatter(&tile).iter().enumerate() {
            assert_eq!(bits(&expect[m]), bits(got), "apply_lanes member {m}");
        }

        // Fused four-tile apply: four field quartets per member.
        let quartets: Vec<Vec<Vec<f64>>> =
            (0..4).map(|f| (0..4).map(|m| mk(f * 4 + m + 9, nelem * estride)).collect()).collect();
        let mut tiles: Vec<Vec<sw26010::V4F64>> =
            quartets.iter().map(|q| gather(q, nelem * estride)).collect();
        {
            let (t0, rest) = tiles.split_at_mut(1);
            let (t1, rest) = rest.split_at_mut(1);
            let (t2, t3) = rest.split_at_mut(1);
            dss.apply_lanes4([&mut t0[0], &mut t1[0], &mut t2[0], &mut t3[0]], nlev);
        }
        for (f, q) in quartets.iter().enumerate() {
            let mut expect = q.clone();
            for e in &mut expect {
                dss.apply_flat(e, nlev);
            }
            for (m, got) in scatter(&tiles[f]).iter().enumerate() {
                assert_eq!(bits(&expect[m]), bits(got), "apply_lanes4 field {f} member {m}");
            }
        }

        // Scaled-add forms (sponge/damp shape: shallow field, deep target).
        let raws: Vec<Vec<f64>> = (0..4).map(|m| mk(m + 31, nelem * ks * NPTS)).collect();
        let targets: Vec<Vec<f64>> = (0..4).map(|m| mk(m + 41, nelem * estride)).collect();
        let coefs = [-1.75e-3, 0.5e-3];
        let rtile = gather(&raws, nelem * ks * NPTS);
        let mut ttile = gather(&targets, nelem * estride);
        dss.apply_lanes_scaled_add(&rtile, ks, &coefs, &mut ttile, estride);
        let mut expect = targets.clone();
        for (r, t) in raws.iter().zip(&mut expect) {
            dss.apply_flat_scaled_add(r, ks, &coefs, t, estride);
        }
        for (m, got) in scatter(&ttile).iter().enumerate() {
            assert_eq!(bits(&expect[m]), bits(got), "apply_lanes_scaled_add member {m}");
        }

        let coefs4 =
            [[-1.75e-3, 0.5e-3], [2.5e-4, -9.0e-4], [1.0e-3, 1.0e-3], [-3.0e-5, 7.0e-4]];
        let rq: Vec<Vec<Vec<f64>>> =
            (0..4).map(|f| (0..4).map(|m| mk(f * 4 + m + 51, nelem * ks * NPTS)).collect()).collect();
        let tq: Vec<Vec<Vec<f64>>> =
            (0..4).map(|f| (0..4).map(|m| mk(f * 4 + m + 71, nelem * estride)).collect()).collect();
        let rtiles: Vec<Vec<sw26010::V4F64>> = rq.iter().map(|q| gather(q, nelem * ks * NPTS)).collect();
        let mut ttiles: Vec<Vec<sw26010::V4F64>> =
            tq.iter().map(|q| gather(q, nelem * estride)).collect();
        {
            let (t0, rest) = ttiles.split_at_mut(1);
            let (t1, rest) = rest.split_at_mut(1);
            let (t2, t3) = rest.split_at_mut(1);
            dss.apply_lanes_scaled_add4(
                [&rtiles[0], &rtiles[1], &rtiles[2], &rtiles[3]],
                ks,
                [&coefs4[0], &coefs4[1], &coefs4[2], &coefs4[3]],
                [&mut t0[0], &mut t1[0], &mut t2[0], &mut t3[0]],
                estride,
            );
        }
        for f in 0..4 {
            let mut expect = tq[f].clone();
            for (r, t) in rq[f].iter().zip(&mut expect) {
                dss.apply_flat_scaled_add(r, ks, &coefs4[f], t, estride);
            }
            for (m, got) in scatter(&ttiles[f]).iter().enumerate() {
                assert_eq!(bits(&expect[m]), bits(got), "scaled_add4 field {f} member {m}");
            }
        }
    }

    /// The per-point gather plan reproduces `apply_flat` bitwise: same
    /// additions in the same canonical order, just grouped per point.
    #[test]
    fn gather_plan_is_bitwise_identical_to_apply_flat() {
        let grid = CubedSphere::new(3);
        let mut dss = Dss::new(&grid);
        let plan = DssGather::new(&dss);
        let nelem = grid.nelem();
        assert_eq!(plan.nelem(), nelem);
        let nlev = 3;
        let estride = nlev * NPTS;
        let raw: Vec<f64> = (0..nelem * estride)
            .map(|i| ((i * 131) % 97) as f64 / 7.0 - 6.5)
            .collect();
        let mut flat = raw.clone();
        dss.apply_flat(&mut flat, nlev);
        for e in 0..nelem {
            for k in 0..nlev {
                for p in 0..NPTS {
                    let got = plan.gather_point(e * NPTS + p, |code| {
                        raw[(code / NPTS) * estride + k * NPTS + (code % NPTS)]
                    });
                    let want = flat[e * estride + k * NPTS + p];
                    assert!(
                        got.to_bits() == want.to_bits(),
                        "elem {e} lev {k} pt {p}: {got:e} vs {want:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn dss_makes_gradients_continuous_across_edges() {
        use crate::deriv::build_ops;
        let grid = CubedSphere::new(4);
        let ops = build_ops(&grid);
        let mut dss = Dss::new(&grid);
        // Non-polynomial field -> discontinuous element-local derivative.
        let mut gx_all: Vec<Vec<f64>> = Vec::new();
        for (el, op) in grid.elements.iter().zip(&ops) {
            let s: Vec<f64> = el.metric.iter().map(|m| (3.0 * m.lat).sin()).collect();
            let mut gx = [0.0; NPTS];
            let mut gy = [0.0; NPTS];
            op.gradient_sphere(&s, &mut gx, &mut gy);
            gx_all.push(gx.to_vec());
        }
        let mut v: Vec<&mut [f64]> = gx_all.iter_mut().map(|f| &mut f[..]).collect();
        dss.apply_level(&mut v);
        drop(v);
        // After DSS, every copy of a shared point agrees.
        let mut by_gid: std::collections::HashMap<usize, f64> = Default::default();
        for (e, el) in grid.elements.iter().enumerate() {
            for p in 0..NPTS {
                if let Some(prev) = by_gid.insert(el.gids[p], gx_all[e][p]) {
                    assert!((prev - gx_all[e][p]).abs() < 1e-18 * 1e6);
                }
            }
        }
        let _ = pidx(0, 0);
    }
}
