//! `vertical_remap`: conservative remapping from the drifted Lagrangian
//! layers back to the reference hybrid coordinate.
//!
//! "compute the vertical flux needed to get back to reference eta-coordinate
//! levels" (Table 1). The vertically-Lagrangian dynamics lets `dp3d` evolve
//! freely; after each dynamics step the column is rebuilt on reference
//! levels with a monotone piecewise-parabolic (PPM) reconstruction, exactly
//! conserving column mass, momentum, internal energy and tracer mass.

use crate::vert::VertCoord;
use cubesphere::NPTS;
use sw26010::transpose_blocked;

/// A rejected remap precondition — a collapsed Lagrangian layer or a
/// mass-inconsistent column. These are *recoverable* state-health verdicts,
/// not programming errors: the distributed driver routes them through the
/// health plumbing into the rollback protocol instead of panicking a rank
/// thread (which would abort the whole process from under `try_run_ranks`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RemapError {
    /// Value/thickness slice lengths disagree.
    LengthMismatch {
        /// `vals.len()`.
        vals: usize,
        /// `src_dp.len()`.
        src: usize,
        /// `dst_dp.len()`.
        dst: usize,
        /// `out.len()`.
        out: usize,
    },
    /// A source layer has collapsed (`dp <= 0` or NaN).
    NonPositiveSource {
        /// Layer index (top first).
        layer: usize,
        /// The offending thickness.
        dp: f64,
    },
    /// A target layer is non-positive or NaN.
    NonPositiveTarget {
        /// Layer index (top first).
        layer: usize,
        /// The offending thickness.
        dp: f64,
    },
    /// Source and target column totals differ beyond relative `1e-10`.
    TotalMismatch {
        /// Source column total.
        src: f64,
        /// Target column total.
        dst: f64,
    },
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::LengthMismatch { vals, src, dst, out } => {
                write!(f, "remap length mismatch: vals {vals} vs src {src}, dst {dst} vs out {out}")
            }
            RemapError::NonPositiveSource { layer, dp } => {
                write!(f, "non-positive source thickness at layer {layer}: {dp}")
            }
            RemapError::NonPositiveTarget { layer, dp } => {
                write!(f, "non-positive target thickness at layer {layer}: {dp}")
            }
            RemapError::TotalMismatch { src, dst } => {
                write!(f, "column totals differ: {src} vs {dst}")
            }
        }
    }
}

impl std::error::Error for RemapError {}

/// Reusable buffers for the PPM reconstruction of one column. A scratch
/// sized once for `nlev` serves every column of a run — the zero-alloc
/// remap path keeps one per scheduler worker.
#[derive(Debug, Clone, Default)]
pub struct RemapScratch {
    /// Source interface positions, `[n+1]`.
    zs: Vec<f64>,
    /// Interface values, `[n+1]`.
    ae: Vec<f64>,
    /// Limited left parabola edge per cell, `[n]`.
    a_l: Vec<f64>,
    /// Limited right parabola edge per cell, `[n]`.
    a_r: Vec<f64>,
}

impl RemapScratch {
    /// Scratch sized for columns of `nlev` cells.
    pub fn new(nlev: usize) -> Self {
        RemapScratch {
            zs: vec![0.0; nlev + 1],
            ae: vec![0.0; nlev + 1],
            a_l: vec![0.0; nlev],
            a_r: vec![0.0; nlev],
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.a_l.len() < n {
            self.zs.resize(n + 1, 0.0);
            self.ae.resize(n + 1, 0.0);
            self.a_l.resize(n, 0.0);
            self.a_r.resize(n, 0.0);
        }
    }
}

/// Conservatively remap one column (allocating convenience wrapper around
/// [`remap_column_ppm_with`]).
pub fn remap_column_ppm(
    src_dp: &[f64],
    vals: &[f64],
    dst_dp: &[f64],
    out: &mut [f64],
) -> Result<(), RemapError> {
    let mut scratch = RemapScratch::new(src_dp.len());
    remap_column_ppm_with(src_dp, vals, dst_dp, out, &mut scratch)
}

/// Conservatively remap one column.
///
/// `src_dp[k]` / `vals[k]` are source thicknesses and cell averages (top
/// first); `dst_dp` are target thicknesses with the same column total (to
/// round-off); `out` receives the target averages. `scratch` buffers are
/// fully overwritten; a sufficiently-sized scratch makes the call
/// allocation-free.
///
/// # Errors
/// Returns a [`RemapError`] (leaving `out` untouched) if lengths disagree,
/// any thickness is non-positive or NaN, or the column totals differ by
/// more than a relative `1e-10`.
// Negated comparisons are deliberate: `!(d > 0.0)` is true for NaN where
// `d <= 0.0` is not, and NaN thicknesses must be rejected.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn remap_column_ppm_with(
    src_dp: &[f64],
    vals: &[f64],
    dst_dp: &[f64],
    out: &mut [f64],
    scratch: &mut RemapScratch,
) -> Result<(), RemapError> {
    let n = src_dp.len();
    if vals.len() != n || dst_dp.len() != out.len() {
        return Err(RemapError::LengthMismatch {
            vals: vals.len(),
            src: n,
            dst: dst_dp.len(),
            out: out.len(),
        });
    }
    // `!(d > 0.0)` (rather than `d <= 0.0`) also rejects NaN thicknesses.
    for (layer, &d) in src_dp.iter().enumerate() {
        if !(d > 0.0) {
            return Err(RemapError::NonPositiveSource { layer, dp: d });
        }
    }
    for (layer, &d) in dst_dp.iter().enumerate() {
        if !(d > 0.0) {
            return Err(RemapError::NonPositiveTarget { layer, dp: d });
        }
    }
    let total_src: f64 = src_dp.iter().sum();
    let total_dst: f64 = dst_dp.iter().sum();
    if !((total_src - total_dst).abs() <= 1e-10 * total_src) {
        return Err(RemapError::TotalMismatch { src: total_src, dst: total_dst });
    }

    scratch.ensure(n);
    let RemapScratch { zs, ae, a_l, a_r } = scratch;

    // Source interface positions (mass coordinate, 0 at the top).
    zs[0] = 0.0;
    for k in 0..n {
        zs[k + 1] = zs[k] + src_dp[k];
    }

    // --- PPM reconstruction -------------------------------------------------
    // Interface values by thickness-weighted interpolation.
    ae[0] = vals[0];
    ae[n] = vals[n - 1];
    for k in 1..n {
        let w = src_dp[k] / (src_dp[k - 1] + src_dp[k]);
        ae[k] = w * vals[k - 1] + (1.0 - w) * vals[k];
    }
    // Limited parabola coefficients per cell.
    for k in 0..n {
        let a = vals[k];
        let mut l = ae[k];
        let mut r = ae[k + 1];
        if (r - a) * (a - l) <= 0.0 {
            // Local extremum: flatten.
            l = a;
            r = a;
        } else {
            let d = r - l;
            let c = a - 0.5 * (l + r);
            if d * c > d * d / 6.0 {
                l = 3.0 * a - 2.0 * r;
            } else if -(d * d) / 6.0 > d * c {
                r = 3.0 * a - 2.0 * l;
            }
        }
        a_l[k] = l;
        a_r[k] = r;
    }

    // Mass within source cell k from its top down to local coordinate xi.
    let cell_mass = |k: usize, xi: f64| -> f64 {
        let da = a_r[k] - a_l[k];
        let a6 = 6.0 * (vals[k] - 0.5 * (a_l[k] + a_r[k]));
        src_dp[k] * (a_l[k] * xi + 0.5 * da * xi * xi + a6 * (0.5 * xi * xi - xi * xi * xi / 3.0))
    };

    // --- integrate over target cells ----------------------------------------
    let mut zt_lo = 0.0f64;
    let mut k = 0usize; // current source cell
    for (j, (&dpj, oj)) in dst_dp.iter().zip(out.iter_mut()).enumerate() {
        let zt_hi = if j == dst_dp.len() - 1 { total_src } else { (zt_lo + dpj).min(total_src) };
        let mut mass = 0.0;
        let mut lo = zt_lo;
        while lo < zt_hi - 1e-14 * total_src {
            // Advance to the source cell containing `lo`.
            while k + 1 < n && zs[k + 1] <= lo {
                k += 1;
            }
            let hi = zt_hi.min(zs[k + 1]).max(lo);
            let xi1 = ((lo - zs[k]) / src_dp[k]).clamp(0.0, 1.0);
            let xi2 = ((hi - zs[k]) / src_dp[k]).clamp(0.0, 1.0);
            mass += cell_mass(k, xi2) - cell_mass(k, xi1);
            if hi >= zs[k + 1] - 1e-300 && k + 1 < n {
                k += 1;
            }
            if hi <= lo {
                break;
            }
            lo = hi;
        }
        *oj = mass / dpj;
        zt_lo = zt_hi;
    }
    Ok(())
}

/// Remap a `[nlev][NPTS]` field in place for one element: for each GLL
/// point, the column moves from `src_dp` to `dst_dp` (both `[nlev][NPTS]`).
pub fn remap_field(
    nlev: usize,
    src_dp: &[f64],
    dst_dp: &[f64],
    field: &mut [f64],
) -> Result<(), RemapError> {
    let mut col_src = vec![0.0; nlev];
    let mut col_dst = vec![0.0; nlev];
    let mut col_val = vec![0.0; nlev];
    let mut col_out = vec![0.0; nlev];
    for p in 0..NPTS {
        for k in 0..nlev {
            col_src[k] = src_dp[k * NPTS + p];
            col_dst[k] = dst_dp[k * NPTS + p];
            col_val[k] = field[k * NPTS + p];
        }
        remap_column_ppm(&col_src, &col_val, &col_dst, &mut col_out)?;
        for k in 0..nlev {
            field[k * NPTS + p] = col_out[k];
        }
    }
    Ok(())
}

/// Scalar per-element vertical remap of the full prognostic set — the
/// reference path shared by the serial and distributed drivers. For every
/// GLL point: rebuild the target thicknesses from the reference hybrid
/// coordinate at the column's surface pressure, remap `u`/`v`/`t` (cell
/// averages) and every tracer (as mixing ratio, so tracer *mass* is
/// conserved), then install the target thicknesses as the new `dp3d`.
#[allow(clippy::too_many_arguments)]
pub fn remap_element_scalar(
    vert: &VertCoord,
    nlev: usize,
    qsize: usize,
    u: &mut [f64],
    v: &mut [f64],
    t: &mut [f64],
    dp3d: &mut [f64],
    qdp: &mut [f64],
    col_src: &mut [f64],
    col_dst: &mut [f64],
    col_val: &mut [f64],
    col_out: &mut [f64],
    scratch: &mut RemapScratch,
) -> Result<(), RemapError> {
    for p in 0..NPTS {
        let mut ps = vert.ptop();
        for k in 0..nlev {
            col_src[k] = dp3d[k * NPTS + p];
            ps += col_src[k];
        }
        for k in 0..nlev {
            col_dst[k] = vert.dp_ref(k, ps);
        }
        for field in [&mut *u, &mut *v, &mut *t] {
            for k in 0..nlev {
                col_val[k] = field[k * NPTS + p];
            }
            remap_column_ppm_with(col_src, col_val, col_dst, col_out, scratch)?;
            for k in 0..nlev {
                field[k * NPTS + p] = col_out[k];
            }
        }
        for q in 0..qsize {
            for k in 0..nlev {
                col_val[k] = qdp[(q * nlev + k) * NPTS + p] / col_src[k];
            }
            remap_column_ppm_with(col_src, col_val, col_dst, col_out, scratch)?;
            for k in 0..nlev {
                qdp[(q * nlev + k) * NPTS + p] = col_out[k] * col_dst[k];
            }
        }
        for k in 0..nlev {
            dp3d[k * NPTS + p] = col_dst[k];
        }
    }
    Ok(())
}

/// Transposed-column buffers for [`remap_element_blocked`]: each holds one
/// element field in `[NPTS][nlev]` (column-contiguous) order.
#[derive(Debug, Clone, Default)]
pub struct RemapColumns {
    /// Source thicknesses, transposed.
    pub src_t: Vec<f64>,
    /// Target thicknesses, transposed.
    pub dst_t: Vec<f64>,
    /// Field values, transposed.
    pub val_t: Vec<f64>,
    /// Remapped values, transposed.
    pub out_t: Vec<f64>,
}

impl RemapColumns {
    /// Buffers sized for columns of `nlev` cells.
    pub fn new(nlev: usize) -> Self {
        RemapColumns {
            src_t: vec![0.0; NPTS * nlev],
            dst_t: vec![0.0; NPTS * nlev],
            val_t: vec![0.0; NPTS * nlev],
            out_t: vec![0.0; NPTS * nlev],
        }
    }
}

/// Blocked per-element vertical remap: the host analogue of the paper's
/// register-communication transposition (Section 6). Each `[nlev][NPTS]`
/// field is turned into `[NPTS][nlev]` with the 4x4-tiled
/// [`transpose_blocked`], so the PPM reconstruction walks 16 *contiguous*
/// columns instead of stride-16 gathers, then transposed back. The per-column
/// arithmetic is byte-for-byte the scalar path's, so results are bitwise
/// identical to [`remap_element_scalar`].
#[allow(clippy::too_many_arguments)]
pub fn remap_element_blocked(
    vert: &VertCoord,
    nlev: usize,
    qsize: usize,
    u: &mut [f64],
    v: &mut [f64],
    t: &mut [f64],
    dp3d: &mut [f64],
    qdp: &mut [f64],
    cols: &mut RemapColumns,
    scratch: &mut RemapScratch,
) -> Result<(), RemapError> {
    transpose_blocked(dp3d, nlev, NPTS, &mut cols.src_t);
    for p in 0..NPTS {
        let col_src = &cols.src_t[p * nlev..(p + 1) * nlev];
        let mut ps = vert.ptop();
        for &d in col_src {
            ps += d;
        }
        for k in 0..nlev {
            cols.dst_t[p * nlev + k] = vert.dp_ref(k, ps);
        }
    }
    for field in [&mut *u, &mut *v, &mut *t] {
        transpose_blocked(field, nlev, NPTS, &mut cols.val_t);
        for p in 0..NPTS {
            let c = p * nlev..(p + 1) * nlev;
            remap_column_ppm_with(
                &cols.src_t[c.clone()],
                &cols.val_t[c.clone()],
                &cols.dst_t[c.clone()],
                &mut cols.out_t[c],
                scratch,
            )?;
        }
        transpose_blocked(&cols.out_t, NPTS, nlev, field);
    }
    for q in 0..qsize {
        let qf = &mut qdp[q * nlev * NPTS..(q + 1) * nlev * NPTS];
        transpose_blocked(qf, nlev, NPTS, &mut cols.val_t);
        for p in 0..NPTS {
            let c = p * nlev..(p + 1) * nlev;
            for k in 0..nlev {
                cols.val_t[p * nlev + k] /= cols.src_t[p * nlev + k];
            }
            remap_column_ppm_with(
                &cols.src_t[c.clone()],
                &cols.val_t[c.clone()],
                &cols.dst_t[c.clone()],
                &mut cols.out_t[c.clone()],
                scratch,
            )?;
            for k in 0..nlev {
                cols.out_t[p * nlev + k] *= cols.dst_t[p * nlev + k];
            }
        }
        transpose_blocked(&cols.out_t, NPTS, nlev, qf);
    }
    transpose_blocked(&cols.dst_t, NPTS, nlev, dp3d);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mass(dp: &[f64], v: &[f64]) -> f64 {
        dp.iter().zip(v).map(|(d, x)| d * x).sum()
    }

    #[test]
    fn constant_profile_is_exact() {
        let src = [100.0, 150.0, 200.0, 120.0];
        let vals = [7.5; 4];
        let dst = [140.0, 140.0, 140.0, 150.0];
        let mut out = [0.0; 4];
        remap_column_ppm(&src, &vals, &dst, &mut out).unwrap();
        for &o in &out {
            assert!((o - 7.5).abs() < 1e-12, "{o}");
        }
    }

    #[test]
    fn identity_remap_is_exact() {
        let src = [100.0, 150.0, 200.0, 120.0, 80.0];
        let vals = [1.0, 3.0, 2.0, 5.0, 4.0];
        let mut out = [0.0; 5];
        remap_column_ppm(&src, &vals, &src, &mut out).unwrap();
        for (o, v) in out.iter().zip(&vals) {
            assert!((o - v).abs() < 1e-12, "{o} vs {v}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let n = 24;
        let src: Vec<f64> = (0..n).map(|k| 80.0 + 10.0 * ((k * 7) % 5) as f64).collect();
        let total: f64 = src.iter().sum();
        let vals: Vec<f64> = (0..n).map(|k| ((k * 13) % 9) as f64 - 2.0).collect();
        // Target: uniform thicknesses with the same total.
        let dst = vec![total / n as f64; n];
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out).unwrap();
        let m0 = mass(&src, &vals);
        let m1 = mass(&dst, &out);
        assert!((m0 - m1).abs() < 1e-9 * m0.abs().max(1.0), "{m0} vs {m1}");
    }

    #[test]
    fn monotone_profile_stays_in_bounds() {
        let n = 16;
        let src: Vec<f64> = (0..n).map(|k| 100.0 + 5.0 * (k % 3) as f64).collect();
        let total: f64 = src.iter().sum();
        let vals: Vec<f64> = (0..n).map(|k| (k as f64).powi(2)).collect();
        let dst = vec![total / n as f64; n];
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out).unwrap();
        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        for &o in &out {
            assert!(o >= lo - 1e-9 && o <= hi + 1e-9, "{o} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn smooth_profile_remaps_accurately() {
        // sin profile on a fine column; remap to a shifted grid and compare
        // to the analytic cell averages.
        let n = 64;
        let src = vec![1.0; n];
        let f = |z: f64| (std::f64::consts::PI * z / n as f64).sin();
        // Analytic cell average over [a, b]: -(cos(pi b / n) - cos(pi a / n)) * n/pi / (b-a)
        let avg = |a: f64, b: f64| {
            let s = std::f64::consts::PI / n as f64;
            (-(b * s).cos() + (a * s).cos()) / s / (b - a)
        };
        let vals: Vec<f64> = (0..n).map(|k| avg(k as f64, k as f64 + 1.0)).collect();
        // Uneven target grid.
        let mut dst = Vec::new();
        let mut left = n as f64;
        for _ in 0..n - 1 {
            let d = left / (n as f64) * 0.9 + 0.05;
            dst.push(d);
            left -= d;
        }
        dst.push(left);
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out).unwrap();
        let mut z = 0.0;
        for (j, &o) in out.iter().enumerate() {
            let expect = avg(z, z + dst[j]);
            // Boundary cells use a one-sided first-order edge value; interior
            // cells carry the full PPM accuracy.
            let tol = if j < 2 || j >= n - 2 { 5e-3 } else { 5e-4 };
            assert!((o - expect).abs() < tol, "cell {j}: {o} vs {expect}");
            z += dst[j];
        }
        let _ = f;
    }

    #[test]
    fn reused_scratch_matches_fresh_allocation() {
        let n = 12;
        let src: Vec<f64> = (0..n).map(|k| 90.0 + ((k * 11) % 7) as f64).collect();
        let total: f64 = src.iter().sum();
        let dst = vec![total / n as f64; n];
        let mut scratch = RemapScratch::new(n);
        for round in 0..4 {
            let vals: Vec<f64> = (0..n).map(|k| ((k * 5 + round * 3) % 11) as f64).collect();
            let mut out_fresh = vec![0.0; n];
            let mut out_reused = vec![0.0; n];
            remap_column_ppm(&src, &vals, &dst, &mut out_fresh).unwrap();
            remap_column_ppm_with(&src, &vals, &dst, &mut out_reused, &mut scratch).unwrap();
            assert_eq!(out_fresh, out_reused, "round {round}");
        }
    }

    #[test]
    fn rejects_mismatched_totals() {
        let mut out = [0.0; 2];
        let err = remap_column_ppm(&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.5], &mut out).unwrap_err();
        assert_eq!(err, RemapError::TotalMismatch { src: 2.0, dst: 2.5 });
        assert!(format!("{err}").contains("column totals differ"));
        assert_eq!(out, [0.0; 2], "out must stay untouched on error");
    }

    #[test]
    fn rejects_collapsed_and_nan_layers_with_typed_errors() {
        let mut out = [0.0; 3];
        let err = remap_column_ppm(&[1.0, 0.0, 1.0], &[1.0; 3], &[1.0; 3], &mut out).unwrap_err();
        assert_eq!(err, RemapError::NonPositiveSource { layer: 1, dp: 0.0 });
        let err =
            remap_column_ppm(&[1.0, f64::NAN, 1.0], &[1.0; 3], &[1.0; 3], &mut out).unwrap_err();
        assert!(matches!(err, RemapError::NonPositiveSource { layer: 1, dp } if dp.is_nan()));
        let err = remap_column_ppm(&[1.0; 3], &[1.0; 3], &[1.0, -2.0, 4.0], &mut out).unwrap_err();
        assert_eq!(err, RemapError::NonPositiveTarget { layer: 1, dp: -2.0 });
        let err = remap_column_ppm(&[1.0; 3], &[1.0; 2], &[1.0; 3], &mut out).unwrap_err();
        assert_eq!(err, RemapError::LengthMismatch { vals: 2, src: 3, dst: 3, out: 3 });
    }

    #[test]
    fn blocked_element_remap_matches_scalar_bitwise() {
        use crate::vert::VertCoord;
        for (nlev, qsize) in [(1usize, 0usize), (3, 1), (26, 4), (128, 1)] {
            let vert = VertCoord::standard(nlev, 200.0);
            let n = nlev * NPTS;
            let mk = |s: usize, len: usize, lo: f64, hi: f64| -> Vec<f64> {
                (0..len)
                    .map(|i| lo + (hi - lo) * (((i * 2654435761 + s * 97) % 1009) as f64 / 1009.0))
                    .collect()
            };
            let u0 = mk(1, n, -30.0, 30.0);
            let v0 = mk(2, n, -30.0, 30.0);
            let t0 = mk(3, n, 220.0, 310.0);
            // Reference thicknesses, perturbed a little so the remap is
            // non-trivial but columns stay valid.
            let mut dp0 = vec![0.0; n];
            for p in 0..NPTS {
                for k in 0..nlev {
                    let jitter = 1.0 + 0.05 * ((((k * 31 + p * 7) % 11) as f64 - 5.0) / 5.0);
                    dp0[k * NPTS + p] = vert.dp_ref(k, 101325.0) * jitter;
                }
            }
            let q0 = mk(4, qsize * n, 0.0, 5.0);

            let (mut us, mut vs, mut ts, mut dps, mut qs) =
                (u0.clone(), v0.clone(), t0.clone(), dp0.clone(), q0.clone());
            let mut scratch = RemapScratch::new(nlev);
            let mut cs = vec![0.0; nlev];
            let mut cd = vec![0.0; nlev];
            let mut cv = vec![0.0; nlev];
            let mut co = vec![0.0; nlev];
            remap_element_scalar(
                &vert, nlev, qsize, &mut us, &mut vs, &mut ts, &mut dps, &mut qs, &mut cs,
                &mut cd, &mut cv, &mut co, &mut scratch,
            )
            .unwrap();

            let (mut ub, mut vb, mut tb, mut dpb, mut qb) = (u0, v0, t0, dp0, q0);
            let mut cols = RemapColumns::new(nlev);
            remap_element_blocked(
                &vert, nlev, qsize, &mut ub, &mut vb, &mut tb, &mut dpb, &mut qb, &mut cols,
                &mut scratch,
            )
            .unwrap();

            let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&us), bits(&ub), "u nlev={nlev} qsize={qsize}");
            assert_eq!(bits(&vs), bits(&vb), "v nlev={nlev} qsize={qsize}");
            assert_eq!(bits(&ts), bits(&tb), "t nlev={nlev} qsize={qsize}");
            assert_eq!(bits(&dps), bits(&dpb), "dp3d nlev={nlev} qsize={qsize}");
            assert_eq!(bits(&qs), bits(&qb), "qdp nlev={nlev} qsize={qsize}");
        }
    }

    #[test]
    fn remap_field_handles_all_points() {
        let nlev = 6;
        let mut src_dp = vec![0.0; nlev * NPTS];
        let mut dst_dp = vec![0.0; nlev * NPTS];
        let mut field = vec![0.0; nlev * NPTS];
        for p in 0..NPTS {
            for k in 0..nlev {
                src_dp[k * NPTS + p] = 100.0 + (p % 3) as f64 * 10.0 + k as f64;
                field[k * NPTS + p] = (k * k) as f64 + p as f64;
            }
            let total: f64 = (0..nlev).map(|k| src_dp[k * NPTS + p]).sum();
            for k in 0..nlev {
                dst_dp[k * NPTS + p] = total / nlev as f64;
            }
        }
        let before: Vec<f64> = (0..NPTS)
            .map(|p| (0..nlev).map(|k| src_dp[k * NPTS + p] * field[k * NPTS + p]).sum())
            .collect();
        remap_field(nlev, &src_dp, &dst_dp, &mut field).unwrap();
        for p in 0..NPTS {
            let after: f64 = (0..nlev).map(|k| dst_dp[k * NPTS + p] * field[k * NPTS + p]).sum();
            assert!((before[p] - after).abs() < 1e-9 * before[p].abs().max(1.0));
        }
    }
}
