//! `vertical_remap`: conservative remapping from the drifted Lagrangian
//! layers back to the reference hybrid coordinate.
//!
//! "compute the vertical flux needed to get back to reference eta-coordinate
//! levels" (Table 1). The vertically-Lagrangian dynamics lets `dp3d` evolve
//! freely; after each dynamics step the column is rebuilt on reference
//! levels with a monotone piecewise-parabolic (PPM) reconstruction, exactly
//! conserving column mass, momentum, internal energy and tracer mass.

use cubesphere::NPTS;

/// Reusable buffers for the PPM reconstruction of one column. A scratch
/// sized once for `nlev` serves every column of a run — the zero-alloc
/// remap path keeps one per scheduler worker.
#[derive(Debug, Clone, Default)]
pub struct RemapScratch {
    /// Source interface positions, `[n+1]`.
    zs: Vec<f64>,
    /// Interface values, `[n+1]`.
    ae: Vec<f64>,
    /// Limited left parabola edge per cell, `[n]`.
    a_l: Vec<f64>,
    /// Limited right parabola edge per cell, `[n]`.
    a_r: Vec<f64>,
}

impl RemapScratch {
    /// Scratch sized for columns of `nlev` cells.
    pub fn new(nlev: usize) -> Self {
        RemapScratch {
            zs: vec![0.0; nlev + 1],
            ae: vec![0.0; nlev + 1],
            a_l: vec![0.0; nlev],
            a_r: vec![0.0; nlev],
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.a_l.len() < n {
            self.zs.resize(n + 1, 0.0);
            self.ae.resize(n + 1, 0.0);
            self.a_l.resize(n, 0.0);
            self.a_r.resize(n, 0.0);
        }
    }
}

/// Conservatively remap one column (allocating convenience wrapper around
/// [`remap_column_ppm_with`]).
pub fn remap_column_ppm(src_dp: &[f64], vals: &[f64], dst_dp: &[f64], out: &mut [f64]) {
    let mut scratch = RemapScratch::new(src_dp.len());
    remap_column_ppm_with(src_dp, vals, dst_dp, out, &mut scratch);
}

/// Conservatively remap one column.
///
/// `src_dp[k]` / `vals[k]` are source thicknesses and cell averages (top
/// first); `dst_dp` are target thicknesses with the same column total (to
/// round-off); `out` receives the target averages. `scratch` buffers are
/// fully overwritten; a sufficiently-sized scratch makes the call
/// allocation-free.
///
/// # Panics
/// Panics if lengths disagree, any thickness is non-positive, or the column
/// totals differ by more than a relative `1e-10`.
pub fn remap_column_ppm_with(
    src_dp: &[f64],
    vals: &[f64],
    dst_dp: &[f64],
    out: &mut [f64],
    scratch: &mut RemapScratch,
) {
    let n = src_dp.len();
    assert_eq!(vals.len(), n);
    assert_eq!(dst_dp.len(), out.len());
    assert!(src_dp.iter().all(|&d| d > 0.0), "non-positive source thickness");
    assert!(dst_dp.iter().all(|&d| d > 0.0), "non-positive target thickness");
    let total_src: f64 = src_dp.iter().sum();
    let total_dst: f64 = dst_dp.iter().sum();
    assert!(
        (total_src - total_dst).abs() <= 1e-10 * total_src,
        "column totals differ: {total_src} vs {total_dst}"
    );

    scratch.ensure(n);
    let RemapScratch { zs, ae, a_l, a_r } = scratch;

    // Source interface positions (mass coordinate, 0 at the top).
    zs[0] = 0.0;
    for k in 0..n {
        zs[k + 1] = zs[k] + src_dp[k];
    }

    // --- PPM reconstruction -------------------------------------------------
    // Interface values by thickness-weighted interpolation.
    ae[0] = vals[0];
    ae[n] = vals[n - 1];
    for k in 1..n {
        let w = src_dp[k] / (src_dp[k - 1] + src_dp[k]);
        ae[k] = w * vals[k - 1] + (1.0 - w) * vals[k];
    }
    // Limited parabola coefficients per cell.
    for k in 0..n {
        let a = vals[k];
        let mut l = ae[k];
        let mut r = ae[k + 1];
        if (r - a) * (a - l) <= 0.0 {
            // Local extremum: flatten.
            l = a;
            r = a;
        } else {
            let d = r - l;
            let c = a - 0.5 * (l + r);
            if d * c > d * d / 6.0 {
                l = 3.0 * a - 2.0 * r;
            } else if -(d * d) / 6.0 > d * c {
                r = 3.0 * a - 2.0 * l;
            }
        }
        a_l[k] = l;
        a_r[k] = r;
    }

    // Mass within source cell k from its top down to local coordinate xi.
    let cell_mass = |k: usize, xi: f64| -> f64 {
        let da = a_r[k] - a_l[k];
        let a6 = 6.0 * (vals[k] - 0.5 * (a_l[k] + a_r[k]));
        src_dp[k] * (a_l[k] * xi + 0.5 * da * xi * xi + a6 * (0.5 * xi * xi - xi * xi * xi / 3.0))
    };

    // --- integrate over target cells ----------------------------------------
    let mut zt_lo = 0.0f64;
    let mut k = 0usize; // current source cell
    for (j, (&dpj, oj)) in dst_dp.iter().zip(out.iter_mut()).enumerate() {
        let zt_hi = if j == dst_dp.len() - 1 { total_src } else { (zt_lo + dpj).min(total_src) };
        let mut mass = 0.0;
        let mut lo = zt_lo;
        while lo < zt_hi - 1e-14 * total_src {
            // Advance to the source cell containing `lo`.
            while k + 1 < n && zs[k + 1] <= lo {
                k += 1;
            }
            let hi = zt_hi.min(zs[k + 1]).max(lo);
            let xi1 = ((lo - zs[k]) / src_dp[k]).clamp(0.0, 1.0);
            let xi2 = ((hi - zs[k]) / src_dp[k]).clamp(0.0, 1.0);
            mass += cell_mass(k, xi2) - cell_mass(k, xi1);
            if hi >= zs[k + 1] - 1e-300 && k + 1 < n {
                k += 1;
            }
            if hi <= lo {
                break;
            }
            lo = hi;
        }
        *oj = mass / dpj;
        zt_lo = zt_hi;
    }
}

/// Remap a `[nlev][NPTS]` field in place for one element: for each GLL
/// point, the column moves from `src_dp` to `dst_dp` (both `[nlev][NPTS]`).
pub fn remap_field(nlev: usize, src_dp: &[f64], dst_dp: &[f64], field: &mut [f64]) {
    let mut col_src = vec![0.0; nlev];
    let mut col_dst = vec![0.0; nlev];
    let mut col_val = vec![0.0; nlev];
    let mut col_out = vec![0.0; nlev];
    for p in 0..NPTS {
        for k in 0..nlev {
            col_src[k] = src_dp[k * NPTS + p];
            col_dst[k] = dst_dp[k * NPTS + p];
            col_val[k] = field[k * NPTS + p];
        }
        remap_column_ppm(&col_src, &col_val, &col_dst, &mut col_out);
        for k in 0..nlev {
            field[k * NPTS + p] = col_out[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mass(dp: &[f64], v: &[f64]) -> f64 {
        dp.iter().zip(v).map(|(d, x)| d * x).sum()
    }

    #[test]
    fn constant_profile_is_exact() {
        let src = [100.0, 150.0, 200.0, 120.0];
        let vals = [7.5; 4];
        let dst = [140.0, 140.0, 140.0, 150.0];
        let mut out = [0.0; 4];
        remap_column_ppm(&src, &vals, &dst, &mut out);
        for &o in &out {
            assert!((o - 7.5).abs() < 1e-12, "{o}");
        }
    }

    #[test]
    fn identity_remap_is_exact() {
        let src = [100.0, 150.0, 200.0, 120.0, 80.0];
        let vals = [1.0, 3.0, 2.0, 5.0, 4.0];
        let mut out = [0.0; 5];
        remap_column_ppm(&src, &vals, &src, &mut out);
        for (o, v) in out.iter().zip(&vals) {
            assert!((o - v).abs() < 1e-12, "{o} vs {v}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let n = 24;
        let src: Vec<f64> = (0..n).map(|k| 80.0 + 10.0 * ((k * 7) % 5) as f64).collect();
        let total: f64 = src.iter().sum();
        let vals: Vec<f64> = (0..n).map(|k| ((k * 13) % 9) as f64 - 2.0).collect();
        // Target: uniform thicknesses with the same total.
        let dst = vec![total / n as f64; n];
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out);
        let m0 = mass(&src, &vals);
        let m1 = mass(&dst, &out);
        assert!((m0 - m1).abs() < 1e-9 * m0.abs().max(1.0), "{m0} vs {m1}");
    }

    #[test]
    fn monotone_profile_stays_in_bounds() {
        let n = 16;
        let src: Vec<f64> = (0..n).map(|k| 100.0 + 5.0 * (k % 3) as f64).collect();
        let total: f64 = src.iter().sum();
        let vals: Vec<f64> = (0..n).map(|k| (k as f64).powi(2)).collect();
        let dst = vec![total / n as f64; n];
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out);
        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        for &o in &out {
            assert!(o >= lo - 1e-9 && o <= hi + 1e-9, "{o} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn smooth_profile_remaps_accurately() {
        // sin profile on a fine column; remap to a shifted grid and compare
        // to the analytic cell averages.
        let n = 64;
        let src = vec![1.0; n];
        let f = |z: f64| (std::f64::consts::PI * z / n as f64).sin();
        // Analytic cell average over [a, b]: -(cos(pi b / n) - cos(pi a / n)) * n/pi / (b-a)
        let avg = |a: f64, b: f64| {
            let s = std::f64::consts::PI / n as f64;
            (-(b * s).cos() + (a * s).cos()) / s / (b - a)
        };
        let vals: Vec<f64> = (0..n).map(|k| avg(k as f64, k as f64 + 1.0)).collect();
        // Uneven target grid.
        let mut dst = Vec::new();
        let mut left = n as f64;
        for _ in 0..n - 1 {
            let d = left / (n as f64) * 0.9 + 0.05;
            dst.push(d);
            left -= d;
        }
        dst.push(left);
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out);
        let mut z = 0.0;
        for (j, &o) in out.iter().enumerate() {
            let expect = avg(z, z + dst[j]);
            // Boundary cells use a one-sided first-order edge value; interior
            // cells carry the full PPM accuracy.
            let tol = if j < 2 || j >= n - 2 { 5e-3 } else { 5e-4 };
            assert!((o - expect).abs() < tol, "cell {j}: {o} vs {expect}");
            z += dst[j];
        }
        let _ = f;
    }

    #[test]
    fn reused_scratch_matches_fresh_allocation() {
        let n = 12;
        let src: Vec<f64> = (0..n).map(|k| 90.0 + ((k * 11) % 7) as f64).collect();
        let total: f64 = src.iter().sum();
        let dst = vec![total / n as f64; n];
        let mut scratch = RemapScratch::new(n);
        for round in 0..4 {
            let vals: Vec<f64> = (0..n).map(|k| ((k * 5 + round * 3) % 11) as f64).collect();
            let mut out_fresh = vec![0.0; n];
            let mut out_reused = vec![0.0; n];
            remap_column_ppm(&src, &vals, &dst, &mut out_fresh);
            remap_column_ppm_with(&src, &vals, &dst, &mut out_reused, &mut scratch);
            assert_eq!(out_fresh, out_reused, "round {round}");
        }
    }

    #[test]
    #[should_panic(expected = "column totals differ")]
    fn rejects_mismatched_totals() {
        let mut out = [0.0; 2];
        remap_column_ppm(&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.5], &mut out);
    }

    #[test]
    fn remap_field_handles_all_points() {
        let nlev = 6;
        let mut src_dp = vec![0.0; nlev * NPTS];
        let mut dst_dp = vec![0.0; nlev * NPTS];
        let mut field = vec![0.0; nlev * NPTS];
        for p in 0..NPTS {
            for k in 0..nlev {
                src_dp[k * NPTS + p] = 100.0 + (p % 3) as f64 * 10.0 + k as f64;
                field[k * NPTS + p] = (k * k) as f64 + p as f64;
            }
            let total: f64 = (0..nlev).map(|k| src_dp[k * NPTS + p]).sum();
            for k in 0..nlev {
                dst_dp[k * NPTS + p] = total / nlev as f64;
            }
        }
        let before: Vec<f64> = (0..NPTS)
            .map(|p| (0..nlev).map(|k| src_dp[k * NPTS + p] * field[k * NPTS + p]).sum())
            .collect();
        remap_field(nlev, &src_dp, &dst_dp, &mut field);
        for p in 0..NPTS {
            let after: f64 = (0..nlev).map(|k| dst_dp[k * NPTS + p] * field[k * NPTS + p]).sum();
            assert!((before[p] - after).abs() < 1e-9 * before[p].abs().max(1.0));
        }
    }
}
