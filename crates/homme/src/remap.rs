//! `vertical_remap`: conservative remapping from the drifted Lagrangian
//! layers back to the reference hybrid coordinate.
//!
//! "compute the vertical flux needed to get back to reference eta-coordinate
//! levels" (Table 1). The vertically-Lagrangian dynamics lets `dp3d` evolve
//! freely; after each dynamics step the column is rebuilt on reference
//! levels with a monotone piecewise-parabolic (PPM) reconstruction, exactly
//! conserving column mass, momentum, internal energy and tracer mass.

use crate::vert::VertCoord;
use cubesphere::NPTS;

/// A rejected remap precondition — a collapsed Lagrangian layer or a
/// mass-inconsistent column. These are *recoverable* state-health verdicts,
/// not programming errors: the distributed driver routes them through the
/// health plumbing into the rollback protocol instead of panicking a rank
/// thread (which would abort the whole process from under `try_run_ranks`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RemapError {
    /// Value/thickness slice lengths disagree.
    LengthMismatch {
        /// `vals.len()`.
        vals: usize,
        /// `src_dp.len()`.
        src: usize,
        /// `dst_dp.len()`.
        dst: usize,
        /// `out.len()`.
        out: usize,
    },
    /// A source layer has collapsed (`dp <= 0` or NaN).
    NonPositiveSource {
        /// Layer index (top first).
        layer: usize,
        /// The offending thickness.
        dp: f64,
    },
    /// A target layer is non-positive or NaN.
    NonPositiveTarget {
        /// Layer index (top first).
        layer: usize,
        /// The offending thickness.
        dp: f64,
    },
    /// Source and target column totals differ beyond relative `1e-10`.
    TotalMismatch {
        /// Source column total.
        src: f64,
        /// Target column total.
        dst: f64,
    },
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::LengthMismatch { vals, src, dst, out } => {
                write!(f, "remap length mismatch: vals {vals} vs src {src}, dst {dst} vs out {out}")
            }
            RemapError::NonPositiveSource { layer, dp } => {
                write!(f, "non-positive source thickness at layer {layer}: {dp}")
            }
            RemapError::NonPositiveTarget { layer, dp } => {
                write!(f, "non-positive target thickness at layer {layer}: {dp}")
            }
            RemapError::TotalMismatch { src, dst } => {
                write!(f, "column totals differ: {src} vs {dst}")
            }
        }
    }
}

impl std::error::Error for RemapError {}

/// Reusable buffers for the PPM reconstruction of one column. A scratch
/// sized once for `nlev` serves every column of a run — the zero-alloc
/// remap path keeps one per scheduler worker.
#[derive(Debug, Clone, Default)]
pub struct RemapScratch {
    /// Source interface positions, `[n+1]`.
    zs: Vec<f64>,
    /// Interface values, `[n+1]`.
    ae: Vec<f64>,
    /// Limited left parabola edge per cell, `[n]`.
    a_l: Vec<f64>,
    /// Limited right parabola edge per cell, `[n]`.
    a_r: Vec<f64>,
}

impl RemapScratch {
    /// Scratch sized for columns of `nlev` cells.
    pub fn new(nlev: usize) -> Self {
        RemapScratch {
            zs: vec![0.0; nlev + 1],
            ae: vec![0.0; nlev + 1],
            a_l: vec![0.0; nlev],
            a_r: vec![0.0; nlev],
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.a_l.len() < n {
            self.zs.resize(n + 1, 0.0);
            self.ae.resize(n + 1, 0.0);
            self.a_l.resize(n, 0.0);
            self.a_r.resize(n, 0.0);
        }
    }
}

/// Conservatively remap one column (allocating convenience wrapper around
/// [`remap_column_ppm_with`]).
pub fn remap_column_ppm(
    src_dp: &[f64],
    vals: &[f64],
    dst_dp: &[f64],
    out: &mut [f64],
) -> Result<(), RemapError> {
    let mut scratch = RemapScratch::new(src_dp.len());
    remap_column_ppm_with(src_dp, vals, dst_dp, out, &mut scratch)
}

/// Conservatively remap one column.
///
/// `src_dp[k]` / `vals[k]` are source thicknesses and cell averages (top
/// first); `dst_dp` are target thicknesses with the same column total (to
/// round-off); `out` receives the target averages. `scratch` buffers are
/// fully overwritten; a sufficiently-sized scratch makes the call
/// allocation-free.
///
/// # Errors
/// Returns a [`RemapError`] (leaving `out` untouched) if lengths disagree,
/// any thickness is non-positive or NaN, or the column totals differ by
/// more than a relative `1e-10`.
// Negated comparisons are deliberate: `!(d > 0.0)` is true for NaN where
// `d <= 0.0` is not, and NaN thicknesses must be rejected.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn remap_column_ppm_with(
    src_dp: &[f64],
    vals: &[f64],
    dst_dp: &[f64],
    out: &mut [f64],
    scratch: &mut RemapScratch,
) -> Result<(), RemapError> {
    let n = src_dp.len();
    if vals.len() != n || dst_dp.len() != out.len() {
        return Err(RemapError::LengthMismatch {
            vals: vals.len(),
            src: n,
            dst: dst_dp.len(),
            out: out.len(),
        });
    }
    // `!(d > 0.0)` (rather than `d <= 0.0`) also rejects NaN thicknesses.
    for (layer, &d) in src_dp.iter().enumerate() {
        if !(d > 0.0) {
            return Err(RemapError::NonPositiveSource { layer, dp: d });
        }
    }
    for (layer, &d) in dst_dp.iter().enumerate() {
        if !(d > 0.0) {
            return Err(RemapError::NonPositiveTarget { layer, dp: d });
        }
    }
    let total_src: f64 = src_dp.iter().sum();
    let total_dst: f64 = dst_dp.iter().sum();
    if !((total_src - total_dst).abs() <= 1e-10 * total_src) {
        return Err(RemapError::TotalMismatch { src: total_src, dst: total_dst });
    }

    scratch.ensure(n);
    let RemapScratch { zs, ae, a_l, a_r } = scratch;

    // Source interface positions (mass coordinate, 0 at the top).
    zs[0] = 0.0;
    for k in 0..n {
        zs[k + 1] = zs[k] + src_dp[k];
    }

    // --- PPM reconstruction -------------------------------------------------
    // Interface values by thickness-weighted interpolation.
    ae[0] = vals[0];
    ae[n] = vals[n - 1];
    for k in 1..n {
        let w = src_dp[k] / (src_dp[k - 1] + src_dp[k]);
        ae[k] = w * vals[k - 1] + (1.0 - w) * vals[k];
    }
    // Limited parabola coefficients per cell.
    for k in 0..n {
        let a = vals[k];
        let mut l = ae[k];
        let mut r = ae[k + 1];
        if (r - a) * (a - l) <= 0.0 {
            // Local extremum: flatten.
            l = a;
            r = a;
        } else {
            let d = r - l;
            let c = a - 0.5 * (l + r);
            if d * c > d * d / 6.0 {
                l = 3.0 * a - 2.0 * r;
            } else if -(d * d) / 6.0 > d * c {
                r = 3.0 * a - 2.0 * l;
            }
        }
        a_l[k] = l;
        a_r[k] = r;
    }

    // Mass within source cell k from its top down to local coordinate xi.
    let cell_mass = |k: usize, xi: f64| -> f64 {
        let da = a_r[k] - a_l[k];
        let a6 = 6.0 * (vals[k] - 0.5 * (a_l[k] + a_r[k]));
        src_dp[k] * (a_l[k] * xi + 0.5 * da * xi * xi + a6 * (0.5 * xi * xi - xi * xi * xi / 3.0))
    };

    // --- integrate over target cells ----------------------------------------
    let mut zt_lo = 0.0f64;
    let mut k = 0usize; // current source cell
    for (j, (&dpj, oj)) in dst_dp.iter().zip(out.iter_mut()).enumerate() {
        let zt_hi = if j == dst_dp.len() - 1 { total_src } else { (zt_lo + dpj).min(total_src) };
        let mut mass = 0.0;
        let mut lo = zt_lo;
        while lo < zt_hi - 1e-14 * total_src {
            // Advance to the source cell containing `lo`.
            while k + 1 < n && zs[k + 1] <= lo {
                k += 1;
            }
            let hi = zt_hi.min(zs[k + 1]).max(lo);
            let xi1 = ((lo - zs[k]) / src_dp[k]).clamp(0.0, 1.0);
            let xi2 = ((hi - zs[k]) / src_dp[k]).clamp(0.0, 1.0);
            mass += cell_mass(k, xi2) - cell_mass(k, xi1);
            if hi >= zs[k + 1] - 1e-300 && k + 1 < n {
                k += 1;
            }
            if hi <= lo {
                break;
            }
            lo = hi;
        }
        *oj = mass / dpj;
        zt_lo = zt_hi;
    }
    Ok(())
}

/// Remap a `[nlev][NPTS]` field in place for one element: for each GLL
/// point, the column moves from `src_dp` to `dst_dp` (both `[nlev][NPTS]`).
/// Allocating convenience wrapper around [`remap_field_with`]; callers on a
/// hot path should hold a plan and scratch and use that directly.
pub fn remap_field(
    nlev: usize,
    src_dp: &[f64],
    dst_dp: &[f64],
    field: &mut [f64],
) -> Result<(), RemapError> {
    let mut plan = ElemRemapPlan::new(nlev);
    let mut scratch = RemapApplyScratch::new(nlev);
    remap_field_with(nlev, src_dp, dst_dp, field, &mut plan, &mut scratch)
}

/// Scalar per-element vertical remap of the full prognostic set — the
/// reference path shared by the serial and distributed drivers. For every
/// GLL point: rebuild the target thicknesses from the reference hybrid
/// coordinate at the column's surface pressure, remap `u`/`v`/`t` (cell
/// averages) and every tracer (as mixing ratio, so tracer *mass* is
/// conserved), then install the target thicknesses as the new `dp3d`.
#[allow(clippy::too_many_arguments)]
pub fn remap_element_scalar(
    vert: &VertCoord,
    nlev: usize,
    qsize: usize,
    u: &mut [f64],
    v: &mut [f64],
    t: &mut [f64],
    dp3d: &mut [f64],
    qdp: &mut [f64],
    col_src: &mut [f64],
    col_dst: &mut [f64],
    col_val: &mut [f64],
    col_out: &mut [f64],
    scratch: &mut RemapScratch,
) -> Result<(), RemapError> {
    for p in 0..NPTS {
        let mut ps = vert.ptop();
        for k in 0..nlev {
            col_src[k] = dp3d[k * NPTS + p];
            ps += col_src[k];
        }
        for k in 0..nlev {
            col_dst[k] = vert.dp_ref(k, ps);
        }
        for field in [&mut *u, &mut *v, &mut *t] {
            for k in 0..nlev {
                col_val[k] = field[k * NPTS + p];
            }
            remap_column_ppm_with(col_src, col_val, col_dst, col_out, scratch)?;
            for k in 0..nlev {
                field[k * NPTS + p] = col_out[k];
            }
        }
        for q in 0..qsize {
            for k in 0..nlev {
                col_val[k] = qdp[(q * nlev + k) * NPTS + p] / col_src[k];
            }
            remap_column_ppm_with(col_src, col_val, col_dst, col_out, scratch)?;
            for k in 0..nlev {
                qdp[(q * nlev + k) * NPTS + p] = col_out[k] * col_dst[k];
            }
        }
        for k in 0..nlev {
            dp3d[k * NPTS + p] = col_dst[k];
        }
    }
    Ok(())
}

/// How many fields the planned remap streams through one geometry walk —
/// the same batch width [`crate::kernels::blocked::euler_stage_element_blocked`]
/// uses for its flux-divergence tracer chunks.
pub const REMAP_CHUNK: usize = 4;

/// One overlap interval between a source cell and a target cell of the
/// remap: target cell `j` of column `p` receives the mass of source cell
/// `k` between local coordinates `xi1` and `xi2`. The parabola geometry
/// polynomial `q(xi) = xi²/2 − xi³/3` is pre-evaluated at both endpoints —
/// it depends only on the grids, never on the field being remapped.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanSegment {
    /// Source cell index (top first).
    pub k: u32,
    /// Lower integration bound in the source cell's local coordinate.
    pub xi1: f64,
    /// Upper integration bound.
    pub xi2: f64,
    /// `0.5*xi1*xi1 - xi1*xi1*xi1/3.0` (the scalar oracle's expression).
    pub q1: f64,
    /// `0.5*xi2*xi2 - xi2*xi2*xi2/3.0`.
    pub q2: f64,
}

/// `q(xi)` exactly as [`remap_column_ppm_with`]'s `cell_mass` spells it, so
/// the pre-evaluated value is bit-identical to the oracle's inline one.
#[inline(always)]
fn ppm_q(xi: f64) -> f64 {
    0.5 * xi * xi - xi * xi * xi / 3.0
}

/// Per-element remap plan: everything about the PPM vertical remap that
/// depends only on the layer thicknesses `dp3d`, computed **once** per
/// element and reused for `u`, `v`, `T` and every tracer (the paper's §6
/// tracer-loop data reuse). Holds the target grid, the interface
/// interpolation weights, and the source/target overlap-interval map with
/// pre-evaluated parabola geometry, so remapping a field degenerates into
/// the coefficient-apply pass of
/// [`crate::kernels::blocked::remap_element_planned`].
///
/// Building the plan follows the paper's §6.3 three-stage scan structure in
/// its host form: a blocked local accumulate of the 16 columns' thickness
/// sums (surface pressure + totals), the per-column partial-sum chain for
/// the interface positions (kept sequential — reassociating it would break
/// the bitwise pin against the scalar oracle), and a fix-up pass that
/// derives the interpolation weights and overlap segments.
#[derive(Debug, Clone, Default)]
pub struct ElemRemapPlan {
    /// Column depth the plan is built for.
    pub(crate) nlev: usize,
    /// Target thicknesses, `[nlev][NPTS]`.
    pub(crate) dst_dp: Vec<f64>,
    /// Interface interpolation weight on `vals[k-1]`, `[nlev][NPTS]`
    /// (interface `k` in row `k`; row 0 unused).
    pub(crate) wl: Vec<f64>,
    /// `1.0 - wl`, the weight on `vals[k]`.
    pub(crate) wr: Vec<f64>,
    /// Overlap segments of all columns, concatenated in `p` order.
    pub(crate) segs: Vec<PlanSegment>,
    /// `seg_end[p*nlev + j]`: exclusive end in `segs` of target cell `j`
    /// of column `p` (cumulative across columns).
    pub(crate) seg_end: Vec<u32>,
    /// Source interface positions of the column being built, `[nlev+1]`.
    zs: Vec<f64>,
}

impl ElemRemapPlan {
    /// A plan sized for columns of `nlev` cells (no further allocation as
    /// long as it is rebuilt for the same or a smaller depth).
    pub fn new(nlev: usize) -> Self {
        let mut plan = ElemRemapPlan::default();
        plan.ensure(nlev);
        plan
    }

    fn ensure(&mut self, nlev: usize) {
        self.nlev = nlev;
        if self.dst_dp.len() < nlev * NPTS {
            self.dst_dp.resize(nlev * NPTS, 0.0);
            self.wl.resize(nlev * NPTS, 0.0);
            self.wr.resize(nlev * NPTS, 0.0);
            self.seg_end.resize(nlev * NPTS, 0);
            self.zs.resize(nlev + 1, 0.0);
            // Each walk iteration either finishes a target cell (nlev per
            // column) or crosses a source interface (nlev-1 per column), so
            // 2*nlev+2 segments per column bounds the walk with slack.
            self.segs.reserve(NPTS * (2 * nlev + 2));
        }
    }

    /// Build the plan for one element from the reference hybrid coordinate:
    /// the target grid is `vert.dp_ref` at each column's surface pressure,
    /// exactly as [`remap_element_scalar`] derives it.
    ///
    /// # Errors
    /// The same [`RemapError`] verdicts, in the same column/layer order, as
    /// the scalar oracle: source layers checked first, then target layers,
    /// then column totals, column-by-column.
    pub fn build(
        &mut self,
        vert: &VertCoord,
        nlev: usize,
        dp3d: &[f64],
    ) -> Result<(), RemapError> {
        self.ensure(nlev);
        debug_assert_eq!(dp3d.len(), nlev * NPTS);
        // Stage 1 — blocked local accumulate: per-lane running sums of the
        // source thicknesses give every column's surface pressure in one
        // pass (lanes stay independent; the per-lane addition order is the
        // scalar oracle's).
        let mut ps = [vert.ptop(); NPTS];
        for row in dp3d.chunks_exact(NPTS) {
            for (s, &d) in ps.iter_mut().zip(row) {
                *s += d;
            }
        }
        for k in 0..nlev {
            let dst = &mut self.dst_dp[k * NPTS..(k + 1) * NPTS];
            for (o, &s) in dst.iter_mut().zip(&ps) {
                *o = vert.dp_ref(k, s);
            }
        }
        build_plan_core(
            nlev,
            dp3d,
            &self.dst_dp,
            &mut self.wl,
            &mut self.wr,
            &mut self.zs,
            &mut self.segs,
            &mut self.seg_end,
        )
    }

    /// Build the plan for an explicitly given target grid (the
    /// [`remap_field`] shape). `src_dp`/`dst_dp` are `[nlev][NPTS]` arenas;
    /// the target thicknesses are copied into the plan.
    ///
    /// # Errors
    /// Same verdicts and ordering as [`ElemRemapPlan::build`].
    pub fn build_with_dst(
        &mut self,
        nlev: usize,
        src_dp: &[f64],
        dst_dp: &[f64],
    ) -> Result<(), RemapError> {
        self.ensure(nlev);
        debug_assert_eq!(src_dp.len(), nlev * NPTS);
        debug_assert_eq!(dst_dp.len(), nlev * NPTS);
        self.dst_dp[..nlev * NPTS].copy_from_slice(dst_dp);
        build_plan_core(
            nlev,
            src_dp,
            &self.dst_dp,
            &mut self.wl,
            &mut self.wr,
            &mut self.zs,
            &mut self.segs,
            &mut self.seg_end,
        )
    }
}

/// Shared plan construction: validate every column, scan the source
/// interface positions, record the overlap segments, and derive the
/// interface interpolation weights. Column order, check order and every
/// floating-point expression replicate [`remap_column_ppm_with`] so the
/// apply pass can be bitwise identical to the oracle.
#[allow(clippy::too_many_arguments, clippy::neg_cmp_op_on_partial_ord)]
fn build_plan_core(
    nlev: usize,
    src_dp: &[f64],
    dst_dp: &[f64],
    wl: &mut [f64],
    wr: &mut [f64],
    zs: &mut [f64],
    segs: &mut Vec<PlanSegment>,
    seg_end: &mut [u32],
) -> Result<(), RemapError> {
    segs.clear();
    for p in 0..NPTS {
        // --- validation, replicating the oracle's order ---------------------
        // `!(d > 0.0)` (rather than `d <= 0.0`) also rejects NaN thicknesses.
        for layer in 0..nlev {
            let d = src_dp[layer * NPTS + p];
            if !(d > 0.0) {
                return Err(RemapError::NonPositiveSource { layer, dp: d });
            }
        }
        for layer in 0..nlev {
            let d = dst_dp[layer * NPTS + p];
            if !(d > 0.0) {
                return Err(RemapError::NonPositiveTarget { layer, dp: d });
            }
        }
        let mut total_src = 0.0f64;
        let mut total_dst = 0.0f64;
        for k in 0..nlev {
            total_src += src_dp[k * NPTS + p];
        }
        for k in 0..nlev {
            total_dst += dst_dp[k * NPTS + p];
        }
        if !((total_src - total_dst).abs() <= 1e-10 * total_src) {
            return Err(RemapError::TotalMismatch { src: total_src, dst: total_dst });
        }

        // --- stage 2: the sequential partial-sum chain ----------------------
        // Source interface positions (mass coordinate, 0 at the top). The
        // carry is deliberately sequential: a reassociated parallel scan
        // would change low-order bits and break the oracle pin.
        zs[0] = 0.0;
        for k in 0..nlev {
            zs[k + 1] = zs[k] + src_dp[k * NPTS + p];
        }

        // --- stage 3: fix-up — record the overlap segments ------------------
        // The walk is character-for-character the oracle's integration loop,
        // with `cell_mass` evaluations replaced by segment records.
        let mut zt_lo = 0.0f64;
        let mut k = 0usize;
        for j in 0..nlev {
            let dpj = dst_dp[j * NPTS + p];
            let zt_hi = if j == nlev - 1 { total_src } else { (zt_lo + dpj).min(total_src) };
            let mut lo = zt_lo;
            while lo < zt_hi - 1e-14 * total_src {
                while k + 1 < nlev && zs[k + 1] <= lo {
                    k += 1;
                }
                let hi = zt_hi.min(zs[k + 1]).max(lo);
                let xi1 = ((lo - zs[k]) / src_dp[k * NPTS + p]).clamp(0.0, 1.0);
                let xi2 = ((hi - zs[k]) / src_dp[k * NPTS + p]).clamp(0.0, 1.0);
                segs.push(PlanSegment { k: k as u32, xi1, xi2, q1: ppm_q(xi1), q2: ppm_q(xi2) });
                if hi >= zs[k + 1] - 1e-300 && k + 1 < nlev {
                    k += 1;
                }
                if hi <= lo {
                    break;
                }
                lo = hi;
            }
            seg_end[p * nlev + j] = segs.len() as u32;
            zt_lo = zt_hi;
        }
    }
    debug_assert!(segs.len() <= NPTS * (2 * nlev + 2), "segment bound exceeded: {}", segs.len());

    // Interface interpolation weights (one division per interface for the
    // whole element, where the oracle pays it once per interface per field).
    for k in 1..nlev {
        let o = k * NPTS;
        for p in 0..NPTS {
            let w = src_dp[o + p] / (src_dp[o - NPTS + p] + src_dp[o + p]);
            wl[o + p] = w;
            wr[o + p] = 1.0 - w;
        }
    }
    Ok(())
}

/// Apply-pass arenas of the planned remap: PPM interface values and limited
/// parabola coefficients for up to [`REMAP_CHUNK`] fields at once, plus the
/// tracer mixing-ratio buffer. Sized once, reused every element.
#[derive(Debug, Clone, Default)]
pub struct RemapApplyScratch {
    /// Interface values of the field being reconstructed, `[nlev+1][NPTS]`.
    pub(crate) ae: Vec<f64>,
    /// Tracer mixing ratios, `[REMAP_CHUNK][nlev][NPTS]`.
    pub(crate) val: Vec<f64>,
    /// Limited left parabola edge per cell, `[REMAP_CHUNK][nlev][NPTS]`.
    pub(crate) a_l: Vec<f64>,
    /// Half the limited edge difference `0.5*(a_r - a_l)`.
    pub(crate) hda: Vec<f64>,
    /// Parabola curvature coefficient `6*(a - 0.5*(a_l + a_r))`.
    pub(crate) a6: Vec<f64>,
}

impl RemapApplyScratch {
    /// Scratch sized for columns of `nlev` cells.
    pub fn new(nlev: usize) -> Self {
        let mut s = RemapApplyScratch::default();
        s.ensure(nlev);
        s
    }

    pub(crate) fn ensure(&mut self, nlev: usize) {
        if self.ae.len() < (nlev + 1) * NPTS {
            self.ae.resize((nlev + 1) * NPTS, 0.0);
            self.val.resize(REMAP_CHUNK * nlev * NPTS, 0.0);
            self.a_l.resize(REMAP_CHUNK * nlev * NPTS, 0.0);
            self.hda.resize(REMAP_CHUNK * nlev * NPTS, 0.0);
            self.a6.resize(REMAP_CHUNK * nlev * NPTS, 0.0);
        }
    }
}

/// Scratch-reusing [`remap_field`]: build the plan for the given grids and
/// run the planned apply pass on the single field. Allocation-free once
/// `plan` and `scratch` are sized for `nlev` (the counting-allocator gate
/// enforces this); bitwise identical to the per-column oracle path.
pub fn remap_field_with(
    nlev: usize,
    src_dp: &[f64],
    dst_dp: &[f64],
    field: &mut [f64],
    plan: &mut ElemRemapPlan,
    scratch: &mut RemapApplyScratch,
) -> Result<(), RemapError> {
    plan.build_with_dst(nlev, src_dp, dst_dp)?;
    crate::kernels::blocked::remap_field_planned(plan, nlev, src_dp, field, scratch);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mass(dp: &[f64], v: &[f64]) -> f64 {
        dp.iter().zip(v).map(|(d, x)| d * x).sum()
    }

    #[test]
    fn constant_profile_is_exact() {
        let src = [100.0, 150.0, 200.0, 120.0];
        let vals = [7.5; 4];
        let dst = [140.0, 140.0, 140.0, 150.0];
        let mut out = [0.0; 4];
        remap_column_ppm(&src, &vals, &dst, &mut out).unwrap();
        for &o in &out {
            assert!((o - 7.5).abs() < 1e-12, "{o}");
        }
    }

    #[test]
    fn identity_remap_is_exact() {
        let src = [100.0, 150.0, 200.0, 120.0, 80.0];
        let vals = [1.0, 3.0, 2.0, 5.0, 4.0];
        let mut out = [0.0; 5];
        remap_column_ppm(&src, &vals, &src, &mut out).unwrap();
        for (o, v) in out.iter().zip(&vals) {
            assert!((o - v).abs() < 1e-12, "{o} vs {v}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let n = 24;
        let src: Vec<f64> = (0..n).map(|k| 80.0 + 10.0 * ((k * 7) % 5) as f64).collect();
        let total: f64 = src.iter().sum();
        let vals: Vec<f64> = (0..n).map(|k| ((k * 13) % 9) as f64 - 2.0).collect();
        // Target: uniform thicknesses with the same total.
        let dst = vec![total / n as f64; n];
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out).unwrap();
        let m0 = mass(&src, &vals);
        let m1 = mass(&dst, &out);
        assert!((m0 - m1).abs() < 1e-9 * m0.abs().max(1.0), "{m0} vs {m1}");
    }

    #[test]
    fn monotone_profile_stays_in_bounds() {
        let n = 16;
        let src: Vec<f64> = (0..n).map(|k| 100.0 + 5.0 * (k % 3) as f64).collect();
        let total: f64 = src.iter().sum();
        let vals: Vec<f64> = (0..n).map(|k| (k as f64).powi(2)).collect();
        let dst = vec![total / n as f64; n];
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out).unwrap();
        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        for &o in &out {
            assert!(o >= lo - 1e-9 && o <= hi + 1e-9, "{o} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn smooth_profile_remaps_accurately() {
        // sin profile on a fine column; remap to a shifted grid and compare
        // to the analytic cell averages.
        let n = 64;
        let src = vec![1.0; n];
        let f = |z: f64| (std::f64::consts::PI * z / n as f64).sin();
        // Analytic cell average over [a, b]: -(cos(pi b / n) - cos(pi a / n)) * n/pi / (b-a)
        let avg = |a: f64, b: f64| {
            let s = std::f64::consts::PI / n as f64;
            (-(b * s).cos() + (a * s).cos()) / s / (b - a)
        };
        let vals: Vec<f64> = (0..n).map(|k| avg(k as f64, k as f64 + 1.0)).collect();
        // Uneven target grid.
        let mut dst = Vec::new();
        let mut left = n as f64;
        for _ in 0..n - 1 {
            let d = left / (n as f64) * 0.9 + 0.05;
            dst.push(d);
            left -= d;
        }
        dst.push(left);
        let mut out = vec![0.0; n];
        remap_column_ppm(&src, &vals, &dst, &mut out).unwrap();
        let mut z = 0.0;
        for (j, &o) in out.iter().enumerate() {
            let expect = avg(z, z + dst[j]);
            // Boundary cells use a one-sided first-order edge value; interior
            // cells carry the full PPM accuracy.
            let tol = if j < 2 || j >= n - 2 { 5e-3 } else { 5e-4 };
            assert!((o - expect).abs() < tol, "cell {j}: {o} vs {expect}");
            z += dst[j];
        }
        let _ = f;
    }

    #[test]
    fn reused_scratch_matches_fresh_allocation() {
        let n = 12;
        let src: Vec<f64> = (0..n).map(|k| 90.0 + ((k * 11) % 7) as f64).collect();
        let total: f64 = src.iter().sum();
        let dst = vec![total / n as f64; n];
        let mut scratch = RemapScratch::new(n);
        for round in 0..4 {
            let vals: Vec<f64> = (0..n).map(|k| ((k * 5 + round * 3) % 11) as f64).collect();
            let mut out_fresh = vec![0.0; n];
            let mut out_reused = vec![0.0; n];
            remap_column_ppm(&src, &vals, &dst, &mut out_fresh).unwrap();
            remap_column_ppm_with(&src, &vals, &dst, &mut out_reused, &mut scratch).unwrap();
            assert_eq!(out_fresh, out_reused, "round {round}");
        }
    }

    #[test]
    fn rejects_mismatched_totals() {
        let mut out = [0.0; 2];
        let err = remap_column_ppm(&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.5], &mut out).unwrap_err();
        assert_eq!(err, RemapError::TotalMismatch { src: 2.0, dst: 2.5 });
        assert!(format!("{err}").contains("column totals differ"));
        assert_eq!(out, [0.0; 2], "out must stay untouched on error");
    }

    #[test]
    fn rejects_collapsed_and_nan_layers_with_typed_errors() {
        let mut out = [0.0; 3];
        let err = remap_column_ppm(&[1.0, 0.0, 1.0], &[1.0; 3], &[1.0; 3], &mut out).unwrap_err();
        assert_eq!(err, RemapError::NonPositiveSource { layer: 1, dp: 0.0 });
        let err =
            remap_column_ppm(&[1.0, f64::NAN, 1.0], &[1.0; 3], &[1.0; 3], &mut out).unwrap_err();
        assert!(matches!(err, RemapError::NonPositiveSource { layer: 1, dp } if dp.is_nan()));
        let err = remap_column_ppm(&[1.0; 3], &[1.0; 3], &[1.0, -2.0, 4.0], &mut out).unwrap_err();
        assert_eq!(err, RemapError::NonPositiveTarget { layer: 1, dp: -2.0 });
        let err = remap_column_ppm(&[1.0; 3], &[1.0; 2], &[1.0; 3], &mut out).unwrap_err();
        assert_eq!(err, RemapError::LengthMismatch { vals: 2, src: 3, dst: 3, out: 3 });
    }

    #[test]
    fn planned_element_remap_matches_scalar_bitwise() {
        use crate::kernels::blocked::remap_element_planned;
        use crate::vert::VertCoord;
        for (nlev, qsize) in [(1usize, 0usize), (2, 1), (3, 1), (26, 4), (128, 1)] {
            let vert = VertCoord::standard(nlev, 200.0);
            let n = nlev * NPTS;
            let mk = |s: usize, len: usize, lo: f64, hi: f64| -> Vec<f64> {
                (0..len)
                    .map(|i| lo + (hi - lo) * (((i * 2654435761 + s * 97) % 1009) as f64 / 1009.0))
                    .collect()
            };
            let u0 = mk(1, n, -30.0, 30.0);
            let v0 = mk(2, n, -30.0, 30.0);
            let t0 = mk(3, n, 220.0, 310.0);
            // Reference thicknesses, perturbed a little so the remap is
            // non-trivial but columns stay valid.
            let mut dp0 = vec![0.0; n];
            for p in 0..NPTS {
                for k in 0..nlev {
                    let jitter = 1.0 + 0.05 * ((((k * 31 + p * 7) % 11) as f64 - 5.0) / 5.0);
                    dp0[k * NPTS + p] = vert.dp_ref(k, 101325.0) * jitter;
                }
            }
            let q0 = mk(4, qsize * n, 0.0, 5.0);

            let (mut us, mut vs, mut ts, mut dps, mut qs) =
                (u0.clone(), v0.clone(), t0.clone(), dp0.clone(), q0.clone());
            let mut scratch = RemapScratch::new(nlev);
            let mut cs = vec![0.0; nlev];
            let mut cd = vec![0.0; nlev];
            let mut cv = vec![0.0; nlev];
            let mut co = vec![0.0; nlev];
            remap_element_scalar(
                &vert, nlev, qsize, &mut us, &mut vs, &mut ts, &mut dps, &mut qs, &mut cs,
                &mut cd, &mut cv, &mut co, &mut scratch,
            )
            .unwrap();

            let (mut ub, mut vb, mut tb, mut dpb, mut qb) = (u0, v0, t0, dp0, q0);
            let mut plan = ElemRemapPlan::new(nlev);
            let mut apply = RemapApplyScratch::new(nlev);
            plan.build(&vert, nlev, &dpb).unwrap();
            remap_element_planned(
                &plan, nlev, qsize, &mut ub, &mut vb, &mut tb, &mut dpb, &mut qb, &mut apply,
            );

            let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&us), bits(&ub), "u nlev={nlev} qsize={qsize}");
            assert_eq!(bits(&vs), bits(&vb), "v nlev={nlev} qsize={qsize}");
            assert_eq!(bits(&ts), bits(&tb), "t nlev={nlev} qsize={qsize}");
            assert_eq!(bits(&dps), bits(&dpb), "dp3d nlev={nlev} qsize={qsize}");
            assert_eq!(bits(&qs), bits(&qb), "qdp nlev={nlev} qsize={qsize}");
        }
    }

    #[test]
    fn plan_build_reports_oracle_identical_errors() {
        use crate::vert::VertCoord;
        let nlev = 4;
        let vert = VertCoord::standard(nlev, 200.0);
        let mut plan = ElemRemapPlan::new(nlev);
        let mut dp = vec![0.0; nlev * NPTS];
        for p in 0..NPTS {
            for k in 0..nlev {
                dp[k * NPTS + p] = vert.dp_ref(k, 101325.0);
            }
        }
        plan.build(&vert, nlev, &dp).unwrap();

        // Collapsed layer: first failing (p, layer) in the oracle's order.
        let mut bad = dp.clone();
        bad[2 * NPTS + 5] = 0.0;
        bad[NPTS + 9] = -3.0;
        let err = plan.build(&vert, nlev, &bad).unwrap_err();
        assert_eq!(err, RemapError::NonPositiveSource { layer: 2, dp: 0.0 });

        // NaN layer rejected (a NaN surface pressure also poisons the
        // target grid, but the source check fires first, like the oracle).
        let mut bad = dp.clone();
        bad[3 * NPTS + 1] = f64::NAN;
        let err = plan.build(&vert, nlev, &bad).unwrap_err();
        assert!(matches!(err, RemapError::NonPositiveSource { layer: 3, dp } if dp.is_nan()));

        // Mismatched totals through the explicit-target entry point.
        let mut dst = dp.clone();
        for k in 0..nlev {
            dst[k * NPTS] *= 1.5;
        }
        let err = plan.build_with_dst(nlev, &dp, &dst).unwrap_err();
        assert!(matches!(err, RemapError::TotalMismatch { .. }));
    }

    #[test]
    fn remap_field_with_matches_per_column_oracle_bitwise() {
        let nlev = 13;
        let mut src_dp = vec![0.0; nlev * NPTS];
        let mut dst_dp = vec![0.0; nlev * NPTS];
        let mut field = vec![0.0; nlev * NPTS];
        for p in 0..NPTS {
            for k in 0..nlev {
                src_dp[k * NPTS + p] = 100.0 + ((k * 17 + p * 5) % 13) as f64;
                field[k * NPTS + p] = ((k * 7 + p * 3) % 19) as f64 - 6.0;
            }
            let total: f64 = (0..nlev).map(|k| src_dp[k * NPTS + p]).sum();
            for k in 0..nlev {
                dst_dp[k * NPTS + p] = total / nlev as f64;
            }
        }
        // Per-column oracle.
        let mut expect = field.clone();
        let mut cs = vec![0.0; nlev];
        let mut cd = vec![0.0; nlev];
        let mut cv = vec![0.0; nlev];
        let mut co = vec![0.0; nlev];
        for p in 0..NPTS {
            for k in 0..nlev {
                cs[k] = src_dp[k * NPTS + p];
                cd[k] = dst_dp[k * NPTS + p];
                cv[k] = expect[k * NPTS + p];
            }
            remap_column_ppm(&cs, &cv, &cd, &mut co).unwrap();
            for k in 0..nlev {
                expect[k * NPTS + p] = co[k];
            }
        }
        let mut plan = ElemRemapPlan::new(nlev);
        let mut scratch = RemapApplyScratch::new(nlev);
        remap_field_with(nlev, &src_dp, &dst_dp, &mut field, &mut plan, &mut scratch).unwrap();
        let bits = |x: &[f64]| x.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&expect), bits(&field));
    }

    #[test]
    fn remap_field_handles_all_points() {
        let nlev = 6;
        let mut src_dp = vec![0.0; nlev * NPTS];
        let mut dst_dp = vec![0.0; nlev * NPTS];
        let mut field = vec![0.0; nlev * NPTS];
        for p in 0..NPTS {
            for k in 0..nlev {
                src_dp[k * NPTS + p] = 100.0 + (p % 3) as f64 * 10.0 + k as f64;
                field[k * NPTS + p] = (k * k) as f64 + p as f64;
            }
            let total: f64 = (0..nlev).map(|k| src_dp[k * NPTS + p]).sum();
            for k in 0..nlev {
                dst_dp[k * NPTS + p] = total / nlev as f64;
            }
        }
        let before: Vec<f64> = (0..NPTS)
            .map(|p| (0..nlev).map(|k| src_dp[k * NPTS + p] * field[k * NPTS + p]).sum())
            .collect();
        remap_field(nlev, &src_dp, &dst_dp, &mut field).unwrap();
        for p in 0..NPTS {
            let after: f64 = (0..nlev).map(|k| dst_dp[k * NPTS + p] * field[k * NPTS + p]).sum();
            assert!((before[p] - after).abs() < 1e-9 * before[p].abs().max(1.0));
        }
    }
}
