//! Persistent per-step scratch owned by [`crate::prim::Dycore`] (and, as
//! [`DistWorkspace`], by the per-rank [`crate::dist::DistDycore`]).
//!
//! Every buffer the step pipeline needs — RK stage fields, RHS column
//! temporaries, hyperviscosity and sponge temporaries, tracer stage
//! double-buffers, remap columns — is allocated once here and reused, so
//! `Dycore::step` performs no heap allocation after construction (enforced
//! by the `alloc_regression` integration test).
//!
//! Reuse contract: no buffer carries information between steps. Each one
//! is either fully overwritten before it is read (`copy_from` /
//! full-range writes) or is write-only scratch whose every slot is
//! written before use. The `state_arena` proptest drives this by checking
//! that a dirtied workspace reproduces a fresh one bitwise.

use crate::bndry::ExchangeBuffers;
use crate::remap::{ElemRemapPlan, RemapApplyScratch, RemapScratch};
use crate::rhs::{ElemTend, RhsScratch};
use crate::sched::PerWorker;
use crate::state::{Dims, State};
use cubesphere::NPTS;

/// The four dynamics prognostics as flat arenas (`[nelem][nlev][NPTS]`
/// each) — an RK stage buffer without the tracer/surface fields.
#[derive(Debug, Clone)]
pub struct DynFields {
    /// Eastward wind arena.
    pub u: Vec<f64>,
    /// Northward wind arena.
    pub v: Vec<f64>,
    /// Temperature arena.
    pub t: Vec<f64>,
    /// Layer thickness arena.
    pub dp3d: Vec<f64>,
}

impl DynFields {
    /// Zeroed buffers of `len` values per field.
    pub fn zeros(len: usize) -> Self {
        DynFields { u: vec![0.0; len], v: vec![0.0; len], t: vec![0.0; len], dp3d: vec![0.0; len] }
    }

    /// Overwrite from the state arena's dynamics fields.
    pub fn copy_from_state(&mut self, st: &State) {
        self.u.copy_from_slice(&st.u);
        self.v.copy_from_slice(&st.v);
        self.t.copy_from_slice(&st.t);
        self.dp3d.copy_from_slice(&st.dp3d);
    }
}

/// Private scratch of one scheduler worker: tendency buffers, RHS column
/// temporaries and remap columns. All fields are fully overwritten per
/// element, so a slot can serve any element of any step.
#[derive(Debug, Clone)]
pub struct WorkerScratch {
    /// Per-element tendency of the RK substep.
    pub tend: ElemTend,
    /// Column temporaries of `element_rhs_raw`.
    pub rhs: RhsScratch,
    /// PPM reconstruction buffers.
    pub remap: RemapScratch,
    /// Source thickness column, `[nlev]`.
    pub col_src: Vec<f64>,
    /// Target thickness column, `[nlev]`.
    pub col_dst: Vec<f64>,
    /// Field value column, `[nlev]`.
    pub col_val: Vec<f64>,
    /// Remapped value column, `[nlev]`.
    pub col_out: Vec<f64>,
    /// Per-element remap plan (geometry + PPM weights), rebuilt from
    /// `dp3d` for each element and reused across all fields and tracers.
    pub plan: ElemRemapPlan,
    /// Coefficient arenas of the planned remap's apply pass.
    pub apply: RemapApplyScratch,
}

impl WorkerScratch {
    /// Scratch sized for `dims`.
    pub fn new(dims: Dims) -> Self {
        WorkerScratch {
            tend: ElemTend::zeros(dims),
            rhs: RhsScratch::new(dims.nlev),
            remap: RemapScratch::new(dims.nlev),
            col_src: vec![0.0; dims.nlev],
            col_dst: vec![0.0; dims.nlev],
            col_val: vec![0.0; dims.nlev],
            col_out: vec![0.0; dims.nlev],
            plan: ElemRemapPlan::new(dims.nlev),
            apply: RemapApplyScratch::new(dims.nlev),
        }
    }
}

/// All step-persistent buffers of the dycore pipeline.
#[derive(Debug)]
pub struct StepWorkspace {
    /// RK base state `u_0`.
    pub base: DynFields,
    /// RK stage being evaluated `u_{i-1}`.
    pub stage: DynFields,
    /// RK stage being produced `u_i`.
    pub next: DynFields,
    /// Hyperviscosity Laplacian input/output (full depth).
    pub hyp: DynFields,
    /// Sponge-layer `u` temporary, `[nelem][sponge_layers][NPTS]`.
    pub sponge_u: Vec<f64>,
    /// Sponge-layer `v` temporary.
    pub sponge_v: Vec<f64>,
    /// Sponge-layer `T` temporary.
    pub sponge_t: Vec<f64>,
    /// Tracer stage `q_0` (step input), `[nelem][qsize][nlev][NPTS]`.
    pub qdp0: Vec<f64>,
    /// Tracer stage 1 buffer.
    pub q1: Vec<f64>,
    /// Tracer stage 2 buffer.
    pub q2: Vec<f64>,
    /// Tracer substep output buffer.
    pub qtmp: Vec<f64>,
    /// One private scratch per scheduler worker.
    pub workers: PerWorker<WorkerScratch>,
}

impl StepWorkspace {
    /// Buffers sized for `nelem` elements, `dims`, a sponge of
    /// `sponge_layers` levels and `nworkers` scheduler workers.
    pub fn new(dims: Dims, nelem: usize, sponge_layers: usize, nworkers: usize) -> Self {
        let fl = nelem * dims.field_len();
        let tl = nelem * dims.tracer_len();
        let sl = nelem * sponge_layers.min(dims.nlev) * NPTS;
        StepWorkspace {
            base: DynFields::zeros(fl),
            stage: DynFields::zeros(fl),
            next: DynFields::zeros(fl),
            hyp: DynFields::zeros(fl),
            sponge_u: vec![0.0; sl],
            sponge_v: vec![0.0; sl],
            sponge_t: vec![0.0; sl],
            qdp0: vec![0.0; tl],
            q1: vec![0.0; tl],
            q2: vec![0.0; tl],
            qtmp: vec![0.0; tl],
            workers: PerWorker::new(nworkers, || WorkerScratch::new(dims)),
        }
    }
}

/// Persistent per-rank scratch owned by [`crate::dist::DistDycore`] — the
/// distributed analog of [`StepWorkspace`]. Holds the RK stage arenas
/// (sized for the rank's owned elements), hyperviscosity/sponge/tracer
/// temporaries, the per-element compute scratch (the distributed driver
/// runs its element loop serially within the rank, so one slot suffices),
/// and the aggregated-exchange buffers. Allocated once at construction;
/// a distributed step performs zero heap allocations after warm-up
/// (enforced by the `dist_alloc` integration test).
#[derive(Debug)]
pub struct DistWorkspace {
    /// RK base state `u_0`.
    pub base: DynFields,
    /// RK stage being evaluated `u_{i-1}`.
    pub stage: DynFields,
    /// RK stage being produced `u_i`.
    pub next: DynFields,
    /// Hyperviscosity Laplacian input/output (full depth).
    pub hyp: DynFields,
    /// Sponge-layer `u` temporary, `[nelem][sponge_layers][NPTS]`.
    pub sponge_u: Vec<f64>,
    /// Sponge-layer `v` temporary.
    pub sponge_v: Vec<f64>,
    /// Sponge-layer `T` temporary.
    pub sponge_t: Vec<f64>,
    /// Tracer stage `q_0` (step input), `[nelem][qsize][nlev][NPTS]`.
    pub qdp0: Vec<f64>,
    /// Tracer stage 1 buffer.
    pub q1: Vec<f64>,
    /// Tracer stage 2 buffer.
    pub q2: Vec<f64>,
    /// Tracer substep output buffer.
    pub qtmp: Vec<f64>,
    /// Per-element compute scratch.
    pub scratch: WorkerScratch,
    /// Aggregated boundary-exchange pack/accumulate buffers.
    pub ex: ExchangeBuffers,
}

impl DistWorkspace {
    /// Buffers sized for this rank's `nelem` owned elements, `dims`, and a
    /// sponge of `sponge_layers` levels.
    pub fn new(dims: Dims, nelem: usize, sponge_layers: usize) -> Self {
        let fl = nelem * dims.field_len();
        let tl = nelem * dims.tracer_len();
        let sl = nelem * sponge_layers.min(dims.nlev) * NPTS;
        DistWorkspace {
            base: DynFields::zeros(fl),
            stage: DynFields::zeros(fl),
            next: DynFields::zeros(fl),
            hyp: DynFields::zeros(fl),
            sponge_u: vec![0.0; sl],
            sponge_v: vec![0.0; sl],
            sponge_t: vec![0.0; sl],
            qdp0: vec![0.0; tl],
            q1: vec![0.0; tl],
            q2: vec![0.0; tl],
            qtmp: vec![0.0; tl],
            scratch: WorkerScratch::new(dims),
            ex: ExchangeBuffers::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_workspace_buffers_are_sized_for_the_rank() {
        let dims = Dims { nlev: 4, qsize: 2 };
        let ws = DistWorkspace::new(dims, 5, 3);
        assert_eq!(ws.stage.v.len(), 5 * 4 * NPTS);
        assert_eq!(ws.sponge_u.len(), 5 * 3 * NPTS);
        assert_eq!(ws.q2.len(), 5 * 2 * 4 * NPTS);
        assert_eq!(ws.scratch.col_src.len(), 4);
    }

    #[test]
    fn workspace_buffers_are_sized_for_the_problem() {
        let dims = Dims { nlev: 4, qsize: 2 };
        let ws = StepWorkspace::new(dims, 6, 3, 5);
        assert_eq!(ws.base.u.len(), 6 * 4 * NPTS);
        assert_eq!(ws.hyp.dp3d.len(), 6 * 4 * NPTS);
        assert_eq!(ws.sponge_t.len(), 6 * 3 * NPTS);
        assert_eq!(ws.qdp0.len(), 6 * 2 * 4 * NPTS);
        assert_eq!(ws.workers.len(), 5);
        // Sponge deeper than the column clamps to nlev.
        let ws2 = StepWorkspace::new(dims, 2, 9, 1);
        assert_eq!(ws2.sponge_u.len(), 2 * 4 * NPTS);
    }
}
