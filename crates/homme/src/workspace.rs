//! Persistent per-step scratch owned by [`crate::prim::Dycore`] (and, as
//! [`DistWorkspace`], by the per-rank [`crate::dist::DistDycore`]).
//!
//! Every buffer the step pipeline needs — RK stage fields, RHS column
//! temporaries, hyperviscosity and sponge temporaries, tracer stage
//! double-buffers, remap columns — is allocated once here and reused, so
//! `Dycore::step` performs no heap allocation after construction (enforced
//! by the `alloc_regression` integration test).
//!
//! Reuse contract: no buffer carries information between steps. Each one
//! is either fully overwritten before it is read (`copy_from` /
//! full-range writes) or is write-only scratch whose every slot is
//! written before use. The `state_arena` proptest drives this by checking
//! that a dirtied workspace reproduces a fresh one bitwise.

use crate::bndry::ExchangeBuffers;
use crate::health::StageScan;
use crate::hypervis::ElemHypervisPlan;
use crate::kernels::member_lanes::MemberRhsScratch;
use crate::remap::{ElemRemapPlan, RemapApplyScratch, RemapScratch};
use crate::rhs::{ElemTend, RhsScratch};
use crate::sched::PerWorker;
use crate::state::{Dims, State};
use crate::taskgraph::{PipelineStage, TaskGraph};
use cubesphere::NPTS;
use sw26010::V4F64;

/// A stage scan accumulator in its identity state (what
/// [`crate::health::scan_stage`] returns for empty arenas).
pub const EMPTY_SCAN: StageScan =
    StageScan { nonfinite: 0, min_dp3d: f64::INFINITY, max_speed2: 0.0, tracer_nonfinite: 0 };

/// Per-element raw-window capacity (in values) for the task-graph step:
/// enough for the widest stage — four prognostic fields, the whole tracer
/// arena, or three sponge fields (always ≤ four full fields).
pub fn raw_capacity(dims: Dims) -> usize {
    dims.nlev * NPTS * dims.qsize.max(4)
}

/// The four dynamics prognostics as flat arenas (`[nelem][nlev][NPTS]`
/// each) — an RK stage buffer without the tracer/surface fields.
#[derive(Debug, Clone)]
pub struct DynFields {
    /// Eastward wind arena.
    pub u: Vec<f64>,
    /// Northward wind arena.
    pub v: Vec<f64>,
    /// Temperature arena.
    pub t: Vec<f64>,
    /// Layer thickness arena.
    pub dp3d: Vec<f64>,
}

impl DynFields {
    /// Zeroed buffers of `len` values per field.
    pub fn zeros(len: usize) -> Self {
        DynFields { u: vec![0.0; len], v: vec![0.0; len], t: vec![0.0; len], dp3d: vec![0.0; len] }
    }

    /// Overwrite from the state arena's dynamics fields.
    pub fn copy_from_state(&mut self, st: &State) {
        self.u.copy_from_slice(&st.u);
        self.v.copy_from_slice(&st.v);
        self.t.copy_from_slice(&st.t);
        self.dp3d.copy_from_slice(&st.dp3d);
    }
}

/// Private scratch of one scheduler worker: tendency buffers, RHS column
/// temporaries and remap columns. All fields are fully overwritten per
/// element, so a slot can serve any element of any step.
#[derive(Debug, Clone)]
pub struct WorkerScratch {
    /// Per-element tendency of the RK substep.
    pub tend: ElemTend,
    /// Column temporaries of `element_rhs_raw`.
    pub rhs: RhsScratch,
    /// PPM reconstruction buffers.
    pub remap: RemapScratch,
    /// Source thickness column, `[nlev]`.
    pub col_src: Vec<f64>,
    /// Target thickness column, `[nlev]`.
    pub col_dst: Vec<f64>,
    /// Field value column, `[nlev]`.
    pub col_val: Vec<f64>,
    /// Remapped value column, `[nlev]`.
    pub col_out: Vec<f64>,
    /// Per-element remap plan (geometry + PPM weights), rebuilt from
    /// `dp3d` for each element and reused across all fields and tracers.
    pub plan: ElemRemapPlan,
    /// Coefficient arenas of the planned remap's apply pass.
    pub apply: RemapApplyScratch,
    /// Column temporaries of the member-lane RHS kernel (pressure and
    /// geopotential scan tiles, one `V4F64` lane set per point).
    pub rhs_lanes: MemberRhsScratch,
}

impl WorkerScratch {
    /// Scratch sized for `dims`.
    pub fn new(dims: Dims) -> Self {
        WorkerScratch {
            tend: ElemTend::zeros(dims),
            rhs: RhsScratch::new(dims.nlev),
            remap: RemapScratch::new(dims.nlev),
            col_src: vec![0.0; dims.nlev],
            col_dst: vec![0.0; dims.nlev],
            col_val: vec![0.0; dims.nlev],
            col_out: vec![0.0; dims.nlev],
            plan: ElemRemapPlan::new(dims.nlev),
            apply: RemapApplyScratch::new(dims.nlev),
            rhs_lanes: MemberRhsScratch::new(dims.nlev),
        }
    }
}

/// All step-persistent buffers of the dycore pipeline.
#[derive(Debug)]
pub struct StepWorkspace {
    /// RK base state `u_0`.
    pub base: DynFields,
    /// RK stage being evaluated `u_{i-1}`.
    pub stage: DynFields,
    /// RK stage being produced `u_i`.
    pub next: DynFields,
    /// Hyperviscosity Laplacian input/output (full depth).
    pub hyp: DynFields,
    /// Sponge-layer `u` temporary, `[nelem][sponge_layers][NPTS]`.
    pub sponge_u: Vec<f64>,
    /// Sponge-layer `v` temporary.
    pub sponge_v: Vec<f64>,
    /// Sponge-layer `T` temporary.
    pub sponge_t: Vec<f64>,
    /// Tracer stage `q_0` (step input), `[nelem][qsize][nlev][NPTS]`.
    pub qdp0: Vec<f64>,
    /// Tracer stage 1 buffer.
    pub q1: Vec<f64>,
    /// Tracer stage 2 buffer.
    pub q2: Vec<f64>,
    /// Tracer substep output buffer.
    pub qtmp: Vec<f64>,
    /// One private scratch per scheduler worker.
    pub workers: PerWorker<WorkerScratch>,
    /// Task-graph engine state (counters, claim words, ready queue).
    pub graph: TaskGraph,
    /// Raw (pre-DSS) per-element windows, one arena per stage parity —
    /// `[nelem][raw_capacity]` each.
    pub raw0: Vec<f64>,
    /// Second raw parity arena.
    pub raw1: Vec<f64>,
    /// Per-element raw window width.
    pub rawcap: usize,
    /// Stage list of the current task-graph step (rebuilt per step; the
    /// reserve keeps steady-state pushes allocation-free).
    pub stages: Vec<PipelineStage>,
    /// Per-worker RK stage-scan partials for the checked task-graph step.
    pub scans: PerWorker<[StageScan; 5]>,
    /// Hyperviscosity step plan (hoisted subcycle/sponge coefficients),
    /// rebuilt per step without allocating.
    pub hv_plan: ElemHypervisPlan,
}

impl StepWorkspace {
    /// Buffers sized for `nelem` elements, `dims`, a sponge of
    /// `sponge_layers` levels and `nworkers` scheduler workers.
    pub fn new(dims: Dims, nelem: usize, sponge_layers: usize, nworkers: usize) -> Self {
        let fl = nelem * dims.field_len();
        let tl = nelem * dims.tracer_len();
        let sl = nelem * sponge_layers.min(dims.nlev) * NPTS;
        let rawcap = raw_capacity(dims);
        let mut graph = TaskGraph::new();
        graph.ensure(nelem);
        StepWorkspace {
            base: DynFields::zeros(fl),
            stage: DynFields::zeros(fl),
            next: DynFields::zeros(fl),
            hyp: DynFields::zeros(fl),
            sponge_u: vec![0.0; sl],
            sponge_v: vec![0.0; sl],
            sponge_t: vec![0.0; sl],
            qdp0: vec![0.0; tl],
            q1: vec![0.0; tl],
            q2: vec![0.0; tl],
            qtmp: vec![0.0; tl],
            workers: PerWorker::new(nworkers, || WorkerScratch::new(dims)),
            graph,
            raw0: vec![0.0; nelem * rawcap],
            raw1: vec![0.0; nelem * rawcap],
            rawcap,
            stages: Vec::with_capacity(64),
            scans: PerWorker::new(nworkers, || [EMPTY_SCAN; 5]),
            hv_plan: ElemHypervisPlan::new(dims.nlev, sponge_layers),
        }
    }
}

/// The four dynamics prognostics as lane-interleaved tile arenas: one
/// [`V4F64`] per `(elem, level, point)` slot whose four lanes hold the same
/// scalar for four different ensemble members. The member-lane kernel
/// family ([`crate::kernels::member_lanes`]) runs over these tiles.
#[derive(Debug, Clone)]
pub struct LaneFields {
    /// Eastward wind tile.
    pub u: Vec<V4F64>,
    /// Northward wind tile.
    pub v: Vec<V4F64>,
    /// Temperature tile.
    pub t: Vec<V4F64>,
    /// Layer thickness tile.
    pub dp3d: Vec<V4F64>,
}

impl LaneFields {
    /// Zeroed tiles of `len` lane-sets per field.
    pub fn zeros(len: usize) -> Self {
        LaneFields {
            u: vec![V4F64::zero(); len],
            v: vec![V4F64::zero(); len],
            t: vec![V4F64::zero(); len],
            dp3d: vec![V4F64::zero(); len],
        }
    }
}

/// Tile scratch of the member-lane kernel path: lane-interleaved stage
/// arenas for the batched RK substeps (`base`, `stage`, `next`), the
/// hyperviscosity Laplacian tile set (`hyp`; the hypervis driver reuses
/// `stage` as its in-place current-state tile), sponge-depth temporaries
/// and the splatted surface geopotential. Sponge tiles are sized at full
/// depth (an upper bound on any sponge) so sizing needs only `dims`.
#[derive(Debug)]
pub struct MemberLanes {
    /// RK base state tile `u_0`.
    pub base: LaneFields,
    /// RK stage tile `u_{i-1}`; also the hypervis current-state tile.
    pub stage: LaneFields,
    /// RK stage tile being produced `u_i`.
    pub next: LaneFields,
    /// Hyperviscosity Laplacian input/output tile (full depth).
    pub hyp: LaneFields,
    /// Sponge-layer `u` tile, `[nelem][<= nlev][NPTS]`.
    pub sponge_u: Vec<V4F64>,
    /// Sponge-layer `v` tile.
    pub sponge_v: Vec<V4F64>,
    /// Sponge-layer `T` tile.
    pub sponge_t: Vec<V4F64>,
    /// Surface geopotential tile, `[nelem][NPTS]`.
    pub phis: Vec<V4F64>,
}

impl MemberLanes {
    /// Tiles sized for `nelem` elements of `dims`.
    pub fn new(dims: Dims, nelem: usize) -> Self {
        let fl = nelem * dims.field_len();
        MemberLanes {
            base: LaneFields::zeros(fl),
            stage: LaneFields::zeros(fl),
            next: LaneFields::zeros(fl),
            hyp: LaneFields::zeros(fl),
            sponge_u: vec![V4F64::zero(); fl],
            sponge_v: vec![V4F64::zero(); fl],
            sponge_t: vec![V4F64::zero(); fl],
            phis: vec![V4F64::zero(); nelem * NPTS],
        }
    }
}

/// Per-lane hyperviscosity scratch for the member-batched ensemble path:
/// one full-depth Laplacian arena set per in-flight ensemble member (the
/// chunked kernel path), plus the lane-interleaved tile scratch of the
/// member-lane path, so [`crate::prim::Dycore::apply_hypervis_members`]
/// can run the biharmonic passes of up to `lanes` members through shared
/// coefficient walks without the members' scratch aliasing. Allocated once
/// by the ensemble driver at construction and reused every step (the
/// ensemble alloc gate rides on this), same reuse contract as
/// [`StepWorkspace`]: every slot is written before it is read within a
/// pass.
#[derive(Debug)]
pub struct EnsembleWorkspace {
    /// One hyp arena set (`u`, `v`, `t`, `dp3d`) per member lane.
    pub lanes: Vec<DynFields>,
    /// Lane-interleaved member tiles of the member-lane kernel path.
    pub tiles: MemberLanes,
}

impl EnsembleWorkspace {
    /// Lane buffers sized for `nelem` elements of `dims`, `lanes` members.
    pub fn new(dims: Dims, nelem: usize, lanes: usize) -> Self {
        let fl = nelem * dims.field_len();
        EnsembleWorkspace {
            lanes: (0..lanes).map(|_| DynFields::zeros(fl)).collect(),
            tiles: MemberLanes::new(dims, nelem),
        }
    }

    /// Number of member lanes this workspace can batch.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }
}

/// Persistent per-rank scratch owned by [`crate::dist::DistDycore`] — the
/// distributed analog of [`StepWorkspace`]. Holds the RK stage arenas
/// (sized for the rank's owned elements), hyperviscosity/sponge/tracer
/// temporaries, the per-element compute scratch (the distributed driver
/// runs its element loop serially within the rank, so one slot suffices),
/// and the aggregated-exchange buffers. Allocated once at construction;
/// a distributed step performs zero heap allocations after warm-up
/// (enforced by the `dist_alloc` integration test).
#[derive(Debug)]
pub struct DistWorkspace {
    /// RK base state `u_0`.
    pub base: DynFields,
    /// RK stage being evaluated `u_{i-1}`.
    pub stage: DynFields,
    /// RK stage being produced `u_i`.
    pub next: DynFields,
    /// Hyperviscosity Laplacian input/output (full depth).
    pub hyp: DynFields,
    /// Sponge-layer `u` temporary, `[nelem][sponge_layers][NPTS]`.
    pub sponge_u: Vec<f64>,
    /// Sponge-layer `v` temporary.
    pub sponge_v: Vec<f64>,
    /// Sponge-layer `T` temporary.
    pub sponge_t: Vec<f64>,
    /// Tracer stage `q_0` (step input), `[nelem][qsize][nlev][NPTS]`.
    pub qdp0: Vec<f64>,
    /// Tracer stage 1 buffer.
    pub q1: Vec<f64>,
    /// Tracer stage 2 buffer.
    pub q2: Vec<f64>,
    /// Tracer substep output buffer.
    pub qtmp: Vec<f64>,
    /// Per-element compute scratch.
    pub scratch: WorkerScratch,
    /// Aggregated boundary-exchange pack/accumulate buffers.
    pub ex: ExchangeBuffers,
    /// Event-loop state of the distributed task-graph step.
    pub graph: DistGraphBufs,
    /// Hyperviscosity step plan (hoisted subcycle/sponge coefficients),
    /// rebuilt per step without allocating.
    pub hv_plan: ElemHypervisPlan,
}

/// Buffers of the distributed task-graph event loop. The loop is
/// single-threaded within a rank (the exchange plan is), so plain vectors
/// suffice; everything is grow-only and reset per run, keeping the armed
/// step allocation-free.
#[derive(Debug, Default)]
pub struct DistGraphBufs {
    /// Substages completed per element this run.
    pub done: Vec<u32>,
    /// Substages claimed (queued or executed) per element.
    pub claim: Vec<u32>,
    /// Ready stack (each element appears at most once).
    pub ready: Vec<u32>,
    /// Raw (pre-DSS) windows, even-stage parity.
    pub raw0: Vec<f64>,
    /// Raw windows, odd-stage parity.
    pub raw1: Vec<f64>,
    /// Per-element raw window width.
    pub rawcap: usize,
    /// Stage list of the current step.
    pub stages: Vec<PipelineStage>,
    /// Payload values per shared point, per stage.
    pub stage_sz: Vec<usize>,
    /// Prefix sums of `stage_sz` (`nstages + 1` entries).
    pub stage_off: Vec<usize>,
    /// Boundary elements of each link still owing this stage's compute,
    /// `[nlinks][nstages]` flattened link-major.
    pub pending_send: Vec<u32>,
    /// Whether the `(link, stage)` message has been received, same layout.
    pub arrived: Vec<bool>,
    /// Received payloads per link, stage-concatenated via `stage_off`.
    pub recv_buf: Vec<Vec<f64>>,
}

impl DistGraphBufs {
    /// Grow storage for `nelem` elements, `nlinks` peers with
    /// `npts_of(l)` shared points each, and `rawcap`-wide raw windows.
    /// The caller fills `self.stages` and `self.stage_sz` (payload values
    /// per shared point per stage) first; this call derives `stage_off`
    /// and sizes everything else. Idempotent; only grows.
    pub fn ensure(
        &mut self,
        nelem: usize,
        rawcap: usize,
        nlinks: usize,
        npts_of: impl Fn(usize) -> usize,
    ) {
        let nstages = self.stage_sz.len();
        if self.done.len() < nelem {
            self.done.resize(nelem, 0);
            self.claim.resize(nelem, 0);
        }
        self.ready.clear();
        self.ready.reserve(nelem);
        self.rawcap = rawcap;
        if self.raw0.len() < nelem * rawcap {
            self.raw0.resize(nelem * rawcap, 0.0);
            self.raw1.resize(nelem * rawcap, 0.0);
        }
        self.stage_off.clear();
        self.stage_off.push(0);
        for &sz in &self.stage_sz {
            let last = *self.stage_off.last().expect("non-empty prefix");
            self.stage_off.push(last + sz);
        }
        let slots = nlinks * nstages;
        if self.pending_send.len() < slots {
            self.pending_send.resize(slots, 0);
            self.arrived.resize(slots, false);
        }
        if self.recv_buf.len() < nlinks {
            self.recv_buf.resize(nlinks, Vec::new());
        }
        let total = self.stage_off[nstages];
        for (l, buf) in self.recv_buf.iter_mut().enumerate().take(nlinks) {
            let need = total * npts_of(l);
            if buf.len() < need {
                buf.resize(need, 0.0);
            }
        }
    }
}

impl DistWorkspace {
    /// Buffers sized for this rank's `nelem` owned elements, `dims`, and a
    /// sponge of `sponge_layers` levels.
    pub fn new(dims: Dims, nelem: usize, sponge_layers: usize) -> Self {
        let fl = nelem * dims.field_len();
        let tl = nelem * dims.tracer_len();
        let sl = nelem * sponge_layers.min(dims.nlev) * NPTS;
        DistWorkspace {
            base: DynFields::zeros(fl),
            stage: DynFields::zeros(fl),
            next: DynFields::zeros(fl),
            hyp: DynFields::zeros(fl),
            sponge_u: vec![0.0; sl],
            sponge_v: vec![0.0; sl],
            sponge_t: vec![0.0; sl],
            qdp0: vec![0.0; tl],
            q1: vec![0.0; tl],
            q2: vec![0.0; tl],
            qtmp: vec![0.0; tl],
            scratch: WorkerScratch::new(dims),
            ex: ExchangeBuffers::new(),
            graph: DistGraphBufs::default(),
            hv_plan: ElemHypervisPlan::new(dims.nlev, sponge_layers),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_workspace_buffers_are_sized_for_the_rank() {
        let dims = Dims { nlev: 4, qsize: 2 };
        let ws = DistWorkspace::new(dims, 5, 3);
        assert_eq!(ws.stage.v.len(), 5 * 4 * NPTS);
        assert_eq!(ws.sponge_u.len(), 5 * 3 * NPTS);
        assert_eq!(ws.q2.len(), 5 * 2 * 4 * NPTS);
        assert_eq!(ws.scratch.col_src.len(), 4);
    }

    #[test]
    fn workspace_buffers_are_sized_for_the_problem() {
        let dims = Dims { nlev: 4, qsize: 2 };
        let ws = StepWorkspace::new(dims, 6, 3, 5);
        assert_eq!(ws.base.u.len(), 6 * 4 * NPTS);
        assert_eq!(ws.hyp.dp3d.len(), 6 * 4 * NPTS);
        assert_eq!(ws.sponge_t.len(), 6 * 3 * NPTS);
        assert_eq!(ws.qdp0.len(), 6 * 2 * 4 * NPTS);
        assert_eq!(ws.workers.len(), 5);
        // Sponge deeper than the column clamps to nlev.
        let ws2 = StepWorkspace::new(dims, 2, 9, 1);
        assert_eq!(ws2.sponge_u.len(), 2 * 4 * NPTS);
    }
}
