//! Message-driven element task graph: the dependency/eligibility core that
//! replaces the bulk-synchronous step schedule.
//!
//! The bulk path ends every RK stage, Laplacian pass and Euler stage in a
//! serial DSS — a global barrier. Here each element is a *recurring task*
//! walking a fixed ladder of substages: substage `2s` is the element-local
//! compute of pipeline stage `s` (tendency / Laplacian / flux divergence,
//! written to a per-element *raw* window), substage `2s + 1` is the gather
//! that completes stage `s`'s DSS for that element by accumulating its
//! neighbors' raw contributions in canonical sorted order. Eligibility:
//!
//! * `compute_s(e)` needs only `gather_{s-1}(e)` — the element's own
//!   previous substage (substage 0 is always eligible);
//! * `gather_s(e)` needs `compute_s(n)` for every `n ∈ {e} ∪ N(e)`, where
//!   `N(e)` is the set of elements sharing at least one global point with
//!   `e` — exactly the halo-contribution set of the DSS.
//!
//! When the last dependency of a substage lands, the completing task
//! claims it into a lock-free ready queue drained by the persistent
//! [`ElemScheduler`](crate::sched::ElemScheduler) workers, so stage `s+1`
//! of one element runs while a far-away element is still in stage `s` —
//! hyperviscosity subcycles pipeline across the mesh instead of marching
//! in lockstep.
//!
//! Determinism: gathers sum sharer contributions in a canonical
//! (element-ascending, point-ascending) order fixed at plan-build time, so
//! the result is bitwise identical to the serial barrier DSS no matter how
//! the scheduler interleaves tasks. Every buffer a substage writes is
//! indexed by its own element, and the write-after-read hazard on raw
//! windows is excluded by the dependency chain itself (see the alternating
//! raw parity note in DESIGN.md §5.6).
//!
//! Deadlock freedom: dependencies only point from substage `t` of an
//! element to substages `< t` of itself and its neighbors, so the
//! dependency relation is acyclic and finite; any uncompleted run has a
//! minimal unfinished substage, which by minimality has all dependencies
//! met and is claimed by whichever task completed the last of them.

use crate::sched::ElemScheduler;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Which step schedule [`Dycore::step`](crate::prim::Dycore::step) and
/// [`DistDycore`](crate::dist::DistDycore) run: the bulk-synchronous
/// barrier pipeline, or the message-driven element task graph (bitwise
/// identical results; mirrors `KernelPath` for the kernel layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepPath {
    /// Stage-by-stage pipeline with a barrier DSS after every stage.
    #[default]
    Bulk,
    /// Per-element tasks advancing on neighbor-contribution arrival.
    TaskGraph,
}

/// One stage of the step pipeline, shared by the serial and distributed
/// task-graph drivers. The stage list for a step is
/// `[Rk(0..5), Sponge?, (HypLap{0}, HypLap{1}) * subcycles, Tracer(0..3)?]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    /// Kinnmark–Gray RK substage `i` (0..5): tendency + update, DSS of the
    /// four prognostics.
    Rk(usize),
    /// Top-of-model sponge Laplacian (u, v, T over the sponge layers).
    Sponge,
    /// One Laplacian application of the biharmonic hyperviscosity;
    /// `pass == 1` also applies the damping increment in its gather.
    HypLap {
        /// 0 = first Laplacian (of the state), 1 = second (of the first).
        pass: usize,
    },
    /// Tracer SSP-RK2 Euler stage `i` (0..3): flux divergence + combine,
    /// DSS of the whole tracer arena, then the sign-preserving limiter.
    Tracer(usize),
}

/// Per-element neighbor sets in CSR form: `of(e)` lists every element
/// (excluding `e`) sharing at least one global point with `e` — the
/// halo-contribution set of the DSS, derived from the same gid lists the
/// exchange plan uses.
#[derive(Debug, Clone, Default)]
pub struct Neighbors {
    offsets: Vec<u32>,
    list: Vec<u32>,
}

impl Neighbors {
    /// Build from per-element global-point-id slices.
    pub fn from_gids<'a>(nelem: usize, gids_of: impl Fn(usize) -> &'a [usize]) -> Self {
        let mut sharers: HashMap<usize, Vec<u32>> = HashMap::new();
        for e in 0..nelem {
            for &g in gids_of(e) {
                let v = sharers.entry(g).or_default();
                if v.last() != Some(&(e as u32)) {
                    v.push(e as u32);
                }
            }
        }
        let mut offsets = Vec::with_capacity(nelem + 1);
        let mut list = Vec::new();
        let mut nbr: Vec<u32> = Vec::new();
        offsets.push(0u32);
        for e in 0..nelem {
            nbr.clear();
            for &g in gids_of(e) {
                for &o in &sharers[&g] {
                    if o != e as u32 {
                        nbr.push(o);
                    }
                }
            }
            nbr.sort_unstable();
            nbr.dedup();
            list.extend_from_slice(&nbr);
            offsets.push(list.len() as u32);
        }
        Neighbors { offsets, list }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when the graph covers no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbors of `e` (sorted, without `e` itself).
    #[inline]
    pub fn of(&self, e: usize) -> &[u32] {
        &self.list[self.offsets[e] as usize..self.offsets[e + 1] as usize]
    }
}

/// Bounded lock-free MPMC ready queue (Vyukov ring). Capacity is fixed at
/// the element count: the claim protocol enqueues each element at most
/// once, so the ring is never logically full beyond capacity — but a
/// push can still transiently observe a "full" cell whose popper won the
/// head race and has not yet published the freed sequence number, and
/// must spin that out rather than report overflow.
#[derive(Debug, Default)]
struct ReadyQueue {
    cells: Vec<Cell>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
}

#[derive(Debug)]
struct Cell {
    seq: AtomicUsize,
    val: AtomicU32,
}

impl ReadyQueue {
    /// Grow to hold at least `cap` entries (called outside the hot step).
    fn ensure(&mut self, cap: usize) {
        let want = cap.next_power_of_two().max(2);
        if self.cells.len() >= want {
            return;
        }
        self.cells = (0..want)
            .map(|i| Cell { seq: AtomicUsize::new(i), val: AtomicU32::new(0) })
            .collect();
        self.mask = want - 1;
        self.head = AtomicUsize::new(0);
        self.tail = AtomicUsize::new(0);
    }

    /// Reset to empty (single-threaded, between runs).
    fn reset(&mut self) {
        for (i, c) in self.cells.iter_mut().enumerate() {
            *c.seq.get_mut() = i;
        }
        *self.head.get_mut() = 0;
        *self.tail.get_mut() = 0;
    }

    fn push(&self, v: u32) {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        cell.val.store(v, Ordering::Relaxed);
                        cell.seq.store(pos + 1, Ordering::Release);
                        return;
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                // The cell's previous occupant was popped (the claim
                // protocol bounds occupancy at the element count, so a
                // free cell always exists), but that popper's release
                // store of the freed sequence number hasn't landed yet.
                // Wait for it; treating this transient as overflow killed
                // the worker under an unlucky preemption.
                std::hint::spin_loop();
                pos = self.tail.load(Ordering::Relaxed);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    fn pop(&self) -> Option<u32> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = cell.val.load(Ordering::Relaxed);
                        cell.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(v);
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

/// The recurring-task engine: per-element substage counters, the claim
/// protocol, and the worker drain loop. All storage is grow-only and
/// lives in the step workspace — a run performs no heap allocation.
#[derive(Debug, Default)]
pub struct TaskGraph {
    /// `done[e]`: substages element `e` has completed this run.
    done: Vec<AtomicU32>,
    /// `claim[e]`: substages claimed (queued or executing). Invariant
    /// `done[e] <= claim[e] <= done[e] + 1`, so each element sits in the
    /// ready queue at most once.
    claim: Vec<AtomicU32>,
    /// Substage executions still outstanding this run.
    remaining: AtomicUsize,
    queue: ReadyQueue,
    /// Order in which stage-0 tasks are seeded — shuffling it exercises
    /// arbitrary arrival orders without changing the result.
    pub seed_order: Vec<u32>,
}

impl TaskGraph {
    /// Empty graph; call [`TaskGraph::ensure`] before running.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow storage to cover `nelem` elements (identity seed order).
    pub fn ensure(&mut self, nelem: usize) {
        if self.done.len() < nelem {
            self.done.resize_with(nelem, || AtomicU32::new(0));
            self.claim.resize_with(nelem, || AtomicU32::new(0));
        }
        if self.seed_order.len() < nelem {
            let start = self.seed_order.len();
            self.seed_order.extend(start as u32..nelem as u32);
        }
        self.queue.ensure(nelem);
    }

    /// Reset the seed order to a `seed`-keyed permutation of `0..nelem`
    /// (identity when `seed == 0`). In-place Fisher–Yates over a SplitMix64
    /// stream: deterministic, allocation-free.
    pub fn shuffle_seed(&mut self, nelem: usize, seed: u64) {
        for (i, s) in self.seed_order[..nelem].iter_mut().enumerate() {
            *s = i as u32;
        }
        if seed == 0 {
            return;
        }
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        for i in (1..nelem).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            self.seed_order.swap(i, j);
        }
    }

    /// Execute the whole graph: `2 * nstages` substages per element, with
    /// `exec(worker, elem, substage)` running the work. Returns when every
    /// substage of every element has executed exactly once.
    ///
    /// `exec` must confine its writes to buffers owned by `elem` (reads of
    /// neighbor data are what the eligibility rules license).
    pub fn run(
        &mut self,
        sched: &ElemScheduler,
        nbr: &Neighbors,
        nstages: usize,
        exec: &(dyn Fn(usize, usize, usize) + Sync),
    ) {
        let nelem = nbr.len();
        assert!(self.done.len() >= nelem, "TaskGraph::ensure not called");
        if nelem == 0 || nstages == 0 {
            return;
        }
        for d in &self.done[..nelem] {
            d.store(0, Ordering::Relaxed);
        }
        for c in &self.claim[..nelem] {
            c.store(0, Ordering::Relaxed);
        }
        self.queue.reset();
        self.remaining.store(nelem * 2 * nstages, Ordering::Relaxed);
        // Substage 0 has no dependencies: seed every element, in the
        // (possibly shuffled) seed order.
        for &e in &self.seed_order[..nelem] {
            self.claim[e as usize].store(1, Ordering::Relaxed);
            self.queue.push(e);
        }
        let this = &*self;
        // One drain loop per worker; the scheduler's chunk cursor hands
        // each of the `nthreads` items to an idle worker.
        sched.run(sched.nthreads(), &|w, _| this.drain(w, nbr, nstages, exec));
    }

    fn drain(
        &self,
        worker: usize,
        nbr: &Neighbors,
        nstages: usize,
        exec: &(dyn Fn(usize, usize, usize) + Sync),
    ) {
        let nsub = (2 * nstages) as u32;
        loop {
            match self.queue.pop() {
                Some(e) => {
                    let e = e as usize;
                    let t = self.done[e].load(Ordering::Acquire);
                    exec(worker, e, t as usize);
                    // Publish completion before waking dependents: any task
                    // that observes the new `done` value also observes the
                    // writes `exec` made (SeqCst store / loads pair up).
                    self.done[e].store(t + 1, Ordering::SeqCst);
                    self.remaining.fetch_sub(1, Ordering::SeqCst);
                    self.try_claim(e, nbr, nsub);
                    for &n in nbr.of(e) {
                        self.try_claim(n as usize, nbr, nsub);
                    }
                }
                None => {
                    if self.remaining.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Claim element `c`'s next substage if its dependencies are met. The
    /// CAS on `claim` makes at most one caller win, and a winner is
    /// guaranteed `done[c]` still equals the substage it checked (claim
    /// never trails done).
    fn try_claim(&self, c: usize, nbr: &Neighbors, nsub: u32) {
        let d = self.done[c].load(Ordering::SeqCst);
        if d >= nsub {
            return;
        }
        if d % 2 == 1 {
            // Gather: every neighbor must have completed this stage's
            // compute (own compute is implied by done[c] == d).
            for &n in nbr.of(c) {
                if self.done[n as usize].load(Ordering::SeqCst) < d {
                    return;
                }
            }
        }
        if self.claim[c]
            .compare_exchange(d, d + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.queue.push(c as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A ring of `n` elements where `e` shares a "gid" with `e±1`.
    fn ring_neighbors(n: usize) -> Neighbors {
        let gids: Vec<[usize; 2]> = (0..n).map(|e| [e, (e + 1) % n]).collect();
        Neighbors::from_gids(n, |e| &gids[e][..])
    }

    #[test]
    fn neighbors_from_gids_ring() {
        let nbr = ring_neighbors(5);
        assert_eq!(nbr.len(), 5);
        assert_eq!(nbr.of(0), &[1, 4]);
        assert_eq!(nbr.of(2), &[1, 3]);
        // A fully-shared gid makes everyone neighbors.
        let all = Neighbors::from_gids(3, |_| &[7usize][..]);
        assert_eq!(all.of(0), &[1, 2]);
        assert_eq!(all.of(1), &[0, 2]);
    }

    /// Run the graph and record a global execution sequence; verify every
    /// (element, substage) ran exactly once and all dependency edges were
    /// respected.
    fn check_run(threads: usize, nelem: usize, nstages: usize, seed: u64) {
        let nbr = ring_neighbors(nelem);
        let sched = ElemScheduler::new(threads);
        let mut graph = TaskGraph::new();
        graph.ensure(nelem);
        graph.shuffle_seed(nelem, seed);
        let nsub = 2 * nstages;
        let order: Vec<AtomicU64> = (0..nelem * nsub).map(|_| AtomicU64::new(0)).collect();
        let clock = AtomicU64::new(1);
        graph.run(&sched, &nbr, nstages, &|_w, e, t| {
            let stamp = clock.fetch_add(1, Ordering::SeqCst);
            let prev = order[e * nsub + t].swap(stamp, Ordering::SeqCst);
            assert_eq!(prev, 0, "substage ({e}, {t}) executed twice");
        });
        let stamp = |e: usize, t: usize| order[e * nsub + t].load(Ordering::SeqCst);
        for e in 0..nelem {
            for t in 0..nsub {
                assert!(stamp(e, t) > 0, "substage ({e}, {t}) never ran");
                if t > 0 {
                    assert!(stamp(e, t - 1) < stamp(e, t), "own-ladder order violated at ({e}, {t})");
                }
                if t % 2 == 1 {
                    for &n in nbr.of(e) {
                        assert!(
                            stamp(n as usize, t - 1) < stamp(e, t),
                            "gather ({e}, {t}) ran before compute of neighbor {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn completes_all_substages_in_dependency_order() {
        check_run(1, 7, 3, 0);
        check_run(4, 24, 5, 0);
    }

    #[test]
    fn seed_shuffles_and_thread_counts_still_complete() {
        for threads in [1, 2, 4] {
            for seed in [0u64, 1, 0xDEAD_BEEF] {
                check_run(threads, 16, 4, seed);
            }
        }
    }

    #[test]
    fn small_ring_laps_under_contention() {
        // A tiny element count makes the ready ring tiny (capacity 4
        // here), so a long stage ladder laps it thousands of times while
        // four workers race pushes against in-flight pops. This is the
        // regime where a push can observe a popped-but-not-yet-released
        // cell; the push must wait that out, not declare overflow.
        for round in 0..20 {
            check_run(4, 4, 64, round as u64);
        }
    }

    #[test]
    fn shuffle_seed_is_a_permutation() {
        let mut g = TaskGraph::new();
        g.ensure(33);
        g.shuffle_seed(33, 42);
        let mut seen = [false; 33];
        for &e in &g.seed_order[..33] {
            assert!(!seen[e as usize]);
            seen[e as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Identity when seed == 0.
        g.shuffle_seed(33, 0);
        assert!(g.seed_order[..33].iter().enumerate().all(|(i, &e)| i == e as usize));
    }

    #[test]
    fn reuse_across_runs_is_clean() {
        let nbr = ring_neighbors(9);
        let sched = ElemScheduler::new(3);
        let mut graph = TaskGraph::new();
        graph.ensure(9);
        for _ in 0..4 {
            let count = AtomicU64::new(0);
            graph.run(&sched, &nbr, 2, &|_w, _e, _t| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 9 * 4);
        }
    }
}
