//! `prim_run`: the dynamics driver.
//!
//! One dynamics step is the paper's kernel pipeline end to end:
//! a 5-stage Kinnmark–Gray second-order Runge–Kutta loop over
//! `compute_and_apply_rhs` (each stage followed by DSS), subcycled
//! hyperviscosity, the 3-stage SSP-RK2 `euler_step` for tracers, and
//! `vertical_remap` back to reference levels.

use crate::deriv::{build_ops, ElemOps};
use crate::dss::Dss;
use crate::euler::{euler_substep, limit_nonnegative};
use crate::hypervis::{biharmonic_fields, vlaplace_fields, HypervisConfig};
use crate::remap::remap_column_ppm;
use crate::rhs::{ElemTend, Rhs};
use crate::state::{Dims, State};
use crate::vert::VertCoord;
use cubesphere::{CubedSphere, NPTS};

/// Kinnmark–Gray 5-stage RK coefficients: stage `i` computes
/// `u_i = u_0 + c_i dt RHS(u_{i-1})`.
pub const KG5_COEFFS: [f64; 5] = [1.0 / 5.0, 1.0 / 5.0, 1.0 / 3.0, 1.0 / 2.0, 1.0];

/// Dycore configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DycoreConfig {
    /// Dynamics time step, s.
    pub dt: f64,
    /// Hyperviscosity settings.
    pub hypervis: HypervisConfig,
    /// Apply the sign-preserving tracer limiter.
    pub limiter: bool,
    /// Apply vertical remap every `rsplit` dynamics steps.
    pub rsplit: usize,
}

impl DycoreConfig {
    /// Reasonable defaults for resolution `ne`: dt scaled from the CAM-SE
    /// rule of thumb (ne30 -> 300 s dynamics step).
    pub fn for_ne(ne: usize) -> Self {
        DycoreConfig {
            dt: 300.0 * 30.0 / ne as f64,
            hypervis: HypervisConfig::for_ne(ne),
            limiter: true,
            rsplit: 1,
        }
    }
}

/// The assembled single-rank dynamical core.
pub struct Dycore {
    /// The horizontal grid.
    pub grid: CubedSphere,
    /// Per-element operator tables.
    pub ops: Vec<ElemOps>,
    /// DSS engine.
    pub dss: Dss,
    /// RHS evaluator (owns the vertical coordinate).
    pub rhs: Rhs,
    /// Dimensions.
    pub dims: Dims,
    /// Configuration.
    pub cfg: DycoreConfig,
    steps_since_remap: usize,
}

impl Dycore {
    /// Build a dycore on an `ne` cubed sphere (Earth radius and rotation).
    pub fn new(ne: usize, dims: Dims, ptop: f64, cfg: DycoreConfig) -> Self {
        Self::from_grid(CubedSphere::new(ne), dims, ptop, cfg)
    }

    /// Build a dycore on an arbitrary (e.g. reduced-radius "small planet")
    /// grid.
    pub fn from_grid(grid: CubedSphere, dims: Dims, ptop: f64, cfg: DycoreConfig) -> Self {
        let ops = build_ops(&grid);
        let dss = Dss::new(&grid);
        let vert = VertCoord::standard(dims.nlev, ptop);
        let rhs = Rhs::new(vert, dims);
        Dycore { grid, ops, dss, rhs, dims, cfg, steps_since_remap: 0 }
    }

    /// Fresh zero state sized for this dycore.
    pub fn zero_state(&self) -> State {
        State::zeros(self.dims, self.grid.nelem())
    }

    /// One explicit sub-step: `out = base + c dt RHS(eval)`, then DSS.
    fn rk_substep(&mut self, base: &State, eval: &State, c_dt: f64, out: &mut State) {
        let nlev = self.dims.nlev;
        let mut tend = ElemTend::zeros(self.dims);
        for e in 0..eval.elems.len() {
            self.rhs.element_tend(&self.ops[e], &eval.elems[e], &mut tend);
            let oe = &mut out.elems[e];
            let be = &base.elems[e];
            for i in 0..self.dims.field_len() {
                oe.u[i] = be.u[i] + c_dt * tend.u[i];
                oe.v[i] = be.v[i] + c_dt * tend.v[i];
                oe.t[i] = be.t[i] + c_dt * tend.t[i];
                oe.dp3d[i] = be.dp3d[i] + c_dt * tend.dp3d[i];
            }
        }
        // DSS the four updated prognostics.
        let mut u: Vec<Vec<f64>> = out.elems.iter().map(|e| e.u.clone()).collect();
        let mut v: Vec<Vec<f64>> = out.elems.iter().map(|e| e.v.clone()).collect();
        let mut t: Vec<Vec<f64>> = out.elems.iter().map(|e| e.t.clone()).collect();
        let mut dp: Vec<Vec<f64>> = out.elems.iter().map(|e| e.dp3d.clone()).collect();
        self.dss.apply(&mut u, nlev);
        self.dss.apply(&mut v, nlev);
        self.dss.apply(&mut t, nlev);
        self.dss.apply(&mut dp, nlev);
        for (e, oe) in out.elems.iter_mut().enumerate() {
            oe.u.copy_from_slice(&u[e]);
            oe.v.copy_from_slice(&v[e]);
            oe.t.copy_from_slice(&t[e]);
            oe.dp3d.copy_from_slice(&dp[e]);
        }
    }

    /// Advance the dynamics (u, v, T, dp3d) by one dt with the 5-stage RK.
    pub fn dynamics_step(&mut self, state: &mut State) {
        let dt = self.cfg.dt;
        let base = state.clone();
        let mut stage = state.clone();
        let mut next = state.clone();
        for &c in &KG5_COEFFS {
            self.rk_substep(&base, &stage, c * dt, &mut next);
            std::mem::swap(&mut stage, &mut next);
        }
        *state = stage;
    }

    /// Stability-limited hyperviscosity subcycle count: the explicit
    /// forward-Euler biharmonic update needs `nu k_max^4 dt_sub < ~0.4`,
    /// with `k_max` the spectral-element grid Nyquist (smallest GLL gap,
    /// with a factor-2 margin for the spectral operator's eigenvalue
    /// excess). Production HOMME computes `hypervis_subcycle` the same way.
    pub fn hypervis_subcycles(&self) -> usize {
        let hv = self.cfg.hypervis;
        let nu = hv.nu.max(hv.nu_p);
        if nu == 0.0 {
            return hv.subcycles.max(1);
        }
        let el = &self.grid.elements[0];
        // Smallest GLL gap: |x1 - x0| = 1 - 1/sqrt(5) on [-1, 1].
        let ref_gap = 1.0 - 1.0 / 5.0_f64.sqrt();
        // metdet ~ (physical area)/(dalpha dbeta): sqrt gives the length
        // scale per unit angle.
        let scale = el.metric[0].metdet.sqrt();
        let gap = (ref_gap * 0.5 * el.dab * scale).max(1.0);
        let k_max = 2.0 * std::f64::consts::PI / gap;
        let needed = (nu * k_max.powi(4) * self.cfg.dt / 0.4).ceil() as usize;
        needed.max(hv.subcycles).max(1)
    }

    /// Apply subcycled biharmonic hyperviscosity to u, v, T, dp3d.
    pub fn apply_hypervis(&mut self, state: &mut State) {
        let hv = self.cfg.hypervis;
        if hv.nu == 0.0 && hv.nu_p == 0.0 {
            return;
        }
        let nlev = self.dims.nlev;
        // Top-of-model sponge: ordinary Laplacian damping on the top
        // layers (sign +nu_top lap, i.e. diffusion).
        if hv.nu_top > 0.0 && hv.sponge_layers > 0 {
            let ks = hv.sponge_layers.min(nlev);
            let mut u: Vec<Vec<f64>> =
                state.elems.iter().map(|e| e.u[..ks * NPTS].to_vec()).collect();
            let mut v: Vec<Vec<f64>> =
                state.elems.iter().map(|e| e.v[..ks * NPTS].to_vec()).collect();
            let mut t: Vec<Vec<f64>> =
                state.elems.iter().map(|e| e.t[..ks * NPTS].to_vec()).collect();
            vlaplace_fields(&self.ops, &mut self.dss, ks, &mut u, &mut v);
            crate::hypervis::laplace_fields(&self.ops, &mut self.dss, ks, &mut t);
            for (e, es) in state.elems.iter_mut().enumerate() {
                for (k_rel, damp) in (0..ks).map(|k| (k, 1.0 / (1 << k) as f64)) {
                    for p in 0..NPTS {
                        let i = k_rel * NPTS + p;
                        es.u[i] += self.cfg.dt * hv.nu_top * damp * u[e][i];
                        es.v[i] += self.cfg.dt * hv.nu_top * damp * v[e][i];
                        es.t[i] += self.cfg.dt * hv.nu_top * damp * t[e][i];
                    }
                }
            }
        }
        let subcycles = self.hypervis_subcycles();
        let dt_sub = self.cfg.dt / subcycles as f64;
        for _ in 0..subcycles {
            let mut u: Vec<Vec<f64>> = state.elems.iter().map(|e| e.u.clone()).collect();
            let mut v: Vec<Vec<f64>> = state.elems.iter().map(|e| e.v.clone()).collect();
            let mut t: Vec<Vec<f64>> = state.elems.iter().map(|e| e.t.clone()).collect();
            let mut dp: Vec<Vec<f64>> = state.elems.iter().map(|e| e.dp3d.clone()).collect();
            // del^4 via two Laplacians with DSS (vector Laplacian for wind).
            vlaplace_fields(&self.ops, &mut self.dss, nlev, &mut u, &mut v);
            vlaplace_fields(&self.ops, &mut self.dss, nlev, &mut u, &mut v);
            biharmonic_fields(&self.ops, &mut self.dss, nlev, &mut t);
            biharmonic_fields(&self.ops, &mut self.dss, nlev, &mut dp);
            for (e, es) in state.elems.iter_mut().enumerate() {
                for i in 0..self.dims.field_len() {
                    es.u[i] -= dt_sub * hv.nu * u[e][i];
                    es.v[i] -= dt_sub * hv.nu * v[e][i];
                    es.t[i] -= dt_sub * hv.nu * t[e][i];
                    es.dp3d[i] -= dt_sub * hv.nu_p * dp[e][i];
                }
            }
        }
    }

    /// Advance tracers by one dt with 3-stage SSP-RK2 (`euler_step`).
    pub fn euler_step_tracers(&mut self, state: &mut State) {
        if self.dims.qsize == 0 {
            return;
        }
        let dt = self.cfg.dt;
        let nlev = self.dims.nlev;
        let u: Vec<Vec<f64>> = state.elems.iter().map(|e| e.u.clone()).collect();
        let v: Vec<Vec<f64>> = state.elems.iter().map(|e| e.v.clone()).collect();
        let dp: Vec<Vec<f64>> = state.elems.iter().map(|e| e.dp3d.clone()).collect();
        let qdp0: Vec<Vec<f64>> = state.elems.iter().map(|e| e.qdp.clone()).collect();
        let mut q1 = qdp0.clone();
        let mut q2 = qdp0.clone();

        // Stage 1: q1 = q0 + dt L(q0)
        euler_substep(&self.ops, self.dims, &u, &v, &dp, &qdp0, dt, &mut q1);
        self.finish_tracer_stage(&mut q1, nlev);
        // Stage 2: q2 = 3/4 q0 + 1/4 (q1 + dt L(q1))
        let mut tmp = qdp0.clone();
        euler_substep(&self.ops, self.dims, &u, &v, &dp, &q1, dt, &mut tmp);
        for (q2e, (q0e, te)) in q2.iter_mut().zip(qdp0.iter().zip(&tmp)) {
            for i in 0..q2e.len() {
                q2e[i] = 0.75 * q0e[i] + 0.25 * te[i];
            }
        }
        self.finish_tracer_stage(&mut q2, nlev);
        // Stage 3: q^{n+1} = 1/3 q0 + 2/3 (q2 + dt L(q2))
        euler_substep(&self.ops, self.dims, &u, &v, &dp, &q2, dt, &mut tmp);
        for (es, (q0e, te)) in state.elems.iter_mut().zip(qdp0.iter().zip(&tmp)) {
            for i in 0..es.qdp.len() {
                es.qdp[i] = q0e[i] / 3.0 + 2.0 / 3.0 * te[i];
            }
        }
        let mut qf: Vec<Vec<f64>> = state.elems.iter().map(|e| e.qdp.clone()).collect();
        self.finish_tracer_stage(&mut qf, nlev);
        for (es, qe) in state.elems.iter_mut().zip(&qf) {
            es.qdp.copy_from_slice(qe);
        }
    }

    /// DSS + optional limiter for one tracer stage.
    fn finish_tracer_stage(&mut self, qdp: &mut [Vec<f64>], nlev: usize) {
        self.dss.apply(qdp, self.dims.qsize * nlev);
        if self.cfg.limiter {
            for (e, qe) in qdp.iter_mut().enumerate() {
                let mut spheremp = [0.0; NPTS];
                spheremp.copy_from_slice(&self.ops[e].spheremp);
                for q in 0..self.dims.qsize {
                    for k in 0..nlev {
                        let r = (q * nlev + k) * NPTS..(q * nlev + k + 1) * NPTS;
                        limit_nonnegative(&spheremp, &mut qe[r]);
                    }
                }
            }
        }
    }

    /// Remap the column back to reference hybrid levels (`vertical_remap`).
    pub fn vertical_remap(&mut self, state: &mut State) {
        let nlev = self.dims.nlev;
        let vert = &self.rhs.vert;
        let ptop = vert.ptop();
        let mut src = vec![0.0; nlev];
        let mut dst = vec![0.0; nlev];
        let mut col = vec![0.0; nlev];
        let mut out = vec![0.0; nlev];
        for es in &mut state.elems {
            for p in 0..NPTS {
                let mut ps = ptop;
                for k in 0..nlev {
                    src[k] = es.dp3d[k * NPTS + p];
                    ps += src[k];
                }
                for k in 0..nlev {
                    dst[k] = vert.dp_ref(k, ps);
                }
                // Momentum, heat: conserve integral(f dp).
                for field in [&mut es.u, &mut es.v, &mut es.t] {
                    for k in 0..nlev {
                        col[k] = field[k * NPTS + p];
                    }
                    remap_column_ppm(&src, &col, &dst, &mut out);
                    for k in 0..nlev {
                        field[k * NPTS + p] = out[k];
                    }
                }
                // Tracers: remap mixing ratio, rebuild mass.
                for q in 0..self.dims.qsize {
                    for k in 0..nlev {
                        col[k] = es.qdp[(q * nlev + k) * NPTS + p] / src[k];
                    }
                    remap_column_ppm(&src, &col, &dst, &mut out);
                    for k in 0..nlev {
                        es.qdp[(q * nlev + k) * NPTS + p] = out[k] * dst[k];
                    }
                }
                for k in 0..nlev {
                    es.dp3d[k * NPTS + p] = dst[k];
                }
            }
        }
    }

    /// One full model step: dynamics RK + hyperviscosity + tracer advection
    /// + (every `rsplit` steps) vertical remap.
    pub fn step(&mut self, state: &mut State) {
        self.dynamics_step(state);
        self.apply_hypervis(state);
        self.euler_step_tracers(state);
        self.steps_since_remap += 1;
        if self.steps_since_remap >= self.cfg.rsplit {
            self.vertical_remap(state);
            self.steps_since_remap = 0;
        }
    }

    /// Global dry-air mass (`integral of sum_k dp3d dA`), Pa m^2.
    pub fn total_mass(&self, state: &State) -> f64 {
        let fields: Vec<Vec<f64>> = state
            .elems
            .iter()
            .map(|es| {
                (0..NPTS)
                    .map(|p| (0..self.dims.nlev).map(|k| es.dp3d[k * NPTS + p]).sum())
                    .collect()
            })
            .collect();
        self.grid.global_integral(&fields)
    }

    /// Global mass of tracer `q`.
    pub fn total_tracer_mass(&self, state: &State, q: usize) -> f64 {
        let nlev = self.dims.nlev;
        let fields: Vec<Vec<f64>> = state
            .elems
            .iter()
            .map(|es| {
                (0..NPTS)
                    .map(|p| (0..nlev).map(|k| es.qdp[(q * nlev + k) * NPTS + p]).sum())
                    .collect()
            })
            .collect();
        self.grid.global_integral(&fields)
    }

    /// Maximum wind speed (stability diagnostic).
    pub fn max_wind(&self, state: &State) -> f64 {
        let mut m: f64 = 0.0;
        for es in &state.elems {
            for (u, v) in es.u.iter().zip(&es.v) {
                m = m.max((u * u + v * v).sqrt());
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesphere::consts::P0;

    fn resting_state(dy: &Dycore) -> State {
        let mut st = dy.zero_state();
        for es in &mut st.elems {
            for k in 0..dy.dims.nlev {
                for p in 0..NPTS {
                    es.t[k * NPTS + p] = 300.0;
                    es.dp3d[k * NPTS + p] = dy.rhs.vert.dp_ref(k, P0);
                    for q in 0..dy.dims.qsize {
                        es.qdp[(q * dy.dims.nlev + k) * NPTS + p] =
                            0.01 * es.dp3d[k * NPTS + p];
                    }
                }
            }
        }
        st
    }

    #[test]
    fn resting_atmosphere_stays_at_rest() {
        let dims = Dims { nlev: 6, qsize: 1 };
        let cfg = DycoreConfig {
            dt: 600.0,
            hypervis: HypervisConfig::off(),
            limiter: true,
            rsplit: 1,
        };
        let mut dy = Dycore::new(2, dims, 200.0, cfg);
        let mut st = resting_state(&dy);
        let ref_st = st.clone();
        for _ in 0..5 {
            dy.step(&mut st);
        }
        assert!(dy.max_wind(&st) < 1e-10, "wind grew: {}", dy.max_wind(&st));
        assert!(st.max_abs_diff(&ref_st) < 1e-8, "state drifted: {}", st.max_abs_diff(&ref_st));
    }

    #[test]
    fn mass_and_tracer_mass_are_conserved() {
        let dims = Dims { nlev: 6, qsize: 2 };
        let cfg = DycoreConfig {
            dt: 300.0,
            hypervis: HypervisConfig::off(),
            limiter: true,
            rsplit: 1,
        };
        let mut dy = Dycore::new(3, dims, 200.0, cfg);
        let mut st = resting_state(&dy);
        // Perturb the temperature field to get the flow moving.
        for es in &mut st.elems {
            for (i, t) in es.t.iter_mut().enumerate() {
                *t += 2.0 * ((i % 11) as f64 / 11.0 - 0.5);
            }
        }
        let m0 = dy.total_mass(&st);
        let q0 = dy.total_tracer_mass(&st, 0);
        let q1 = dy.total_tracer_mass(&st, 1);
        for _ in 0..5 {
            dy.step(&mut st);
        }
        let dm = ((dy.total_mass(&st) - m0) / m0).abs();
        let dq0 = ((dy.total_tracer_mass(&st, 0) - q0) / q0).abs();
        let dq1 = ((dy.total_tracer_mass(&st, 1) - q1) / q1).abs();
        assert!(dm < 1e-11, "dry mass drift {dm}");
        assert!(dq0 < 1e-11, "tracer 0 drift {dq0}");
        assert!(dq1 < 1e-11, "tracer 1 drift {dq1}");
        assert!(dy.max_wind(&st) < 30.0, "blow-up: {}", dy.max_wind(&st));
    }

    #[test]
    fn balanced_flow_survives_time_stepping() {
        use cubesphere::consts::{EARTH_RADIUS, OMEGA, RD};
        let dims = Dims { nlev: 6, qsize: 0 };
        let cfg = DycoreConfig {
            dt: 200.0,
            hypervis: HypervisConfig::off(),
            limiter: false,
            rsplit: 1,
        };
        let mut dy = Dycore::new(4, dims, 200.0, cfg);
        let mut st = dy.zero_state();
        let (t0, u0) = (300.0, 30.0);
        let c = (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) / (RD * t0);
        let grid_elems: Vec<_> = dy.grid.elements.clone();
        for (es, el) in st.elems.iter_mut().zip(&grid_elems) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                let ps = P0 * (-c * lat.sin() * lat.sin()).exp();
                for k in 0..dims.nlev {
                    es.u[k * NPTS + p] = u0 * lat.cos();
                    es.t[k * NPTS + p] = t0;
                    es.dp3d[k * NPTS + p] = dy.rhs.vert.dp_ref(k, ps);
                }
            }
        }
        let init = st.clone();
        for _ in 0..10 {
            dy.step(&mut st);
        }
        // The balanced jet must persist: wind change small vs u0.
        let mut max_du: f64 = 0.0;
        for (a, b) in st.elems.iter().zip(&init.elems) {
            for (x, y) in a.u.iter().zip(&b.u) {
                max_du = max_du.max((x - y).abs());
            }
        }
        assert!(max_du < 0.05 * u0, "jet decayed/blew up: du = {max_du}");
    }

    #[test]
    fn hypervis_damps_grid_noise() {
        let dims = Dims { nlev: 2, qsize: 0 };
        let mut cfg = DycoreConfig::for_ne(4);
        // At ne4 the grid Nyquist wavenumber is tiny, so scale nu up to get
        // visible damping within a few applications (still well inside the
        // explicit stability bound nu k^4 dt_sub < 1).
        cfg.dt = 100.0;
        cfg.hypervis = HypervisConfig { nu: 2.0e19, nu_p: 2.0e19, subcycles: 3, nu_top: 0.0, sponge_layers: 0 };
        let mut dy = Dycore::new(4, dims, 200.0, cfg);
        let mut st = resting_state(&dy);
        // Checkerboard temperature noise.
        for es in &mut st.elems {
            for (i, t) in es.t.iter_mut().enumerate() {
                *t += if i % 2 == 0 { 1.0 } else { -1.0 };
            }
        }
        let noise = |s: &State| -> f64 {
            let mut acc = 0.0;
            for es in &s.elems {
                for w in es.t.windows(2) {
                    acc += (w[1] - w[0]).powi(2);
                }
            }
            acc
        };
        let n0 = noise(&st);
        for _ in 0..10 {
            dy.apply_hypervis(&mut st);
        }
        let n1 = noise(&st);
        assert!(n1 < 0.8 * n0, "noise not damped: {n0} -> {n1}");
    }
}
