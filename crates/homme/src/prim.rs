//! `prim_run`: the dynamics driver.
//!
//! One dynamics step is the paper's kernel pipeline end to end:
//! a 5-stage Kinnmark–Gray second-order Runge–Kutta loop over
//! `compute_and_apply_rhs` (each stage followed by DSS), subcycled
//! hyperviscosity, the 3-stage SSP-RK2 `euler_step` for tracers, and
//! `vertical_remap` back to reference levels.
//!
//! The driver runs every per-element loop across the host cores through
//! the persistent [`ElemScheduler`]; the serial DSS between phases is the
//! synchronization point, so results are bitwise independent of thread
//! count. All temporaries live in the [`StepWorkspace`] owned by the
//! dycore — `step` allocates nothing on the heap (see the
//! `alloc_regression` test). The allocation-heavy seed implementation is
//! preserved in [`crate::seedref`] as the equivalence oracle.

use crate::deriv::{build_ops, ElemOps};
use crate::dss::{Dss, DssGather};
use crate::euler::{
    euler_stage_flat_blocked, euler_substep_flat, limit_nonnegative, limit_tracer_arena,
    tracer_flux_divergence,
};
use crate::health::{
    commit_scan, scan_stage, DegradePolicy, HealthConfig, HealthError, StepHealth, TRACER_STAGE,
};
use crate::hypervis::{
    biharmonic_flat_path, laplace_flat_path, vlaplace_flat_path, ElemHypervisPlan,
    HypervisConfig, MIN_GLL_GAP_METERS,
};
use crate::kernels::blocked::{
    build_blocked_ops, element_rhs_apply_blocked, euler_stage_element_blocked,
    hypervis_pass_element_blocked, hypervis_pass_element_members_blocked,
    hypervis_pass_levels_blocked, hypervis_pass_levels_members_blocked,
    sponge_pass_element_blocked, BlockedOps, KernelPath, StageCombine,
};
use crate::kernels::blocked::remap_element_planned;
use crate::kernels::member_lanes::{
    element_rhs_apply_member_lanes, gather_member_tile, hypervis_pass_levels_member_lanes,
    hypervis_pass_member_lanes, scatter_member_tile, sponge_pass_member_lanes, MemberKernelPath,
};
use crate::remap::{remap_element_scalar, RemapError};
use crate::rhs::{element_rhs_raw, Rhs};
use crate::sched::{ArenaMut, ElemScheduler};
use crate::state::{Dims, State};
use crate::taskgraph::{Neighbors, PipelineStage, StepPath};
use crate::vert::VertCoord;
use crate::workspace::{DynFields, MemberLanes, StepWorkspace, WorkerScratch, EMPTY_SCAN};
use cubesphere::{CubedSphere, NPTS};
use std::sync::Mutex;
use sw26010::V4F64;

/// Kinnmark–Gray 5-stage RK coefficients: stage `i` computes
/// `u_i = u_0 + c_i dt RHS(u_{i-1})`.
pub const KG5_COEFFS: [f64; 5] = [1.0 / 5.0, 1.0 / 5.0, 1.0 / 3.0, 1.0 / 2.0, 1.0];

/// Dycore configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DycoreConfig {
    /// Dynamics time step, s.
    pub dt: f64,
    /// Hyperviscosity settings.
    pub hypervis: HypervisConfig,
    /// Apply the sign-preserving tracer limiter.
    pub limiter: bool,
    /// Apply vertical remap every `rsplit` dynamics steps.
    pub rsplit: usize,
}

impl DycoreConfig {
    /// Reasonable defaults for resolution `ne`: dt scaled from the CAM-SE
    /// rule of thumb (ne30 -> 300 s dynamics step).
    pub fn for_ne(ne: usize) -> Self {
        DycoreConfig {
            dt: 300.0 * 30.0 / ne as f64,
            hypervis: HypervisConfig::for_ne(ne),
            limiter: true,
            rsplit: 1,
        }
    }
}

/// The assembled single-rank dynamical core.
pub struct Dycore {
    /// The horizontal grid.
    pub grid: CubedSphere,
    /// Per-element operator tables.
    pub ops: Vec<ElemOps>,
    /// DSS engine.
    pub dss: Dss,
    /// RHS evaluator (owns the vertical coordinate).
    pub rhs: Rhs,
    /// Dimensions.
    pub dims: Dims,
    /// Configuration.
    pub cfg: DycoreConfig,
    /// Element scheduler (persistent worker pool).
    pub sched: ElemScheduler,
    /// In-step health guard configuration ([`Dycore::step_checked`]).
    pub health: HealthConfig,
    /// What a CFL breach does to the following steps.
    pub degrade: DegradePolicy,
    /// Which kernel implementation the step pipeline dispatches to
    /// (blocked by default; the scalar path is the parity oracle).
    pub kernels: KernelPath,
    /// Which member-batched kernel family the ensemble drivers use when
    /// several members are resident: the lane-transposed tiles (default —
    /// `V4F64` lanes are members, coefficients splat) or the pair-wise
    /// chunked row kernels kept as the A/B baseline. Single-member calls
    /// always take the standalone path; the scalar [`KernelPath`] ignores
    /// this knob entirely.
    pub member_kernels: MemberKernelPath,
    /// Which step schedule drives the pipeline: bulk-synchronous stage
    /// barriers, or the message-driven element task graph (bitwise
    /// identical results; mirrors [`KernelPath`] for the kernel layer).
    pub step_path: StepPath,
    /// Seed keying the task graph's stage-0 injection order (0 = element
    /// order). Shuffling it exercises arbitrary task arrival orders
    /// without changing the answer.
    pub taskgraph_seed: u64,
    gather: DssGather,
    neighbors: Neighbors,
    bops: Vec<BlockedOps>,
    ws: StepWorkspace,
    steps_since_remap: usize,
    degrade_pending: usize,
    char_dx: f64,
}

/// Default worker count: `SWCAM_THREADS` if set, else available
/// parallelism capped at 8 (tests build many dycores; the cap keeps the
/// idle-thread count sane while the cap can be lifted per dycore with
/// [`Dycore::set_threads`]).
fn default_threads() -> usize {
    std::env::var("SWCAM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
        })
        .max(1)
}

impl Dycore {
    /// Build a dycore on an `ne` cubed sphere (Earth radius and rotation).
    pub fn new(ne: usize, dims: Dims, ptop: f64, cfg: DycoreConfig) -> Self {
        Self::from_grid(CubedSphere::new(ne), dims, ptop, cfg)
    }

    /// Build a dycore on an arbitrary (e.g. reduced-radius "small planet")
    /// grid.
    pub fn from_grid(grid: CubedSphere, dims: Dims, ptop: f64, cfg: DycoreConfig) -> Self {
        let ops = build_ops(&grid);
        let bops = build_blocked_ops(&ops);
        let dss = Dss::new(&grid);
        let gather = DssGather::new(&dss);
        let neighbors = Neighbors::from_gids(grid.nelem(), |e| dss.element_gids(e));
        let vert = VertCoord::standard(dims.nlev, ptop);
        let rhs = Rhs::new(vert, dims);
        let sched = ElemScheduler::new(default_threads());
        let ws = StepWorkspace::new(dims, grid.nelem(), cfg.hypervis.sponge_layers, sched.nthreads());
        // Characteristic grid spacing for the advective CFL estimate: the
        // smallest GLL gap on a representative element (same geometry as
        // [`HypervisConfig::stable_subcycles`], identical on every rank),
        // floored at [`MIN_GLL_GAP_METERS`] so a degenerate metric cannot
        // zero the CFL denominator.
        let el = &grid.elements[0];
        let ref_gap = 1.0 - 1.0 / 5.0_f64.sqrt();
        let char_dx =
            (ref_gap * 0.5 * el.dab * el.metric[0].metdet.sqrt()).max(MIN_GLL_GAP_METERS);
        Dycore {
            grid,
            ops,
            dss,
            rhs,
            dims,
            cfg,
            sched,
            health: HealthConfig::default(),
            degrade: DegradePolicy::default(),
            kernels: KernelPath::default(),
            member_kernels: MemberKernelPath::default(),
            step_path: StepPath::default(),
            taskgraph_seed: 0,
            gather,
            neighbors,
            bops,
            ws,
            steps_since_remap: 0,
            degrade_pending: 0,
            char_dx,
        }
    }

    /// Replace the scheduler with an `n`-worker pool (and per-worker
    /// scratch to match). `n = 1` forces serial execution.
    pub fn set_threads(&mut self, n: usize) {
        self.sched = ElemScheduler::new(n.max(1));
        self.ws = StepWorkspace::new(
            self.dims,
            self.grid.nelem(),
            self.cfg.hypervis.sponge_layers,
            self.sched.nthreads(),
        );
    }

    /// Fresh zero state sized for this dycore.
    pub fn zero_state(&self) -> State {
        State::zeros(self.dims, self.grid.nelem())
    }

    /// Advance the dynamics (u, v, T, dp3d) by one dt with the 5-stage RK.
    pub fn dynamics_step(&mut self, state: &mut State) {
        let dt = self.cfg.dt;
        let Dycore { ops, dss, rhs, dims, sched, ws, kernels, bops, .. } = self;
        ws.base.copy_from_state(state);
        ws.stage.copy_from_state(state);
        for &c in &KG5_COEFFS {
            rk_substep(
                *kernels,
                ops,
                bops,
                dss,
                rhs,
                *dims,
                sched,
                &ws.workers,
                &ws.base,
                &ws.stage,
                &state.phis,
                c * dt,
                &mut ws.next,
            );
            std::mem::swap(&mut ws.stage, &mut ws.next);
        }
        state.u.copy_from_slice(&ws.stage.u);
        state.v.copy_from_slice(&ws.stage.v);
        state.t.copy_from_slice(&ws.stage.t);
        state.dp3d.copy_from_slice(&ws.stage.dp3d);
    }

    /// Stability-limited hyperviscosity subcycle count
    /// ([`HypervisConfig::stable_subcycles`] on a representative element).
    pub fn hypervis_subcycles(&self) -> usize {
        let el = &self.grid.elements[0];
        self.cfg.hypervis.stable_subcycles(el.dab, el.metric[0].metdet, self.cfg.dt)
    }

    /// Apply subcycled biharmonic hyperviscosity to u, v, T, dp3d.
    ///
    /// # Errors
    /// [`HealthError::Hypervis`] when the per-step plan rejects a corrupt
    /// element metric or a non-finite step coefficient; the state is
    /// untouched on `Err` (the plan is built before any field is written).
    pub fn apply_hypervis(&mut self, state: &mut State) -> Result<(), HealthError> {
        let subcycles = self.hypervis_subcycles();
        self.apply_hypervis_n(state, subcycles)
    }

    /// [`Dycore::apply_hypervis`] with an explicit subcycle count (the
    /// degradation policy adds extra subcycles on top of the stable count).
    ///
    /// Both kernel paths vet the grid and hoist the subcycle/sponge
    /// coefficient products through [`ElemHypervisPlan`] once per step, so
    /// a corrupt element is rejected identically either way. The blocked
    /// path then runs each subcycle as fused per-element sweeps — one
    /// coefficient walk produces the Laplacians of all four fields — with
    /// the forward-Euler damping folded into the DSS scatter
    /// ([`Dss::apply_flat_scaled_add`]); the scalar path keeps the seed's
    /// copy + per-field Laplacian + separate apply structure as the
    /// bitwise oracle.
    pub fn apply_hypervis_n(
        &mut self,
        state: &mut State,
        subcycles: usize,
    ) -> Result<(), HealthError> {
        let hv = self.cfg.hypervis;
        if hv.nu == 0.0 && hv.nu_p == 0.0 {
            return Ok(());
        }
        let Dycore { ops, dss, dims, cfg, sched, ws, kernels, bops, .. } = self;
        let kernels = *kernels;
        let nlev = dims.nlev;
        let fl = dims.field_len();
        ws.hv_plan.build(&hv, cfg.dt, subcycles, nlev, ops)?;
        if let KernelPath::Blocked = kernels {
            let plan = &ws.hv_plan;
            let nelem = ops.len();
            // Top-of-model sponge: ordinary Laplacian damping on the top
            // layers (sign +nu_top lap, i.e. diffusion). The fused element
            // pass reads the state directly (no staging copy) and the
            // damping increment rides the DSS scatter.
            if hv.nu_top > 0.0 && hv.sponge_layers > 0 {
                let ks = plan.ks;
                let sl = ks * NPTS;
                {
                    let ou = ArenaMut::new(&mut ws.sponge_u);
                    let ov = ArenaMut::new(&mut ws.sponge_v);
                    let ot = ArenaMut::new(&mut ws.sponge_t);
                    let (su, sv, st): (&[f64], &[f64], &[f64]) =
                        (&state.u, &state.v, &state.t);
                    sched.run(nelem, &|_w, e| {
                        let (ou, ov, ot) = unsafe {
                            (ou.slice(e * sl, sl), ov.slice(e * sl, sl), ot.slice(e * sl, sl))
                        };
                        sponge_pass_element_blocked(
                            &bops[e],
                            ks,
                            &su[e * fl..e * fl + sl],
                            &sv[e * fl..e * fl + sl],
                            &st[e * fl..e * fl + sl],
                            ou,
                            ov,
                            ot,
                        );
                    });
                }
                dss.apply_flat_scaled_add(&ws.sponge_u, ks, &plan.sponge, &mut state.u, fl);
                dss.apply_flat_scaled_add(&ws.sponge_v, ks, &plan.sponge, &mut state.v, fl);
                dss.apply_flat_scaled_add(&ws.sponge_t, ks, &plan.sponge, &mut state.t, fl);
            }
            for _ in 0..subcycles {
                // First Laplacian of (u, v, T, dp3d): one fused coefficient
                // walk per element, straight from the state into the hyp
                // arenas (the per-subcycle state copy is gone).
                {
                    let ou = ArenaMut::new(&mut ws.hyp.u);
                    let ov = ArenaMut::new(&mut ws.hyp.v);
                    let ot = ArenaMut::new(&mut ws.hyp.t);
                    let odp = ArenaMut::new(&mut ws.hyp.dp3d);
                    let (su, sv, st, sdp): (&[f64], &[f64], &[f64], &[f64]) =
                        (&state.u, &state.v, &state.t, &state.dp3d);
                    sched.run(nelem, &|_w, e| {
                        let r = e * fl..(e + 1) * fl;
                        let (ou, ov, ot, odp) = unsafe {
                            (
                                ou.slice(e * fl, fl),
                                ov.slice(e * fl, fl),
                                ot.slice(e * fl, fl),
                                odp.slice(e * fl, fl),
                            )
                        };
                        hypervis_pass_element_blocked(
                            &bops[e],
                            nlev,
                            &su[r.clone()],
                            &sv[r.clone()],
                            &st[r.clone()],
                            &sdp[r],
                            ou,
                            ov,
                            ot,
                            odp,
                        );
                    });
                }
                dss.apply_flat4(
                    [&mut ws.hyp.u, &mut ws.hyp.v, &mut ws.hyp.t, &mut ws.hyp.dp3d],
                    nlev,
                );
                // Second Laplacian in place (del^4 = lap(lap)).
                {
                    let au = ArenaMut::new(&mut ws.hyp.u);
                    let av = ArenaMut::new(&mut ws.hyp.v);
                    let at = ArenaMut::new(&mut ws.hyp.t);
                    let adp = ArenaMut::new(&mut ws.hyp.dp3d);
                    sched.run(nelem, &|_w, e| {
                        let (u, v, t, dp) = unsafe {
                            (
                                au.slice(e * fl, fl),
                                av.slice(e * fl, fl),
                                at.slice(e * fl, fl),
                                adp.slice(e * fl, fl),
                            )
                        };
                        hypervis_pass_levels_blocked(&bops[e], nlev, u, v, t, dp);
                    });
                }
                // Final DSS fused with the forward-Euler apply: the plan's
                // negated `dt_sub * nu` coefficients turn `x -= c * lap`
                // into the scatter's `x += (-c) * lap` bitwise-identically,
                // and all four fields ride one walk of the assembly map.
                dss.apply_flat_scaled_add4(
                    [&ws.hyp.u, &ws.hyp.v, &ws.hyp.t, &ws.hyp.dp3d],
                    nlev,
                    [&plan.damp_u, &plan.damp_u, &plan.damp_u, &plan.damp_dp],
                    [&mut state.u, &mut state.v, &mut state.t, &mut state.dp3d],
                    fl,
                );
            }
            return Ok(());
        }
        // Top-of-model sponge: ordinary Laplacian damping on the top
        // layers (sign +nu_top lap, i.e. diffusion).
        if hv.nu_top > 0.0 && hv.sponge_layers > 0 {
            let ks = hv.sponge_layers.min(nlev);
            let sl = ks * NPTS;
            for e in 0..ops.len() {
                ws.sponge_u[e * sl..(e + 1) * sl].copy_from_slice(&state.u[e * fl..e * fl + sl]);
                ws.sponge_v[e * sl..(e + 1) * sl].copy_from_slice(&state.v[e * fl..e * fl + sl]);
                ws.sponge_t[e * sl..(e + 1) * sl].copy_from_slice(&state.t[e * fl..e * fl + sl]);
            }
            vlaplace_flat_path(kernels, ops, bops, dss, sched, ks, &mut ws.sponge_u, &mut ws.sponge_v);
            laplace_flat_path(kernels, ops, bops, dss, sched, ks, &mut ws.sponge_t);
            for e in 0..ops.len() {
                for (k_rel, damp) in (0..ks).map(|k| (k, 1.0 / (1 << k) as f64)) {
                    for p in 0..NPTS {
                        let i = k_rel * NPTS + p;
                        let si = e * sl + i;
                        let gi = e * fl + i;
                        state.u[gi] += cfg.dt * hv.nu_top * damp * ws.sponge_u[si];
                        state.v[gi] += cfg.dt * hv.nu_top * damp * ws.sponge_v[si];
                        state.t[gi] += cfg.dt * hv.nu_top * damp * ws.sponge_t[si];
                    }
                }
            }
        }
        let dt_sub = cfg.dt / subcycles as f64;
        for _ in 0..subcycles {
            ws.hyp.copy_from_state(state);
            // del^4 via two Laplacians with DSS (vector Laplacian for wind).
            vlaplace_flat_path(kernels, ops, bops, dss, sched, nlev, &mut ws.hyp.u, &mut ws.hyp.v);
            vlaplace_flat_path(kernels, ops, bops, dss, sched, nlev, &mut ws.hyp.u, &mut ws.hyp.v);
            biharmonic_flat_path(kernels, ops, bops, dss, sched, nlev, &mut ws.hyp.t);
            biharmonic_flat_path(kernels, ops, bops, dss, sched, nlev, &mut ws.hyp.dp3d);
            for (x, l) in state.u.iter_mut().zip(&ws.hyp.u) {
                *x -= dt_sub * hv.nu * l;
            }
            for (x, l) in state.v.iter_mut().zip(&ws.hyp.v) {
                *x -= dt_sub * hv.nu * l;
            }
            for (x, l) in state.t.iter_mut().zip(&ws.hyp.t) {
                *x -= dt_sub * hv.nu * l;
            }
            for (x, l) in state.dp3d.iter_mut().zip(&ws.hyp.dp3d) {
                *x -= dt_sub * hv.nu_p * l;
            }
        }
        Ok(())
    }

    /// Member-batched hyperviscosity: apply the subcycled biharmonic
    /// operator to the listed `members` of `states` with the step plan
    /// built **once** and every coefficient walk shared across members
    /// (ROADMAP item 4's "lane dimension = member"). With
    /// [`MemberKernelPath::Lanes`] (the default), each *full* group of four
    /// members runs on lane-transposed tiles — one `V4F64` per grid value
    /// whose lanes are members, coefficients splat — so the per-output
    /// working set never spills regardless of batch width; the ragged tail
    /// (N mod 4 members) rides the width-proportional chunk kernels, since
    /// a partial lane group pays the whole 4-wide arithmetic.
    /// [`MemberKernelPath::Chunked`] keeps the pair-wise row kernels for
    /// everything as the A/B baseline (wider row chunks spill registers —
    /// see the chunk-width comment in the body).
    ///
    /// `members` must be strictly increasing indices into `states`, at most
    /// `ens.lanes()` of them. Member `m`'s result is bitwise identical to
    /// [`Dycore::apply_hypervis_n`] on member `m` alone: the batched kernels
    /// keep each member's accumulation order unchanged, the shared
    /// [`ElemHypervisPlan`] depends only on the grid and step configuration
    /// (never on member state), and the per-member DSS applies run in the
    /// standalone order. On the scalar kernel path this falls back to the
    /// per-member oracle loop.
    ///
    /// # Errors
    /// [`HealthError::Hypervis`] when the shared plan rejects a corrupt
    /// element metric or non-finite coefficient; no member is touched on
    /// `Err` (the plan is built before any field is written).
    pub fn apply_hypervis_members(
        &mut self,
        states: &mut [State],
        members: &[usize],
        ens: &mut crate::workspace::EnsembleWorkspace,
        subcycles: usize,
    ) -> Result<(), HealthError> {
        let hv = self.cfg.hypervis;
        if members.is_empty() || (hv.nu == 0.0 && hv.nu_p == 0.0) {
            return Ok(());
        }
        assert!(members.len() <= ens.lanes(), "more members than ensemble lanes");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]) && *members.last().unwrap() < states.len(),
            "members must be strictly increasing indices into states"
        );
        if let KernelPath::Scalar = self.kernels {
            for &m in members {
                self.apply_hypervis_n(&mut states[m], subcycles)?;
            }
            return Ok(());
        }
        let use_lanes =
            matches!(self.member_kernels, MemberKernelPath::Lanes) && members.len() >= 4;
        let Dycore { ops, dss, dims, cfg, sched, ws, bops, .. } = self;
        let nlev = dims.nlev;
        let fl = dims.field_len();
        ws.hv_plan.build(&hv, cfg.dt, subcycles, nlev, ops)?;
        let nelem = ops.len();
        // Disjointness: `members` is strictly increasing (asserted above),
        // so the raw-pointer reborrows below hand out non-aliasing `&mut`s.
        let base = states.as_mut_ptr();
        let mut done = 0;
        if use_lanes {
            // Lane-transposed path: sweep members in *full* groups of four,
            // each sweep gathering its members into the shared lane tiles.
            // A partial group would still pay the full 4-wide vector
            // arithmetic (the dead lanes compute too — a 2-member lane
            // sweep costs as much as a 4-member one), so the ragged tail
            // falls through to the width-proportional chunk kernels below;
            // the duplicated-dead-lane tail path stays available (and
            // pinned by the kernel tests) for targets where a lane sweep
            // is cheaper than a chunk pass at any width.
            while members.len() - done >= 4 {
                let idx = &members[done..done + 4];
                let chunk: [&mut State; 4] =
                    core::array::from_fn(|m| unsafe { &mut *base.add(idx[m]) });
                hypervis_members_lanes::<4>(
                    sched, dss, bops, &ws.hv_plan, &hv, nlev, fl, nelem, &mut ens.tiles, chunk,
                    subcycles,
                );
                done += 4;
            }
            if done == members.len() {
                return Ok(());
            }
        }
        while done < members.len() {
            let left = members.len() - done;
            // Chunk width is capped at 2: the M=4 variant keeps four members'
            // [[V4F64; NP]; M] working sets live through each fused Laplacian
            // pass, which spills out of the 16 ymm registers and runs ~2x
            // slower *per member* than M=2 on this target (measured on the
            // ne4 aquaplanet: 118 ms/member at M=4 vs 55 ms at M=2 vs 60 ms
            // serial). M=2 shares the coefficient walk without spilling.
            let take = if left >= 2 { 2 } else { 1 };
            let idx = &members[done..done + take];
            let (lanes_head, _) = ens.lanes.split_at_mut(done + take);
            let lanes = &mut lanes_head[done..];
            match take {
                2 => {
                    let chunk: [&mut State; 2] =
                        core::array::from_fn(|m| unsafe { &mut *base.add(idx[m]) });
                    let mut it = lanes.iter_mut();
                    let hyps: [&mut DynFields; 2] = core::array::from_fn(|_| it.next().unwrap());
                    hypervis_members_chunk::<2>(
                        sched, dss, bops, &ws.hv_plan, &hv, nlev, fl, nelem,
                        (&mut ws.sponge_u, &mut ws.sponge_v, &mut ws.sponge_t),
                        chunk, hyps, subcycles,
                    );
                }
                _ => {
                    let chunk: [&mut State; 1] = [unsafe { &mut *base.add(idx[0]) }];
                    let mut it = lanes.iter_mut();
                    let hyps: [&mut DynFields; 1] = core::array::from_fn(|_| it.next().unwrap());
                    hypervis_members_chunk::<1>(
                        sched, dss, bops, &ws.hv_plan, &hv, nlev, fl, nelem,
                        (&mut ws.sponge_u, &mut ws.sponge_v, &mut ws.sponge_t),
                        chunk, hyps, subcycles,
                    );
                }
            }
            done += take;
        }
        Ok(())
    }

    /// Member-batched dynamics: advance the listed `members` of `states`
    /// by one dt of the 5-stage RK, batching up to four members per sweep
    /// through the lane-transposed RHS kernel
    /// ([`element_rhs_apply_member_lanes`]) so one coefficient walk and one
    /// DSS assembly walk serve the whole sweep. Member `m`'s result is
    /// bitwise identical to [`Dycore::dynamics_step`] on member `m` alone:
    /// lane `m` replays the blocked kernel's exact per-member scalar
    /// sequence and the lane DSS keeps the canonical accumulation order
    /// per lane. Falls back to the per-member step on the scalar kernel
    /// path, under [`MemberKernelPath::Chunked`], or with fewer than two
    /// members.
    pub fn dynamics_step_members(
        &mut self,
        states: &mut [State],
        members: &[usize],
        ens: &mut crate::workspace::EnsembleWorkspace,
    ) {
        if members.is_empty() {
            return;
        }
        assert!(
            members.windows(2).all(|w| w[0] < w[1]) && *members.last().unwrap() < states.len(),
            "members must be strictly increasing indices into states"
        );
        let use_lanes = matches!(self.kernels, KernelPath::Blocked)
            && matches!(self.member_kernels, MemberKernelPath::Lanes)
            && members.len() >= 4;
        let mut done = 0;
        if use_lanes {
            let dt = self.cfg.dt;
            let Dycore { dss, rhs, dims, sched, ws, bops, .. } = self;
            let nlev = dims.nlev;
            let fl = dims.field_len();
            let ptop = rhs.vert.ptop();
            let nelem = bops.len();
            // Disjointness: `members` is strictly increasing (asserted
            // above), so the raw-pointer reborrows below hand out
            // non-aliasing `&mut`s. Full groups of four only — a partial
            // lane group pays the whole 4-wide arithmetic, so the ragged
            // tail steps member-serially below instead.
            let base = states.as_mut_ptr();
            while members.len() - done >= 4 {
                let idx = &members[done..done + 4];
                let chunk: [&mut State; 4] =
                    core::array::from_fn(|m| unsafe { &mut *base.add(idx[m]) });
                dynamics_members_lanes::<4>(
                    sched,
                    dss,
                    bops,
                    &ws.workers,
                    nlev,
                    fl,
                    nelem,
                    ptop,
                    dt,
                    &mut ens.tiles,
                    chunk,
                );
                done += 4;
            }
        }
        for &m in &members[done..] {
            self.dynamics_step(&mut states[m]);
        }
    }

    /// Advance tracers by one dt with 3-stage SSP-RK2 (`euler_step`).
    pub fn euler_step_tracers(&mut self, state: &mut State) {
        if self.dims.qsize == 0 {
            return;
        }
        let dt = self.cfg.dt;
        let Dycore { ops, dss, dims, cfg, sched, ws, kernels, bops, .. } = self;
        ws.qdp0.copy_from_slice(&state.qdp);

        match kernels {
            KernelPath::Blocked => {
                // Fused stages: advect + SSP combine in one pass, with the
                // mass fluxes hoisted across the tracer loop.
                // Stage 1: q1 = q0 + dt L(q0)
                euler_stage_flat_blocked(
                    bops, *dims, sched, &state.u, &state.v, &state.dp3d, &ws.qdp0, &ws.qdp0, dt,
                    StageCombine::Replace, &mut ws.q1,
                );
                finish_tracer_stage(ops, dss, *dims, cfg.limiter, &mut ws.q1);
                // Stage 2: q2 = 3/4 q0 + 1/4 (q1 + dt L(q1))
                euler_stage_flat_blocked(
                    bops, *dims, sched, &state.u, &state.v, &state.dp3d, &ws.q1, &ws.qdp0, dt,
                    StageCombine::Ssp2, &mut ws.q2,
                );
                finish_tracer_stage(ops, dss, *dims, cfg.limiter, &mut ws.q2);
                // Stage 3: q^{n+1} = 1/3 q0 + 2/3 (q2 + dt L(q2))
                euler_stage_flat_blocked(
                    bops, *dims, sched, &state.u, &state.v, &state.dp3d, &ws.q2, &ws.qdp0, dt,
                    StageCombine::Ssp3, &mut state.qdp,
                );
                finish_tracer_stage(ops, dss, *dims, cfg.limiter, &mut state.qdp);
            }
            KernelPath::Scalar => {
                // Stage 1: q1 = q0 + dt L(q0)
                euler_substep_flat(ops, *dims, sched, &state.u, &state.v, &state.dp3d, &ws.qdp0, dt, &mut ws.q1);
                finish_tracer_stage(ops, dss, *dims, cfg.limiter, &mut ws.q1);
                // Stage 2: q2 = 3/4 q0 + 1/4 (q1 + dt L(q1))
                euler_substep_flat(ops, *dims, sched, &state.u, &state.v, &state.dp3d, &ws.q1, dt, &mut ws.qtmp);
                for (q2, (q0, t)) in ws.q2.iter_mut().zip(ws.qdp0.iter().zip(&ws.qtmp)) {
                    *q2 = 0.75 * q0 + 0.25 * t;
                }
                finish_tracer_stage(ops, dss, *dims, cfg.limiter, &mut ws.q2);
                // Stage 3: q^{n+1} = 1/3 q0 + 2/3 (q2 + dt L(q2))
                euler_substep_flat(ops, *dims, sched, &state.u, &state.v, &state.dp3d, &ws.q2, dt, &mut ws.qtmp);
                for (qf, (q0, t)) in state.qdp.iter_mut().zip(ws.qdp0.iter().zip(&ws.qtmp)) {
                    *qf = q0 / 3.0 + 2.0 / 3.0 * t;
                }
                finish_tracer_stage(ops, dss, *dims, cfg.limiter, &mut state.qdp);
            }
        }
    }

    /// Remap the column back to reference hybrid levels (`vertical_remap`).
    ///
    /// # Errors
    /// A collapsed Lagrangian layer or mass-inconsistent column surfaces as
    /// [`HealthError::Remap`] instead of panicking a worker thread, so the
    /// resilient driver can roll back to a checkpoint. On `Err` the state
    /// may hold partially remapped elements.
    pub fn vertical_remap(&mut self, state: &mut State) -> Result<(), HealthError> {
        let Dycore { ops, rhs, dims, sched, ws, kernels, .. } = self;
        let kernels = *kernels;
        let nlev = dims.nlev;
        let qsize = dims.qsize;
        let fl = dims.field_len();
        let tl = dims.tracer_len();
        let vert = &rhs.vert;
        let workers = &ws.workers;
        // First remap failure observed by any worker (workers cannot
        // propagate `?` through the scheduler closure).
        let failure: Mutex<Option<RemapError>> = Mutex::new(None);
        let au = ArenaMut::new(&mut state.u);
        let av = ArenaMut::new(&mut state.v);
        let at = ArenaMut::new(&mut state.t);
        let adp = ArenaMut::new(&mut state.dp3d);
        let aq = ArenaMut::new(&mut state.qdp);
        sched.run(ops.len(), &|w, e| {
            // One scratch slot per worker; windows are element-disjoint.
            let scratch = unsafe { workers.get(w) };
            let u = unsafe { au.slice(e * fl, fl) };
            let v = unsafe { av.slice(e * fl, fl) };
            let t = unsafe { at.slice(e * fl, fl) };
            let dp3d = unsafe { adp.slice(e * fl, fl) };
            let qdp = unsafe { aq.slice(e * tl, tl) };
            let res = match kernels {
                KernelPath::Blocked => {
                    // Build the dp3d-only plan once, then stream u/v/t and
                    // every tracer through its coefficient-apply pass.
                    let WorkerScratch { plan, apply, .. } = scratch;
                    plan.build(vert, nlev, dp3d).map(|()| {
                        remap_element_planned(plan, nlev, qsize, u, v, t, dp3d, qdp, apply)
                    })
                }
                KernelPath::Scalar => {
                    let WorkerScratch { remap, col_src, col_dst, col_val, col_out, .. } = scratch;
                    remap_element_scalar(
                        vert, nlev, qsize, u, v, t, dp3d, qdp, col_src, col_dst, col_val, col_out,
                        remap,
                    )
                }
            };
            if let Err(e) = res {
                *failure.lock().unwrap() = Some(e);
            }
        });
        match failure.into_inner().unwrap() {
            Some(e) => Err(HealthError::from(e)),
            None => Ok(()),
        }
    }

    /// One full model step: dynamics RK + hyperviscosity + tracer advection
    /// + (every `rsplit` steps) vertical remap. Heap-allocation-free.
    pub fn step(&mut self, state: &mut State) {
        match self.step_path {
            StepPath::Bulk => {
                self.dynamics_step(state);
                // The unguarded driver has no rollback path; a grid the
                // hyperviscosity plan rejects is fatal here.
                self.apply_hypervis(state).expect("hyperviscosity plan rejected");
                self.euler_step_tracers(state);
            }
            StepPath::TaskGraph => {
                let subcycles = self.hypervis_subcycles();
                // Without health guards the only pipeline error left is a
                // hyperviscosity plan rejection, fatal like the bulk arm.
                self.taskgraph_pipeline(state, subcycles, None)
                    .expect("hyperviscosity plan rejected");
            }
        }
        self.steps_since_remap += 1;
        if self.steps_since_remap >= self.cfg.rsplit {
            // The unguarded driver has no rollback path to route the
            // verdict into; a broken column is fatal here.
            self.vertical_remap(state).expect("vertical remap failed");
            self.steps_since_remap = 0;
        }
    }

    /// [`Dycore::step`] with in-step health guards: every RK stage is
    /// scanned for non-finite values and collapsed layers, and the step's
    /// advective CFL number is estimated afterwards. A CFL breach arms the
    /// degradation policy, so the next [`DegradePolicy::halve_dt_steps`]
    /// steps run as two `dt/2` substeps with extra hyperviscosity
    /// subcycles. With guards disabled this is exactly [`Dycore::step`].
    ///
    /// On `Err` the state may hold a partially advanced step and must be
    /// restored from a checkpoint before continuing.
    pub fn step_checked(&mut self, state: &mut State) -> Result<StepHealth, HealthError> {
        if !self.health.enabled {
            self.step(state);
            return Ok(StepHealth::unchecked());
        }
        let full_dt = self.cfg.dt;
        let (splits, extra) = if self.degrade_pending > 0 {
            self.degrade_pending -= 1;
            (2usize, self.degrade.extra_subcycles)
        } else {
            (1usize, 0)
        };
        let mut health = StepHealth::begin();
        health.degraded = splits > 1;
        self.cfg.dt = full_dt / splits as f64;
        for _ in 0..splits {
            match self.step_path {
                StepPath::Bulk => {
                    if let Err(e) = self.dynamics_step_guarded(state, &mut health) {
                        self.cfg.dt = full_dt;
                        return Err(e);
                    }
                    let subcycles = self.hypervis_subcycles() + extra;
                    if let Err(e) = self.apply_hypervis_n(state, subcycles) {
                        self.cfg.dt = full_dt;
                        return Err(e);
                    }
                    self.euler_step_tracers(state);
                    // Post-advection scan covers the tracer arenas, which
                    // the RK stage scans never see.
                    let scan =
                        scan_stage(&state.u, &state.v, &state.t, &state.dp3d, &state.qdp);
                    if let Err(e) = commit_scan(&mut health, &self.health, TRACER_STAGE, scan) {
                        self.cfg.dt = full_dt;
                        return Err(e);
                    }
                }
                StepPath::TaskGraph => {
                    let subcycles = self.hypervis_subcycles() + extra;
                    if let Err(e) = self.taskgraph_pipeline(state, subcycles, Some(&mut health)) {
                        self.cfg.dt = full_dt;
                        return Err(e);
                    }
                }
            }
        }
        self.cfg.dt = full_dt;
        self.steps_since_remap += 1;
        if self.steps_since_remap >= self.cfg.rsplit {
            self.vertical_remap(state)?;
            self.steps_since_remap = 0;
        }
        // CFL is judged against the nominal dt: while winds stay too fast
        // for the full step, degraded (halved-dt) stepping keeps re-arming.
        health.cfl = health.max_wind * full_dt / self.char_dx;
        if health.cfl > self.health.cfl_limit {
            self.degrade_pending = self.degrade_pending.max(self.degrade.halve_dt_steps);
        }
        Ok(health)
    }

    /// [`Dycore::dynamics_step`] with a health scan after each RK stage.
    fn dynamics_step_guarded(
        &mut self,
        state: &mut State,
        health: &mut StepHealth,
    ) -> Result<(), HealthError> {
        let dt = self.cfg.dt;
        let hcfg = self.health;
        let Dycore { ops, dss, rhs, dims, sched, ws, kernels, bops, .. } = self;
        ws.base.copy_from_state(state);
        ws.stage.copy_from_state(state);
        for (stage, &c) in KG5_COEFFS.iter().enumerate() {
            rk_substep(
                *kernels,
                ops,
                bops,
                dss,
                rhs,
                *dims,
                sched,
                &ws.workers,
                &ws.base,
                &ws.stage,
                &state.phis,
                c * dt,
                &mut ws.next,
            );
            let scan = scan_stage(&ws.next.u, &ws.next.v, &ws.next.t, &ws.next.dp3d, &[]);
            commit_scan(health, &hcfg, stage, scan)?;
            std::mem::swap(&mut ws.stage, &mut ws.next);
        }
        state.u.copy_from_slice(&ws.stage.u);
        state.v.copy_from_slice(&ws.stage.v);
        state.t.copy_from_slice(&ws.stage.t);
        state.dp3d.copy_from_slice(&ws.stage.dp3d);
        Ok(())
    }

    /// One complete pipeline pass — RK dynamics, sponge, hyperviscosity
    /// subcycles and tracer advection (the vertical remap stays a separate
    /// phase) — executed as a single task-graph run: per-element compute
    /// and canonical-order gather substages advance the moment their
    /// neighbor contributions land, instead of marching through stage
    /// barriers. Bitwise identical to the bulk pipeline for any worker
    /// count and any seed order (DESIGN.md §5.6).
    ///
    /// With `health`, RK stage scans accumulate per worker inside the
    /// gathers and commit in bulk stage order afterwards, so the first
    /// error (stage and value) matches the bulk path's. On `Err` the
    /// state may hold a fully advanced unvetted pipeline result where the
    /// bulk path would have stopped mid-step; either way the contract is
    /// "restore from a checkpoint before continuing".
    fn taskgraph_pipeline(
        &mut self,
        state: &mut State,
        subcycles: usize,
        health: Option<&mut StepHealth>,
    ) -> Result<(), HealthError> {
        let seed = self.taskgraph_seed;
        let hcfg = self.health;
        let hv = self.cfg.hypervis;
        let hyp_on = !(hv.nu == 0.0 && hv.nu_p == 0.0);
        let checked = health.is_some();
        let Dycore { ops, rhs, dims, cfg, sched, ws, kernels, bops, gather, neighbors, .. } = self;
        let kernels = *kernels;
        let dims = *dims;
        let nlev = dims.nlev;
        let qsize = dims.qsize;
        let fl = dims.field_len();
        let tl = dims.tracer_len();
        let nelem = ops.len();
        let ptop = rhs.vert.ptop();
        let dt = cfg.dt;
        let limiter = cfg.limiter;
        let ks = hv.sponge_layers.min(nlev);
        let sl = ks * NPTS;

        let StepWorkspace {
            stage,
            next,
            hyp,
            qdp0,
            q1,
            q2,
            workers,
            graph,
            raw0,
            raw1,
            rawcap,
            stages,
            scans,
            hv_plan,
            ..
        } = ws;
        // The pipeline reads the same hoisted plan as the bulk drivers; a
        // corrupt element aborts before any stage runs.
        if hyp_on {
            hv_plan.build(&hv, dt, subcycles, nlev, ops)?;
        }
        let hv_plan: &ElemHypervisPlan = hv_plan;
        let rawcap = *rawcap;
        let workers: &crate::sched::PerWorker<WorkerScratch> = workers;
        let scans: &crate::sched::PerWorker<[crate::health::StageScan; 5]> = scans;

        // Stage list mirroring the bulk phase order exactly.
        stages.clear();
        for s in 0..KG5_COEFFS.len() {
            stages.push(PipelineStage::Rk(s));
        }
        if hyp_on {
            if hv.nu_top > 0.0 && ks > 0 {
                stages.push(PipelineStage::Sponge);
            }
            for _ in 0..subcycles {
                stages.push(PipelineStage::HypLap { pass: 0 });
                stages.push(PipelineStage::HypLap { pass: 1 });
            }
        }
        if qsize > 0 {
            for s in 0..3 {
                stages.push(PipelineStage::Tracer(s));
            }
        }
        let stages: &[PipelineStage] = stages;
        let nstages = stages.len();

        if checked {
            for w in 0..sched.nthreads() {
                *unsafe { scans.get(w) } = [EMPTY_SCAN; 5];
            }
        }
        graph.ensure(nelem);
        graph.shuffle_seed(nelem, seed);

        {
            // Arenas. Safety of the unchecked windows: every substage
            // writes only element-`e` windows; cross-element *reads* in
            // gathers are ordered after the writes they need by the
            // graph's eligibility rules, and the write-after-read hazard
            // on raw windows is excluded by the alternating stage parity
            // (DESIGN.md §5.6).
            let su = ArenaMut::new(&mut state.u);
            let sv = ArenaMut::new(&mut state.v);
            let st = ArenaMut::new(&mut state.t);
            let sdp = ArenaMut::new(&mut state.dp3d);
            let sq = ArenaMut::new(&mut state.qdp);
            let phis: &[f64] = &state.phis;
            // DSS'd RK stage `s` lands in parity arena `s % 2`.
            let du = [ArenaMut::new(&mut next.u), ArenaMut::new(&mut stage.u)];
            let dv = [ArenaMut::new(&mut next.v), ArenaMut::new(&mut stage.v)];
            let dtt = [ArenaMut::new(&mut next.t), ArenaMut::new(&mut stage.t)];
            let ddp = [ArenaMut::new(&mut next.dp3d), ArenaMut::new(&mut stage.dp3d)];
            let hu = ArenaMut::new(&mut hyp.u);
            let hvv = ArenaMut::new(&mut hyp.v);
            let ht = ArenaMut::new(&mut hyp.t);
            let hdp = ArenaMut::new(&mut hyp.dp3d);
            let aq0 = ArenaMut::new(qdp0);
            let aq1 = ArenaMut::new(q1);
            let aq2 = ArenaMut::new(q2);
            let raws = [ArenaMut::new(raw0), ArenaMut::new(raw1)];

            let exec = |w: usize, e: usize, sub: usize| {
                let sidx = sub >> 1;
                let is_gather = sub & 1 == 1;
                // Raw (pre-DSS) windows alternate by stage parity.
                let raw = raws[sidx & 1];
                let ro = e * rawcap;
                match stages[sidx] {
                    PipelineStage::Rk(s) => {
                        if !is_gather {
                            // out = state + c dt RHS(eval), pre-DSS.
                            let c_dt = KG5_COEFFS[s] * dt;
                            let (ou, ov, ot, odp) = unsafe {
                                (
                                    raw.slice(ro, fl),
                                    raw.slice(ro + fl, fl),
                                    raw.slice(ro + 2 * fl, fl),
                                    raw.slice(ro + 3 * fl, fl),
                                )
                            };
                            // The state is untouched during dynamics, so it
                            // doubles as the RK base (bulk copies it).
                            let (bu, bv, bt, bdp) = unsafe {
                                (
                                    &*su.slice(e * fl, fl),
                                    &*sv.slice(e * fl, fl),
                                    &*st.slice(e * fl, fl),
                                    &*sdp.slice(e * fl, fl),
                                )
                            };
                            let (evu, evv, evt, evdp): (&[f64], &[f64], &[f64], &[f64]) =
                                if s == 0 {
                                    (bu, bv, bt, bdp)
                                } else {
                                    let pr = (s - 1) & 1;
                                    unsafe {
                                        (
                                            &*du[pr].slice(e * fl, fl),
                                            &*dv[pr].slice(e * fl, fl),
                                            &*dtt[pr].slice(e * fl, fl),
                                            &*ddp[pr].slice(e * fl, fl),
                                        )
                                    }
                                };
                            let phis_e = &phis[e * NPTS..(e + 1) * NPTS];
                            let scratch = unsafe { workers.get(w) };
                            match kernels {
                                KernelPath::Blocked => element_rhs_apply_blocked(
                                    &bops[e], nlev, ptop, evu, evv, evt, evdp, phis_e, bu, bv,
                                    bt, bdp, c_dt, ou, ov, ot, odp, &mut scratch.rhs,
                                ),
                                KernelPath::Scalar => {
                                    let WorkerScratch { tend, rhs: rhs_scratch, .. } = scratch;
                                    element_rhs_raw(
                                        &ops[e],
                                        nlev,
                                        ptop,
                                        evu,
                                        evv,
                                        evt,
                                        evdp,
                                        phis_e,
                                        &mut tend.u,
                                        &mut tend.v,
                                        &mut tend.t,
                                        &mut tend.dp3d,
                                        rhs_scratch,
                                    );
                                    for i in 0..fl {
                                        ou[i] = bu[i] + c_dt * tend.u[i];
                                        ov[i] = bv[i] + c_dt * tend.v[i];
                                        ot[i] = bt[i] + c_dt * tend.t[i];
                                        odp[i] = bdp[i] + c_dt * tend.dp3d[i];
                                    }
                                }
                            }
                        } else {
                            // Canonical-order DSS of the four prognostics;
                            // the final stage lands directly in the state.
                            let (ou, ov, ot, odp) = if s == 4 {
                                unsafe {
                                    (
                                        su.slice(e * fl, fl),
                                        sv.slice(e * fl, fl),
                                        st.slice(e * fl, fl),
                                        sdp.slice(e * fl, fl),
                                    )
                                }
                            } else {
                                let pr = s & 1;
                                unsafe {
                                    (
                                        du[pr].slice(e * fl, fl),
                                        dv[pr].slice(e * fl, fl),
                                        dtt[pr].slice(e * fl, fl),
                                        ddp[pr].slice(e * fl, fl),
                                    )
                                }
                            };
                            let mut part = EMPTY_SCAN;
                            for k in 0..nlev {
                                let ko = k * NPTS;
                                for p in 0..NPTS {
                                    let pi = e * NPTS + p;
                                    let gu = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + ko + c % NPTS)
                                    });
                                    let gv = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + fl + ko + c % NPTS)
                                    });
                                    let gt = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + 2 * fl + ko + c % NPTS)
                                    });
                                    let gdp = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + 3 * fl + ko + c % NPTS)
                                    });
                                    ou[ko + p] = gu;
                                    ov[ko + p] = gv;
                                    ot[ko + p] = gt;
                                    odp[ko + p] = gdp;
                                    if checked {
                                        // Same predicate as `scan_stage`.
                                        if !(gu.is_finite()
                                            && gv.is_finite()
                                            && gt.is_finite()
                                            && gdp.is_finite())
                                        {
                                            part.nonfinite += 1;
                                        }
                                        if gdp < part.min_dp3d {
                                            part.min_dp3d = gdp;
                                        }
                                        let s2 = gu * gu + gv * gv;
                                        if s2 > part.max_speed2 {
                                            part.max_speed2 = s2;
                                        }
                                    }
                                }
                            }
                            if checked {
                                let acc = &mut unsafe { scans.get(w) }[s];
                                acc.nonfinite += part.nonfinite;
                                if part.min_dp3d < acc.min_dp3d {
                                    acc.min_dp3d = part.min_dp3d;
                                }
                                if part.max_speed2 > acc.max_speed2 {
                                    acc.max_speed2 = part.max_speed2;
                                }
                            }
                        }
                    }
                    PipelineStage::Sponge => {
                        if !is_gather {
                            // vlaplace(u, v) and lap(T) of the state's top
                            // `ks` levels into the raw window.
                            let (ru, rv, rt) = unsafe {
                                (
                                    raw.slice(ro, sl),
                                    raw.slice(ro + sl, sl),
                                    raw.slice(ro + 2 * sl, sl),
                                )
                            };
                            let (bu, bv, bt) = unsafe {
                                (
                                    &*su.slice(e * fl, fl),
                                    &*sv.slice(e * fl, fl),
                                    &*st.slice(e * fl, fl),
                                )
                            };
                            match kernels {
                                KernelPath::Blocked => {
                                    sponge_pass_element_blocked(
                                        &bops[e], ks, &bu[..sl], &bv[..sl], &bt[..sl], ru, rv, rt,
                                    );
                                }
                                KernelPath::Scalar => {
                                    for k in 0..ks {
                                        let r = k * NPTS..(k + 1) * NPTS;
                                        let mut lu = [0.0; NPTS];
                                        let mut lv = [0.0; NPTS];
                                        ops[e].vlaplace_sphere(
                                            &bu[r.clone()],
                                            &bv[r.clone()],
                                            &mut lu,
                                            &mut lv,
                                        );
                                        ru[r.clone()].copy_from_slice(&lu);
                                        rv[r.clone()].copy_from_slice(&lv);
                                        let mut lt = [0.0; NPTS];
                                        ops[e].laplace_sphere_wk(&bt[r.clone()], &mut lt);
                                        rt[r].copy_from_slice(&lt);
                                    }
                                }
                            }
                        } else {
                            // Gather + fused sponge damping increment.
                            let (ou, ov, ot) = unsafe {
                                (
                                    su.slice(e * fl, fl),
                                    sv.slice(e * fl, fl),
                                    st.slice(e * fl, fl),
                                )
                            };
                            for k in 0..ks {
                                // Hoisted `dt * nu_top * 2^-k` (bitwise the
                                // same product the bulk sponge forms).
                                let cs = hv_plan.sponge[k];
                                let ko = k * NPTS;
                                for p in 0..NPTS {
                                    let pi = e * NPTS + p;
                                    let gu = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + ko + c % NPTS)
                                    });
                                    let gv = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + sl + ko + c % NPTS)
                                    });
                                    let gt = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + 2 * sl + ko + c % NPTS)
                                    });
                                    ou[ko + p] += cs * gu;
                                    ov[ko + p] += cs * gv;
                                    ot[ko + p] += cs * gt;
                                }
                            }
                        }
                    }
                    PipelineStage::HypLap { pass } => {
                        if !is_gather {
                            // One Laplacian of (u, v, T, dp3d): of the
                            // state on pass 0, of the first-pass result on
                            // pass 1 (del^4 = lap(lap)).
                            let (ru, rv, rt, rdp) = unsafe {
                                (
                                    raw.slice(ro, fl),
                                    raw.slice(ro + fl, fl),
                                    raw.slice(ro + 2 * fl, fl),
                                    raw.slice(ro + 3 * fl, fl),
                                )
                            };
                            let (iu, iv, it, idp) = if pass == 0 {
                                unsafe {
                                    (
                                        &*su.slice(e * fl, fl),
                                        &*sv.slice(e * fl, fl),
                                        &*st.slice(e * fl, fl),
                                        &*sdp.slice(e * fl, fl),
                                    )
                                }
                            } else {
                                unsafe {
                                    (
                                        &*hu.slice(e * fl, fl),
                                        &*hvv.slice(e * fl, fl),
                                        &*ht.slice(e * fl, fl),
                                        &*hdp.slice(e * fl, fl),
                                    )
                                }
                            };
                            match kernels {
                                KernelPath::Blocked => {
                                    hypervis_pass_element_blocked(
                                        &bops[e], nlev, iu, iv, it, idp, ru, rv, rt, rdp,
                                    );
                                }
                                KernelPath::Scalar => {
                                    for k in 0..nlev {
                                        let r = k * NPTS..(k + 1) * NPTS;
                                        let mut lu = [0.0; NPTS];
                                        let mut lv = [0.0; NPTS];
                                        ops[e].vlaplace_sphere(
                                            &iu[r.clone()],
                                            &iv[r.clone()],
                                            &mut lu,
                                            &mut lv,
                                        );
                                        ru[r.clone()].copy_from_slice(&lu);
                                        rv[r.clone()].copy_from_slice(&lv);
                                        let mut lt = [0.0; NPTS];
                                        ops[e].laplace_sphere_wk(&it[r.clone()], &mut lt);
                                        rt[r.clone()].copy_from_slice(&lt);
                                        let mut ldp = [0.0; NPTS];
                                        ops[e].laplace_sphere_wk(&idp[r.clone()], &mut ldp);
                                        rdp[r].copy_from_slice(&ldp);
                                    }
                                }
                            }
                        } else if pass == 0 {
                            let (ou, ov, ot, odp) = unsafe {
                                (
                                    hu.slice(e * fl, fl),
                                    hvv.slice(e * fl, fl),
                                    ht.slice(e * fl, fl),
                                    hdp.slice(e * fl, fl),
                                )
                            };
                            for k in 0..nlev {
                                let ko = k * NPTS;
                                for p in 0..NPTS {
                                    let pi = e * NPTS + p;
                                    ou[ko + p] = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + ko + c % NPTS)
                                    });
                                    ov[ko + p] = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + fl + ko + c % NPTS)
                                    });
                                    ot[ko + p] = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + 2 * fl + ko + c % NPTS)
                                    });
                                    odp[ko + p] = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + 3 * fl + ko + c % NPTS)
                                    });
                                }
                            }
                        } else {
                            // Gather + fused damping subtraction.
                            let (ou, ov, ot, odp) = unsafe {
                                (
                                    su.slice(e * fl, fl),
                                    sv.slice(e * fl, fl),
                                    st.slice(e * fl, fl),
                                    sdp.slice(e * fl, fl),
                                )
                            };
                            // Hoisted `dt_sub * nu` / `dt_sub * nu_p`
                            // (bitwise the same products the bulk apply
                            // loops form).
                            let cu = hv_plan.coef_u;
                            let cdp = hv_plan.coef_dp;
                            for k in 0..nlev {
                                let ko = k * NPTS;
                                for p in 0..NPTS {
                                    let pi = e * NPTS + p;
                                    let gu = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + ko + c % NPTS)
                                    });
                                    let gv = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + fl + ko + c % NPTS)
                                    });
                                    let gt = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + 2 * fl + ko + c % NPTS)
                                    });
                                    let gdp = gather.gather_point(pi, |c| unsafe {
                                        raw.read((c / NPTS) * rawcap + 3 * fl + ko + c % NPTS)
                                    });
                                    ou[ko + p] -= cu * gu;
                                    ov[ko + p] -= cu * gv;
                                    ot[ko + p] -= cu * gt;
                                    odp[ko + p] -= cdp * gdp;
                                }
                            }
                        }
                    }
                    PipelineStage::Tracer(s) => {
                        if !is_gather {
                            let q0m = unsafe { aq0.slice(e * tl, tl) };
                            if s == 0 {
                                // First touch: snapshot the step-input
                                // tracer mass (bulk copies the full arena
                                // up front).
                                q0m.copy_from_slice(unsafe { &*sq.slice(e * tl, tl) });
                            }
                            let q0: &[f64] = q0m;
                            let qin: &[f64] = match s {
                                0 => q0,
                                1 => unsafe { &*aq1.slice(e * tl, tl) },
                                _ => unsafe { &*aq2.slice(e * tl, tl) },
                            };
                            let (uu, vv, dp) = unsafe {
                                (
                                    &*su.slice(e * fl, fl),
                                    &*sv.slice(e * fl, fl),
                                    &*sdp.slice(e * fl, fl),
                                )
                            };
                            let qout = unsafe { raw.slice(ro, tl) };
                            match kernels {
                                KernelPath::Blocked => {
                                    let combine = match s {
                                        0 => StageCombine::Replace,
                                        1 => StageCombine::Ssp2,
                                        _ => StageCombine::Ssp3,
                                    };
                                    euler_stage_element_blocked(
                                        &bops[e], nlev, qsize, uu, vv, dp, qin, q0, dt, combine,
                                        qout,
                                    );
                                }
                                KernelPath::Scalar => {
                                    for q in 0..qsize {
                                        for k in 0..nlev {
                                            let r = k * NPTS..(k + 1) * NPTS;
                                            let rq = (q * nlev + k) * NPTS
                                                ..(q * nlev + k + 1) * NPTS;
                                            let mut tend = [0.0; NPTS];
                                            tracer_flux_divergence(
                                                &ops[e],
                                                &uu[r.clone()],
                                                &vv[r.clone()],
                                                &dp[r],
                                                &qin[rq.clone()],
                                                &mut tend,
                                            );
                                            for p in 0..NPTS {
                                                let i = rq.start + p;
                                                let t1 = qin[i] + dt * tend[p];
                                                qout[i] = match s {
                                                    0 => t1,
                                                    1 => 0.75 * q0[i] + 0.25 * t1,
                                                    _ => q0[i] / 3.0 + 2.0 / 3.0 * t1,
                                                };
                                            }
                                        }
                                    }
                                }
                            }
                        } else {
                            let dest = match s {
                                0 => unsafe { aq1.slice(e * tl, tl) },
                                1 => unsafe { aq2.slice(e * tl, tl) },
                                _ => unsafe { sq.slice(e * tl, tl) },
                            };
                            for q in 0..qsize {
                                for k in 0..nlev {
                                    let qo = (q * nlev + k) * NPTS;
                                    for p in 0..NPTS {
                                        let pi = e * NPTS + p;
                                        dest[qo + p] = gather.gather_point(pi, |c| unsafe {
                                            raw.read((c / NPTS) * rawcap + qo + c % NPTS)
                                        });
                                    }
                                }
                            }
                            if limiter {
                                let mut spheremp = [0.0; NPTS];
                                spheremp.copy_from_slice(&ops[e].spheremp);
                                for q in 0..qsize {
                                    for k in 0..nlev {
                                        let r = (q * nlev + k) * NPTS
                                            ..(q * nlev + k + 1) * NPTS;
                                        limit_nonnegative(&spheremp, &mut dest[r]);
                                    }
                                }
                            }
                        }
                    }
                }
            };
            graph.run(sched, neighbors, nstages, &exec);
        }

        // Commit the scans in bulk order: RK stages 0..5, then the
        // post-advection tracer scan over the final state.
        if let Some(health) = health {
            for s in 0..KG5_COEFFS.len() {
                let mut merged = EMPTY_SCAN;
                for w in 0..sched.nthreads() {
                    let part = unsafe { scans.get(w) }[s];
                    merged.nonfinite += part.nonfinite;
                    merged.tracer_nonfinite += part.tracer_nonfinite;
                    if part.min_dp3d < merged.min_dp3d {
                        merged.min_dp3d = part.min_dp3d;
                    }
                    if part.max_speed2 > merged.max_speed2 {
                        merged.max_speed2 = part.max_speed2;
                    }
                }
                commit_scan(health, &hcfg, s, merged)?;
            }
            let scan = scan_stage(&state.u, &state.v, &state.t, &state.dp3d, &state.qdp);
            commit_scan(health, &hcfg, TRACER_STAGE, scan)?;
        }
        Ok(())
    }

    /// How many dynamics steps have run since the last vertical remap.
    /// Checkpoints record this so a restart resumes the remap cadence
    /// bitwise-identically.
    pub fn remap_phase(&self) -> usize {
        self.steps_since_remap
    }

    /// Restore the remap cadence (checkpoint restart).
    pub fn set_remap_phase(&mut self, phase: usize) {
        self.steps_since_remap = phase;
    }

    /// Steps still owed to the degradation policy (0 = healthy cadence).
    pub fn degrade_pending(&self) -> usize {
        self.degrade_pending
    }

    /// Global dry-air mass (`integral of sum_k dp3d dA`), Pa m^2.
    pub fn total_mass(&self, state: &State) -> f64 {
        let fields: Vec<Vec<f64>> = state
            .elems()
            .map(|es| {
                (0..NPTS)
                    .map(|p| (0..self.dims.nlev).map(|k| es.dp3d[k * NPTS + p]).sum())
                    .collect()
            })
            .collect();
        self.grid.global_integral(&fields)
    }

    /// Global mass of tracer `q`.
    pub fn total_tracer_mass(&self, state: &State, q: usize) -> f64 {
        let nlev = self.dims.nlev;
        let fields: Vec<Vec<f64>> = state
            .elems()
            .map(|es| {
                (0..NPTS)
                    .map(|p| (0..nlev).map(|k| es.qdp[(q * nlev + k) * NPTS + p]).sum())
                    .collect()
            })
            .collect();
        self.grid.global_integral(&fields)
    }

    /// Maximum wind speed (stability diagnostic).
    pub fn max_wind(&self, state: &State) -> f64 {
        let mut m: f64 = 0.0;
        for (u, v) in state.u.iter().zip(&state.v) {
            m = m.max((u * u + v * v).sqrt());
        }
        m
    }
}

/// One explicit sub-step across all elements: `out = base + c dt
/// RHS(eval)`, then DSS. RHS evaluations run on the scheduler with
/// per-worker scratch — the fused blocked kernel or the scalar
/// raw-tendency + apply pair, bitwise identical either way; the DSS is
/// serial and bitwise identical to the per-element path.
#[allow(clippy::too_many_arguments)]
fn rk_substep(
    kernels: KernelPath,
    ops: &[ElemOps],
    bops: &[BlockedOps],
    dss: &mut Dss,
    rhs: &Rhs,
    dims: Dims,
    sched: &ElemScheduler,
    workers: &crate::sched::PerWorker<WorkerScratch>,
    base: &DynFields,
    eval: &DynFields,
    phis: &[f64],
    c_dt: f64,
    out: &mut DynFields,
) {
    let nlev = dims.nlev;
    let fl = dims.field_len();
    let ptop = rhs.vert.ptop();
    {
        let ou = ArenaMut::new(&mut out.u);
        let ov = ArenaMut::new(&mut out.v);
        let ot = ArenaMut::new(&mut out.t);
        let odp = ArenaMut::new(&mut out.dp3d);
        sched.run(ops.len(), &|w, e| {
            let scratch = unsafe { workers.get(w) };
            let WorkerScratch { tend, rhs: rhs_scratch, .. } = scratch;
            let r = e * fl..(e + 1) * fl;
            let ou = unsafe { ou.slice(e * fl, fl) };
            let ov = unsafe { ov.slice(e * fl, fl) };
            let ot = unsafe { ot.slice(e * fl, fl) };
            let odp = unsafe { odp.slice(e * fl, fl) };
            match kernels {
                KernelPath::Blocked => element_rhs_apply_blocked(
                    &bops[e],
                    nlev,
                    ptop,
                    &eval.u[r.clone()],
                    &eval.v[r.clone()],
                    &eval.t[r.clone()],
                    &eval.dp3d[r.clone()],
                    &phis[e * NPTS..(e + 1) * NPTS],
                    &base.u[r.clone()],
                    &base.v[r.clone()],
                    &base.t[r.clone()],
                    &base.dp3d[r.clone()],
                    c_dt,
                    ou,
                    ov,
                    ot,
                    odp,
                    rhs_scratch,
                ),
                KernelPath::Scalar => {
                    element_rhs_raw(
                        &ops[e],
                        nlev,
                        ptop,
                        &eval.u[r.clone()],
                        &eval.v[r.clone()],
                        &eval.t[r.clone()],
                        &eval.dp3d[r.clone()],
                        &phis[e * NPTS..(e + 1) * NPTS],
                        &mut tend.u,
                        &mut tend.v,
                        &mut tend.t,
                        &mut tend.dp3d,
                        rhs_scratch,
                    );
                    for i in 0..fl {
                        ou[i] = base.u[r.start + i] + c_dt * tend.u[i];
                        ov[i] = base.v[r.start + i] + c_dt * tend.v[i];
                        ot[i] = base.t[r.start + i] + c_dt * tend.t[i];
                        odp[i] = base.dp3d[r.start + i] + c_dt * tend.dp3d[i];
                    }
                }
            }
        });
    }
    // DSS the four updated prognostics (serial synchronization point).
    dss.apply_flat(&mut out.u, nlev);
    dss.apply_flat(&mut out.v, nlev);
    dss.apply_flat(&mut out.t, nlev);
    dss.apply_flat(&mut out.dp3d, nlev);
}

/// DSS + optional limiter for one tracer stage on a flat tracer arena.
fn finish_tracer_stage(ops: &[ElemOps], dss: &mut Dss, dims: Dims, limiter: bool, qdp: &mut [f64]) {
    dss.apply_flat(qdp, dims.qsize * dims.nlev);
    if limiter {
        limit_tracer_arena(ops, dims, qdp);
    }
}

/// One member's borrowed `(u, v, t, dp3d)` element slices.
type UvtdpRef<'a> = (&'a [f64], &'a [f64], &'a [f64], &'a [f64]);

/// Per-member mutable `(u, v, t, dp3d)` element slices for an `M`-chunk.
type UvtdpMut<'a, const M: usize> =
    ([&'a mut [f64]; M], [&'a mut [f64]; M], [&'a mut [f64]; M], [&'a mut [f64]; M]);

/// Subcycled biharmonic hyperviscosity for one chunk of `M` ensemble
/// members, mirroring the blocked arm of [`Dycore::apply_hypervis_n`]
/// phase for phase: sponge sweep, then per subcycle a fused first Laplacian
/// straight from each member's state into its hyp lane, one DSS per member,
/// the in-place second Laplacian, and the damping folded into the DSS
/// scatter. The element sweeps batch all `M` members through shared
/// coefficient walks ([`hypervis_pass_element_members_blocked`]); the
/// serial DSS phases run per member in the standalone order, so member `m`
/// stays bitwise identical to the single-member path.
#[allow(clippy::too_many_arguments)]
fn hypervis_members_chunk<const M: usize>(
    sched: &ElemScheduler,
    dss: &mut Dss,
    bops: &[BlockedOps],
    plan: &ElemHypervisPlan,
    hv: &HypervisConfig,
    nlev: usize,
    fl: usize,
    nelem: usize,
    sponge: (&mut [f64], &mut [f64], &mut [f64]),
    mut states: [&mut State; M],
    mut hyps: [&mut DynFields; M],
    subcycles: usize,
) {
    // Top-of-model sponge, per member (the sponge is `ks * NPTS` of the
    // column — too thin to amortize a batched walk — and shares the step
    // workspace's single staging arena set).
    if hv.nu_top > 0.0 && hv.sponge_layers > 0 {
        let ks = plan.ks;
        let sl = ks * NPTS;
        let (sp_u, sp_v, sp_t) = sponge;
        for st_m in states.iter_mut() {
            {
                let ou = ArenaMut::new(sp_u);
                let ov = ArenaMut::new(sp_v);
                let ot = ArenaMut::new(sp_t);
                let (su, sv, st): (&[f64], &[f64], &[f64]) = (&st_m.u, &st_m.v, &st_m.t);
                sched.run(nelem, &|_w, e| {
                    let (ou, ov, ot) = unsafe {
                        (ou.slice(e * sl, sl), ov.slice(e * sl, sl), ot.slice(e * sl, sl))
                    };
                    sponge_pass_element_blocked(
                        &bops[e],
                        ks,
                        &su[e * fl..e * fl + sl],
                        &sv[e * fl..e * fl + sl],
                        &st[e * fl..e * fl + sl],
                        ou,
                        ov,
                        ot,
                    );
                });
            }
            dss.apply_flat_scaled_add(sp_u, ks, &plan.sponge, &mut st_m.u, fl);
            dss.apply_flat_scaled_add(sp_v, ks, &plan.sponge, &mut st_m.v, fl);
            dss.apply_flat_scaled_add(sp_t, ks, &plan.sponge, &mut st_m.t, fl);
        }
    }
    for _ in 0..subcycles {
        // First Laplacian of every member's (u, v, T, dp3d): the fused
        // member-batched coefficient walk, state -> hyp lanes.
        {
            struct Lane<'a> {
                u: ArenaMut<'a>,
                v: ArenaMut<'a>,
                t: ArenaMut<'a>,
                dp: ArenaMut<'a>,
            }
            let lanes: [Lane; M] = {
                let mut it = hyps.iter_mut();
                core::array::from_fn(|_| {
                    let h = it.next().unwrap();
                    Lane {
                        u: ArenaMut::new(&mut h.u),
                        v: ArenaMut::new(&mut h.v),
                        t: ArenaMut::new(&mut h.t),
                        dp: ArenaMut::new(&mut h.dp3d),
                    }
                })
            };
            let srcs: [UvtdpRef; M] = {
                let mut it = states.iter();
                core::array::from_fn(|_| {
                    let s = it.next().unwrap();
                    (&s.u[..], &s.v[..], &s.t[..], &s.dp3d[..])
                })
            };
            sched.run(nelem, &|_w, e| {
                let r = e * fl..(e + 1) * fl;
                let su: [&[f64]; M] = core::array::from_fn(|m| &srcs[m].0[r.clone()]);
                let sv: [&[f64]; M] = core::array::from_fn(|m| &srcs[m].1[r.clone()]);
                let st: [&[f64]; M] = core::array::from_fn(|m| &srcs[m].2[r.clone()]);
                let sdp: [&[f64]; M] = core::array::from_fn(|m| &srcs[m].3[r.clone()]);
                let (mut ou, mut ov, mut ot, mut odp): UvtdpMut<M> = unsafe {
                    (
                        core::array::from_fn(|m| lanes[m].u.slice(e * fl, fl)),
                        core::array::from_fn(|m| lanes[m].v.slice(e * fl, fl)),
                        core::array::from_fn(|m| lanes[m].t.slice(e * fl, fl)),
                        core::array::from_fn(|m| lanes[m].dp.slice(e * fl, fl)),
                    )
                };
                hypervis_pass_element_members_blocked::<M>(
                    &bops[e], nlev, &su, &sv, &st, &sdp, &mut ou, &mut ov, &mut ot, &mut odp,
                );
            });
        }
        for h in hyps.iter_mut() {
            dss.apply_flat4([&mut h.u, &mut h.v, &mut h.t, &mut h.dp3d], nlev);
        }
        // Second Laplacian in place (del^4 = lap(lap)), again batched.
        {
            struct Lane<'a> {
                u: ArenaMut<'a>,
                v: ArenaMut<'a>,
                t: ArenaMut<'a>,
                dp: ArenaMut<'a>,
            }
            let lanes: [Lane; M] = {
                let mut it = hyps.iter_mut();
                core::array::from_fn(|_| {
                    let h = it.next().unwrap();
                    Lane {
                        u: ArenaMut::new(&mut h.u),
                        v: ArenaMut::new(&mut h.v),
                        t: ArenaMut::new(&mut h.t),
                        dp: ArenaMut::new(&mut h.dp3d),
                    }
                })
            };
            sched.run(nelem, &|_w, e| {
                let (mut u, mut v, mut t, mut dp): UvtdpMut<M> = unsafe {
                    (
                        core::array::from_fn(|m| lanes[m].u.slice(e * fl, fl)),
                        core::array::from_fn(|m| lanes[m].v.slice(e * fl, fl)),
                        core::array::from_fn(|m| lanes[m].t.slice(e * fl, fl)),
                        core::array::from_fn(|m| lanes[m].dp.slice(e * fl, fl)),
                    )
                };
                hypervis_pass_levels_members_blocked::<M>(&bops[e], nlev, &mut u, &mut v, &mut t, &mut dp);
            });
        }
        // Damping folded into the DSS scatter, per member.
        for (h, st_m) in hyps.iter().zip(states.iter_mut()) {
            dss.apply_flat_scaled_add4(
                [&h.u, &h.v, &h.t, &h.dp3d],
                nlev,
                [&plan.damp_u, &plan.damp_u, &plan.damp_u, &plan.damp_dp],
                [&mut st_m.u, &mut st_m.v, &mut st_m.t, &mut st_m.dp3d],
                fl,
            );
        }
    }
}

/// Subcycled biharmonic hyperviscosity for one lane sweep of `M` ensemble
/// members (`1..=4`) on the lane-transposed tiles: gather the members'
/// prognostics into the shared `stage` tile (a short sweep duplicates the
/// last member into the dead lanes), run the sponge and subcycle phases of
/// [`Dycore::apply_hypervis_n`]'s blocked arm entirely on tiles — one
/// coefficient walk and one DSS assembly walk per phase serve every lane —
/// and scatter the live lanes back. Lane `m` replays member `m`'s
/// standalone scalar sequence at every point (kernels and DSS alike), so
/// the committed bits match the single-member path per member.
#[allow(clippy::too_many_arguments)]
fn hypervis_members_lanes<const M: usize>(
    sched: &ElemScheduler,
    dss: &mut Dss,
    bops: &[BlockedOps],
    plan: &ElemHypervisPlan,
    hv: &HypervisConfig,
    nlev: usize,
    fl: usize,
    nelem: usize,
    tiles: &mut MemberLanes,
    mut states: [&mut State; M],
    subcycles: usize,
) {
    {
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].u[..]);
        gather_member_tile(&srcs, &mut tiles.stage.u);
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].v[..]);
        gather_member_tile(&srcs, &mut tiles.stage.v);
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].t[..]);
        gather_member_tile(&srcs, &mut tiles.stage.t);
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].dp3d[..]);
        gather_member_tile(&srcs, &mut tiles.stage.dp3d);
    }
    hypervis_lanes_core(sched, dss, bops, plan, hv, nlev, fl, nelem, tiles, subcycles);
    {
        let mut it = states.iter_mut();
        let mut dsts: [&mut [f64]; M] = core::array::from_fn(|_| &mut it.next().unwrap().u[..]);
        scatter_member_tile(&tiles.stage.u, &mut dsts);
        let mut it = states.iter_mut();
        let mut dsts: [&mut [f64]; M] = core::array::from_fn(|_| &mut it.next().unwrap().v[..]);
        scatter_member_tile(&tiles.stage.v, &mut dsts);
        let mut it = states.iter_mut();
        let mut dsts: [&mut [f64]; M] = core::array::from_fn(|_| &mut it.next().unwrap().t[..]);
        scatter_member_tile(&tiles.stage.t, &mut dsts);
        let mut it = states.iter_mut();
        let mut dsts: [&mut [f64]; M] =
            core::array::from_fn(|_| &mut it.next().unwrap().dp3d[..]);
        scatter_member_tile(&tiles.stage.dp3d, &mut dsts);
    }
}

/// The tile-resident phases of the lane hypervis sweep: top-of-model
/// sponge, then per subcycle the fused first Laplacian (`stage` tile into
/// the `hyp` tile), the lane DSS, the in-place second Laplacian, and the
/// damping folded into the lane DSS scatter back onto `stage`. Mirrors the
/// blocked arm of [`Dycore::apply_hypervis_n`] phase for phase.
#[allow(clippy::too_many_arguments)]
fn hypervis_lanes_core(
    sched: &ElemScheduler,
    dss: &mut Dss,
    bops: &[BlockedOps],
    plan: &ElemHypervisPlan,
    hv: &HypervisConfig,
    nlev: usize,
    fl: usize,
    nelem: usize,
    tiles: &mut MemberLanes,
    subcycles: usize,
) {
    if hv.nu_top > 0.0 && hv.sponge_layers > 0 {
        let ks = plan.ks;
        let sl = ks * NPTS;
        {
            let ou = ArenaMut::new(&mut tiles.sponge_u[..nelem * sl]);
            let ov = ArenaMut::new(&mut tiles.sponge_v[..nelem * sl]);
            let ot = ArenaMut::new(&mut tiles.sponge_t[..nelem * sl]);
            let (su, sv, st): (&[V4F64], &[V4F64], &[V4F64]) =
                (&tiles.stage.u, &tiles.stage.v, &tiles.stage.t);
            sched.run(nelem, &|_w, e| {
                let (ou, ov, ot) = unsafe {
                    (ou.slice(e * sl, sl), ov.slice(e * sl, sl), ot.slice(e * sl, sl))
                };
                sponge_pass_member_lanes(
                    &bops[e],
                    ks,
                    &su[e * fl..e * fl + sl],
                    &sv[e * fl..e * fl + sl],
                    &st[e * fl..e * fl + sl],
                    ou,
                    ov,
                    ot,
                );
            });
        }
        dss.apply_lanes_scaled_add(
            &tiles.sponge_u[..nelem * sl],
            ks,
            &plan.sponge,
            &mut tiles.stage.u,
            fl,
        );
        dss.apply_lanes_scaled_add(
            &tiles.sponge_v[..nelem * sl],
            ks,
            &plan.sponge,
            &mut tiles.stage.v,
            fl,
        );
        dss.apply_lanes_scaled_add(
            &tiles.sponge_t[..nelem * sl],
            ks,
            &plan.sponge,
            &mut tiles.stage.t,
            fl,
        );
    }
    for _ in 0..subcycles {
        // First Laplacian of (u, v, T, dp3d): one fused coefficient walk
        // per element, straight from the stage tile into the hyp tile.
        {
            let ou = ArenaMut::new(&mut tiles.hyp.u);
            let ov = ArenaMut::new(&mut tiles.hyp.v);
            let ot = ArenaMut::new(&mut tiles.hyp.t);
            let odp = ArenaMut::new(&mut tiles.hyp.dp3d);
            let (su, sv, st, sdp): (&[V4F64], &[V4F64], &[V4F64], &[V4F64]) =
                (&tiles.stage.u, &tiles.stage.v, &tiles.stage.t, &tiles.stage.dp3d);
            sched.run(nelem, &|_w, e| {
                let r = e * fl..(e + 1) * fl;
                let (ou, ov, ot, odp) = unsafe {
                    (
                        ou.slice(e * fl, fl),
                        ov.slice(e * fl, fl),
                        ot.slice(e * fl, fl),
                        odp.slice(e * fl, fl),
                    )
                };
                hypervis_pass_member_lanes(
                    &bops[e],
                    nlev,
                    &su[r.clone()],
                    &sv[r.clone()],
                    &st[r.clone()],
                    &sdp[r],
                    ou,
                    ov,
                    ot,
                    odp,
                );
            });
        }
        dss.apply_lanes4(
            [&mut tiles.hyp.u, &mut tiles.hyp.v, &mut tiles.hyp.t, &mut tiles.hyp.dp3d],
            nlev,
        );
        // Second Laplacian in place (del^4 = lap(lap)).
        {
            let au = ArenaMut::new(&mut tiles.hyp.u);
            let av = ArenaMut::new(&mut tiles.hyp.v);
            let at = ArenaMut::new(&mut tiles.hyp.t);
            let adp = ArenaMut::new(&mut tiles.hyp.dp3d);
            sched.run(nelem, &|_w, e| {
                let (u, v, t, dp) = unsafe {
                    (
                        au.slice(e * fl, fl),
                        av.slice(e * fl, fl),
                        at.slice(e * fl, fl),
                        adp.slice(e * fl, fl),
                    )
                };
                hypervis_pass_levels_member_lanes(&bops[e], nlev, u, v, t, dp);
            });
        }
        // Damping folded into the lane DSS scatter, all four fields and
        // every lane in one walk of the assembly map.
        dss.apply_lanes_scaled_add4(
            [&tiles.hyp.u, &tiles.hyp.v, &tiles.hyp.t, &tiles.hyp.dp3d],
            nlev,
            [&plan.damp_u, &plan.damp_u, &plan.damp_u, &plan.damp_dp],
            [&mut tiles.stage.u, &mut tiles.stage.v, &mut tiles.stage.t, &mut tiles.stage.dp3d],
            fl,
        );
    }
}

/// One dt of the 5-stage RK for one lane sweep of `M` ensemble members
/// (`1..=4`) on the lane-transposed tiles: gather the members into the
/// `base` tile (plus the splatted surface geopotential), run every RK
/// substep as one element sweep of [`element_rhs_apply_member_lanes`]
/// followed by one lane DSS over all four prognostics, and scatter the
/// final stage back to the live lanes. The per-lane sequence matches
/// [`Dycore::dynamics_step`] exactly, so each member stays bitwise
/// identical to its standalone step.
#[allow(clippy::too_many_arguments)]
fn dynamics_members_lanes<const M: usize>(
    sched: &ElemScheduler,
    dss: &mut Dss,
    bops: &[BlockedOps],
    workers: &crate::sched::PerWorker<WorkerScratch>,
    nlev: usize,
    fl: usize,
    nelem: usize,
    ptop: f64,
    dt: f64,
    tiles: &mut MemberLanes,
    mut states: [&mut State; M],
) {
    {
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].u[..]);
        gather_member_tile(&srcs, &mut tiles.base.u);
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].v[..]);
        gather_member_tile(&srcs, &mut tiles.base.v);
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].t[..]);
        gather_member_tile(&srcs, &mut tiles.base.t);
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].dp3d[..]);
        gather_member_tile(&srcs, &mut tiles.base.dp3d);
        let srcs: [&[f64]; M] = core::array::from_fn(|m| &states[m].phis[..]);
        gather_member_tile(&srcs, &mut tiles.phis);
    }
    tiles.stage.u.copy_from_slice(&tiles.base.u);
    tiles.stage.v.copy_from_slice(&tiles.base.v);
    tiles.stage.t.copy_from_slice(&tiles.base.t);
    tiles.stage.dp3d.copy_from_slice(&tiles.base.dp3d);
    for &c in &KG5_COEFFS {
        {
            let ou = ArenaMut::new(&mut tiles.next.u);
            let ov = ArenaMut::new(&mut tiles.next.v);
            let ot = ArenaMut::new(&mut tiles.next.t);
            let odp = ArenaMut::new(&mut tiles.next.dp3d);
            let eval = &tiles.stage;
            let rk_base = &tiles.base;
            let ph: &[V4F64] = &tiles.phis;
            sched.run(nelem, &|w, e| {
                let scratch = unsafe { workers.get(w) };
                let r = e * fl..(e + 1) * fl;
                let (ou, ov, ot, odp) = unsafe {
                    (
                        ou.slice(e * fl, fl),
                        ov.slice(e * fl, fl),
                        ot.slice(e * fl, fl),
                        odp.slice(e * fl, fl),
                    )
                };
                element_rhs_apply_member_lanes(
                    &bops[e],
                    nlev,
                    ptop,
                    &eval.u[r.clone()],
                    &eval.v[r.clone()],
                    &eval.t[r.clone()],
                    &eval.dp3d[r.clone()],
                    &ph[e * NPTS..(e + 1) * NPTS],
                    &rk_base.u[r.clone()],
                    &rk_base.v[r.clone()],
                    &rk_base.t[r.clone()],
                    &rk_base.dp3d[r],
                    c * dt,
                    ou,
                    ov,
                    ot,
                    odp,
                    &mut scratch.rhs_lanes,
                );
            });
        }
        dss.apply_lanes4(
            [&mut tiles.next.u, &mut tiles.next.v, &mut tiles.next.t, &mut tiles.next.dp3d],
            nlev,
        );
        std::mem::swap(&mut tiles.stage, &mut tiles.next);
    }
    {
        let mut it = states.iter_mut();
        let mut dsts: [&mut [f64]; M] = core::array::from_fn(|_| &mut it.next().unwrap().u[..]);
        scatter_member_tile(&tiles.stage.u, &mut dsts);
        let mut it = states.iter_mut();
        let mut dsts: [&mut [f64]; M] = core::array::from_fn(|_| &mut it.next().unwrap().v[..]);
        scatter_member_tile(&tiles.stage.v, &mut dsts);
        let mut it = states.iter_mut();
        let mut dsts: [&mut [f64]; M] = core::array::from_fn(|_| &mut it.next().unwrap().t[..]);
        scatter_member_tile(&tiles.stage.t, &mut dsts);
        let mut it = states.iter_mut();
        let mut dsts: [&mut [f64]; M] =
            core::array::from_fn(|_| &mut it.next().unwrap().dp3d[..]);
        scatter_member_tile(&tiles.stage.dp3d, &mut dsts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesphere::consts::P0;

    fn resting_state(dy: &Dycore) -> State {
        let mut st = dy.zero_state();
        let dims = dy.dims;
        let vert = dy.rhs.vert.clone();
        for es in st.elems_mut() {
            for k in 0..dims.nlev {
                for p in 0..NPTS {
                    es.t[k * NPTS + p] = 300.0;
                    es.dp3d[k * NPTS + p] = vert.dp_ref(k, P0);
                    for q in 0..dims.qsize {
                        es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.01 * es.dp3d[k * NPTS + p];
                    }
                }
            }
        }
        st
    }

    #[test]
    fn resting_atmosphere_stays_at_rest() {
        let dims = Dims { nlev: 6, qsize: 1 };
        let cfg = DycoreConfig {
            dt: 600.0,
            hypervis: HypervisConfig::off(),
            limiter: true,
            rsplit: 1,
        };
        let mut dy = Dycore::new(2, dims, 200.0, cfg);
        let mut st = resting_state(&dy);
        let ref_st = st.clone();
        for _ in 0..5 {
            dy.step(&mut st);
        }
        assert!(dy.max_wind(&st) < 1e-10, "wind grew: {}", dy.max_wind(&st));
        assert!(st.max_abs_diff(&ref_st) < 1e-8, "state drifted: {}", st.max_abs_diff(&ref_st));
    }

    /// The member-batched hypervis driver is bitwise identical to the
    /// single-member path run member by member, across chunk shapes
    /// (1, 2, 3 = 2+1, 4, 5 = 4+1) and with the sponge active.
    #[test]
    fn hypervis_members_matches_per_member_bitwise() {
        let dims = Dims { nlev: 6, qsize: 0 };
        let mut cfg = DycoreConfig::for_ne(4);
        cfg.dt = 100.0;
        cfg.hypervis.sponge_layers = 2;
        cfg.hypervis.nu_top = 2.5e5;
        let mut dy = Dycore::new(2, dims, 200.0, cfg);
        let subcycles = dy.hypervis_subcycles();

        let make_members = |dy: &Dycore, n: usize| -> Vec<State> {
            (0..n)
                .map(|m| {
                    let mut st = resting_state(dy);
                    for (i, t) in st.t.iter_mut().enumerate() {
                        *t += 2.0 * (((i + 7 * m) % 13) as f64 / 13.0 - 0.5);
                    }
                    for (i, u) in st.u.iter_mut().enumerate() {
                        *u += 0.5 * (((i + 3 * m) % 7) as f64 / 7.0 - 0.5);
                    }
                    st
                })
                .collect()
        };

        for path in [MemberKernelPath::Chunked, MemberKernelPath::Lanes] {
            dy.member_kernels = path;
            for n in [1usize, 2, 3, 4, 5] {
                let mut expect = make_members(&dy, n);
                for st in expect.iter_mut() {
                    dy.apply_hypervis_n(st, subcycles).unwrap();
                }

                let mut got = make_members(&dy, n);
                let members: Vec<usize> = (0..n).collect();
                let mut ens = crate::workspace::EnsembleWorkspace::new(dims, dy.ops.len(), n);
                dy.apply_hypervis_members(&mut got, &members, &mut ens, subcycles).unwrap();

                for (m, (e, g)) in expect.iter().zip(&got).enumerate() {
                    assert_eq!(e.max_abs_diff(g), 0.0, "{path:?} n={n} member={m} diverged");
                }
            }
        }
    }

    /// The member-batched RK driver is bitwise identical to the standalone
    /// [`Dycore::dynamics_step`] run member by member, across batch shapes
    /// (including the ragged 3 = 4-sweep-short and 5 = 4+1 tails) and on
    /// both member kernel paths.
    #[test]
    fn dynamics_step_members_matches_per_member_bitwise() {
        let dims = Dims { nlev: 6, qsize: 0 };
        let mut cfg = DycoreConfig::for_ne(4);
        cfg.dt = 100.0;
        let mut dy = Dycore::new(2, dims, 200.0, cfg);

        let make_members = |dy: &Dycore, n: usize| -> Vec<State> {
            (0..n)
                .map(|m| {
                    let mut st = resting_state(dy);
                    for (i, t) in st.t.iter_mut().enumerate() {
                        *t += 2.0 * (((i + 11 * m) % 17) as f64 / 17.0 - 0.5);
                    }
                    for (i, u) in st.u.iter_mut().enumerate() {
                        *u += 0.5 * (((i + 5 * m) % 9) as f64 / 9.0 - 0.5);
                    }
                    for (i, ph) in st.phis.iter_mut().enumerate() {
                        *ph = 40.0 * ((i + m) % 5) as f64;
                    }
                    st
                })
                .collect()
        };

        for path in [MemberKernelPath::Chunked, MemberKernelPath::Lanes] {
            dy.member_kernels = path;
            for n in [1usize, 2, 3, 4, 5] {
                let mut expect = make_members(&dy, n);
                for st in expect.iter_mut() {
                    dy.dynamics_step(st);
                }

                let mut got = make_members(&dy, n);
                let members: Vec<usize> = (0..n).collect();
                let mut ens = crate::workspace::EnsembleWorkspace::new(dims, dy.ops.len(), n);
                dy.dynamics_step_members(&mut got, &members, &mut ens);

                for (m, (e, g)) in expect.iter().zip(&got).enumerate() {
                    assert_eq!(e.max_abs_diff(g), 0.0, "{path:?} n={n} member={m} diverged");
                }
            }
        }
    }

    #[test]
    fn mass_and_tracer_mass_are_conserved() {
        let dims = Dims { nlev: 6, qsize: 2 };
        let cfg = DycoreConfig {
            dt: 300.0,
            hypervis: HypervisConfig::off(),
            limiter: true,
            rsplit: 1,
        };
        let mut dy = Dycore::new(3, dims, 200.0, cfg);
        let mut st = resting_state(&dy);
        // Perturb the temperature field to get the flow moving.
        for es in st.elems_mut() {
            for (i, t) in es.t.iter_mut().enumerate() {
                *t += 2.0 * ((i % 11) as f64 / 11.0 - 0.5);
            }
        }
        let m0 = dy.total_mass(&st);
        let q0 = dy.total_tracer_mass(&st, 0);
        let q1 = dy.total_tracer_mass(&st, 1);
        for _ in 0..5 {
            dy.step(&mut st);
        }
        let dm = ((dy.total_mass(&st) - m0) / m0).abs();
        let dq0 = ((dy.total_tracer_mass(&st, 0) - q0) / q0).abs();
        let dq1 = ((dy.total_tracer_mass(&st, 1) - q1) / q1).abs();
        assert!(dm < 1e-11, "dry mass drift {dm}");
        assert!(dq0 < 1e-11, "tracer 0 drift {dq0}");
        assert!(dq1 < 1e-11, "tracer 1 drift {dq1}");
        assert!(dy.max_wind(&st) < 30.0, "blow-up: {}", dy.max_wind(&st));
    }

    #[test]
    fn balanced_flow_survives_time_stepping() {
        use cubesphere::consts::{EARTH_RADIUS, OMEGA, RD};
        let dims = Dims { nlev: 6, qsize: 0 };
        let cfg = DycoreConfig {
            dt: 200.0,
            hypervis: HypervisConfig::off(),
            limiter: false,
            rsplit: 1,
        };
        let mut dy = Dycore::new(4, dims, 200.0, cfg);
        let mut st = dy.zero_state();
        let (t0, u0) = (300.0, 30.0);
        let c = (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) / (RD * t0);
        let grid_elems: Vec<_> = dy.grid.elements.clone();
        let vert = dy.rhs.vert.clone();
        for (es, el) in st.elems_mut().zip(&grid_elems) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                let ps = P0 * (-c * lat.sin() * lat.sin()).exp();
                for k in 0..dims.nlev {
                    es.u[k * NPTS + p] = u0 * lat.cos();
                    es.t[k * NPTS + p] = t0;
                    es.dp3d[k * NPTS + p] = vert.dp_ref(k, ps);
                }
            }
        }
        let init = st.clone();
        for _ in 0..10 {
            dy.step(&mut st);
        }
        // The balanced jet must persist: wind change small vs u0.
        let mut max_du: f64 = 0.0;
        for (x, y) in st.u.iter().zip(&init.u) {
            max_du = max_du.max((x - y).abs());
        }
        assert!(max_du < 0.05 * u0, "jet decayed/blew up: du = {max_du}");
    }

    #[test]
    fn hypervis_damps_grid_noise() {
        let dims = Dims { nlev: 2, qsize: 0 };
        let mut cfg = DycoreConfig::for_ne(4);
        // At ne4 the grid Nyquist wavenumber is tiny, so scale nu up to get
        // visible damping within a few applications (still well inside the
        // explicit stability bound nu k^4 dt_sub < 1).
        cfg.dt = 100.0;
        cfg.hypervis = HypervisConfig { nu: 2.0e19, nu_p: 2.0e19, subcycles: 3, nu_top: 0.0, sponge_layers: 0 };
        let mut dy = Dycore::new(4, dims, 200.0, cfg);
        let mut st = resting_state(&dy);
        // Checkerboard temperature noise.
        for (i, t) in st.t.iter_mut().enumerate() {
            *t += if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let noise = |s: &State| -> f64 {
            let mut acc = 0.0;
            for es in s.elems() {
                for w in es.t.windows(2) {
                    acc += (w[1] - w[0]).powi(2);
                }
            }
            acc
        };
        let n0 = noise(&st);
        for _ in 0..10 {
            dy.apply_hypervis(&mut st).expect("plan accepted");
        }
        let n1 = noise(&st);
        assert!(n1 < 0.8 * n0, "noise not damped: {n0} -> {n1}");
    }

    #[test]
    fn guarded_step_matches_plain_step_bitwise() {
        let dims = Dims { nlev: 4, qsize: 1 };
        let cfg = DycoreConfig::for_ne(3);
        let mut plain = Dycore::new(3, dims, 200.0, cfg);
        let mut guarded = Dycore::new(3, dims, 200.0, cfg);
        guarded.health = HealthConfig::on();
        let perturb = |dy: &Dycore| {
            let mut st = resting_state(dy);
            for es in st.elems_mut() {
                for (i, t) in es.t.iter_mut().enumerate() {
                    *t += ((i % 7) as f64 - 3.0) * 0.5;
                }
            }
            st
        };
        let mut a = perturb(&plain);
        let mut b = perturb(&guarded);
        for _ in 0..3 {
            plain.step(&mut a);
            let health = guarded.step_checked(&mut b).expect("healthy step");
            assert!(health.checked);
            assert!(!health.degraded);
            assert!(health.cfl.is_finite());
            assert!(health.min_dp3d > 0.0);
        }
        assert_eq!(a.max_abs_diff(&b), 0.0, "guards changed the trajectory");
    }

    #[test]
    fn guarded_step_rejects_nan_state() {
        let dims = Dims { nlev: 4, qsize: 0 };
        let cfg = DycoreConfig::for_ne(2);
        let mut dy = Dycore::new(2, dims, 200.0, cfg);
        dy.health = HealthConfig::on();
        let mut st = resting_state(&dy);
        st.u[0] = f64::NAN;
        let err = dy.step_checked(&mut st).unwrap_err();
        assert!(matches!(err, HealthError::NonFinite { stage: 0, .. }), "got {err:?}");
    }

    #[test]
    fn guarded_step_rejects_tracer_nan() {
        let dims = Dims { nlev: 4, qsize: 2 };
        let cfg = DycoreConfig::for_ne(2);
        let mut dy = Dycore::new(2, dims, 200.0, cfg);
        dy.health = HealthConfig::on();
        let mut st = resting_state(&dy);
        // A NaN born in the tracer arena is invisible to the RK stage
        // scans; the post-advection scan must still catch it.
        st.qdp[3] = f64::NAN;
        let err = dy.step_checked(&mut st).unwrap_err();
        assert!(
            matches!(err, HealthError::TracerNonFinite { stage: TRACER_STAGE, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn guarded_step_surfaces_remap_rejection_as_typed_error() {
        let dims = Dims { nlev: 4, qsize: 0 };
        let cfg = DycoreConfig::for_ne(2);
        let mut dy = Dycore::new(2, dims, 200.0, cfg);
        // Disarm the ThinLayer stage guard so the collapsed layer reaches
        // the vertical remap, which rejects it with a typed error instead
        // of a bare assert.
        dy.health = HealthConfig { min_dp3d: f64::NEG_INFINITY, ..HealthConfig::on() };
        let mut st = resting_state(&dy);
        for p in 0..NPTS {
            st.dp3d[NPTS + p] = -5000.0;
        }
        let err = dy.step_checked(&mut st).unwrap_err();
        assert!(matches!(err, HealthError::Remap(_)), "got {err:?}");
    }

    #[test]
    fn cfl_breach_arms_degraded_stepping() {
        let dims = Dims { nlev: 4, qsize: 0 };
        let cfg = DycoreConfig {
            dt: 100.0,
            hypervis: HypervisConfig::off(),
            limiter: false,
            rsplit: 1,
        };
        let mut dy = Dycore::new(2, dims, 200.0, cfg);
        dy.health = HealthConfig { cfl_limit: 1e-9, ..HealthConfig::on() };
        let mut st = resting_state(&dy);
        for u in st.u.iter_mut() {
            *u = 10.0;
        }
        let h0 = dy.step_checked(&mut st).expect("step");
        assert!(h0.cfl > dy.health.cfl_limit);
        assert!(!h0.degraded);
        assert_eq!(dy.degrade_pending(), dy.degrade.halve_dt_steps);
        let h1 = dy.step_checked(&mut st).expect("degraded step");
        assert!(h1.degraded, "next step should run under the degradation policy");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let dims = Dims { nlev: 4, qsize: 1 };
        let cfg = DycoreConfig::for_ne(3);
        let run = |threads: usize| -> State {
            let mut dy = Dycore::new(3, dims, 200.0, cfg);
            dy.set_threads(threads);
            let mut st = resting_state(&dy);
            for es in st.elems_mut() {
                for (i, t) in es.t.iter_mut().enumerate() {
                    *t += ((i % 7) as f64 - 3.0) * 0.5;
                }
            }
            for _ in 0..3 {
                dy.step(&mut st);
            }
            st
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            let par = run(threads);
            assert_eq!(
                serial.max_abs_diff(&par),
                0.0,
                "threads={threads} diverged from serial"
            );
        }
    }

    /// Full physics config for the task-graph parity tests: hypervis +
    /// sponge + limiter + tracers + mid-run vertical remap all on.
    fn taskgraph_cfg() -> DycoreConfig {
        DycoreConfig {
            dt: 100.0,
            hypervis: HypervisConfig {
                nu: 1.0e15,
                nu_p: 1.0e15,
                subcycles: 2,
                nu_top: 2.5e5,
                sponge_layers: 2,
            },
            limiter: true,
            rsplit: 2,
        }
    }

    fn taskgraph_run(path: StepPath, threads: usize, seed: u64, checked: bool) -> State {
        let dims = Dims { nlev: 4, qsize: 2 };
        let mut dy = Dycore::new(3, dims, 200.0, taskgraph_cfg());
        dy.step_path = path;
        dy.taskgraph_seed = seed;
        dy.set_threads(threads);
        if checked {
            dy.health = HealthConfig::on();
        }
        let mut st = resting_state(&dy);
        for es in st.elems_mut() {
            for (i, t) in es.t.iter_mut().enumerate() {
                *t += ((i % 7) as f64 - 3.0) * 0.5;
            }
            for (i, u) in es.u.iter_mut().enumerate() {
                *u += ((i % 5) as f64 - 2.0) * 0.1;
            }
        }
        for _ in 0..4 {
            if checked {
                dy.step_checked(&mut st).expect("healthy step");
            } else {
                dy.step(&mut st);
            }
        }
        st
    }

    #[test]
    fn taskgraph_step_matches_bulk_bitwise() {
        let oracle = taskgraph_run(StepPath::Bulk, 1, 0, false);
        assert!(oracle.u.iter().any(|x| *x != 0.0), "oracle run did nothing");
        for threads in [1, 2, 4] {
            for seed in [0u64, 1, 0xBEEF] {
                let tg = taskgraph_run(StepPath::TaskGraph, threads, seed, false);
                assert_eq!(
                    oracle.max_abs_diff(&tg),
                    0.0,
                    "task graph diverged from bulk (threads={threads}, seed={seed:#x})"
                );
            }
        }
    }

    #[test]
    fn taskgraph_checked_step_matches_bulk_bitwise() {
        let oracle = taskgraph_run(StepPath::Bulk, 1, 0, true);
        for threads in [1, 4] {
            let tg = taskgraph_run(StepPath::TaskGraph, threads, 0x5EED, true);
            assert_eq!(
                oracle.max_abs_diff(&tg),
                0.0,
                "checked task graph diverged from bulk (threads={threads})"
            );
        }
    }

    #[test]
    fn taskgraph_checked_step_reports_same_error_as_bulk() {
        let dims = Dims { nlev: 4, qsize: 2 };
        let run = |path: StepPath| -> HealthError {
            let mut dy = Dycore::new(2, dims, 200.0, taskgraph_cfg());
            dy.step_path = path;
            dy.health = HealthConfig::on();
            let mut st = resting_state(&dy);
            st.u[5] = f64::NAN;
            dy.step_checked(&mut st).unwrap_err()
        };
        let bulk = run(StepPath::Bulk);
        let tg = run(StepPath::TaskGraph);
        assert_eq!(format!("{bulk:?}"), format!("{tg:?}"), "error mismatch");
    }

    #[test]
    fn taskgraph_step_without_hypervis_or_tracers() {
        // Degenerate stage lists (no sponge/hyp/tracer stages) must still
        // agree with the bulk path.
        let dims = Dims { nlev: 4, qsize: 0 };
        let cfg = DycoreConfig {
            dt: 150.0,
            hypervis: HypervisConfig::off(),
            limiter: false,
            rsplit: 1,
        };
        let run = |path: StepPath| -> State {
            let mut dy = Dycore::new(2, dims, 200.0, cfg);
            dy.step_path = path;
            dy.set_threads(2);
            let mut st = resting_state(&dy);
            for es in st.elems_mut() {
                for (i, t) in es.t.iter_mut().enumerate() {
                    *t += ((i % 7) as f64 - 3.0) * 0.5;
                }
            }
            for _ in 0..3 {
                dy.step(&mut st);
            }
            st
        };
        let bulk = run(StepPath::Bulk);
        let tg = run(StepPath::TaskGraph);
        assert_eq!(bulk.max_abs_diff(&tg), 0.0);
    }
}
