//! In-step health guards: cheap scans between RK stages plus a per-step
//! verdict and degradation policy.
//!
//! At ultra-high resolution a NaN born in one element silently corrupts
//! the whole trajectory within a few DSS applications, and a locally
//! violated CFL bound blows the run up long before any output file would
//! show it. The guards here are the reproduction's answer: after each RK
//! stage the updated prognostics are scanned for non-finite values and
//! non-positive layer thickness (`dp3d`), and after each full step the
//! advective CFL number is estimated from the max wind and the smallest
//! GLL gap. The scans are pure reads over the flat SoA arenas — no
//! allocation, no branches beyond the comparisons — so the zero-allocation
//! step gates run with guards enabled.
//!
//! Failures are typed ([`HealthError`]) so a resilient driver can abort
//! the step and restore a checkpoint; warnings feed a [`StepHealth`]
//! report and a degradation policy (halve `dt`, extra hyperviscosity
//! subcycles) instead of producing silent garbage.

use crate::hypervis::HypervisError;
use crate::remap::RemapError;
use swmpi::{Collectives, ReduceOp};

/// Stage index used for the post-tracer-advection scan (the five RK stages
/// are 0..=4), so guard failures name the phase that produced them.
pub const TRACER_STAGE: usize = 5;

/// Guard configuration. Disabled by default; [`HealthConfig::on`] gives
/// production-style settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Master switch: when false, guarded steps fall through to the plain
    /// step with zero scanning cost.
    pub enabled: bool,
    /// CFL number above which the next steps run degraded (halved `dt`).
    pub cfl_limit: f64,
    /// Smallest acceptable layer thickness (Pa); anything at or below is a
    /// hard error.
    pub min_dp3d: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig { enabled: false, cfl_limit: 1.0, min_dp3d: 0.0 }
    }
}

impl HealthConfig {
    /// Guards on with default thresholds.
    pub fn on() -> Self {
        HealthConfig { enabled: true, ..HealthConfig::default() }
    }
}

/// What to do when the CFL guard trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// How many subsequent steps run as two `dt/2` substeps.
    pub halve_dt_steps: usize,
    /// Extra hyperviscosity subcycles applied while degraded.
    pub extra_subcycles: usize,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy { halve_dt_steps: 2, extra_subcycles: 1 }
    }
}

/// Per-step health report. Plain `Copy` data so drivers can hold and
/// reduce it without allocating.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepHealth {
    /// Whether the guards actually ran for this step.
    pub checked: bool,
    /// Non-finite values seen across all scanned stages (0 on success —
    /// a nonzero count surfaces as [`HealthError::NonFinite`] instead).
    pub nonfinite: u64,
    /// Smallest layer thickness seen in any scanned stage.
    pub min_dp3d: f64,
    /// Largest horizontal wind speed after the step.
    pub max_wind: f64,
    /// Advective CFL estimate `max_wind * dt / min_dx` for the step.
    pub cfl: f64,
    /// True if this step ran under the degradation policy.
    pub degraded: bool,
}

impl StepHealth {
    /// Report for a step that ran without guards.
    pub fn unchecked() -> Self {
        StepHealth::default()
    }

    /// Fresh report for a guarded step (min-tracking fields start at the
    /// identity of their reduction).
    pub fn begin() -> Self {
        StepHealth { checked: true, min_dp3d: f64::INFINITY, ..StepHealth::default() }
    }

    /// Merge this rank's report into the global per-step verdict: every
    /// field reduces with Max (min_dp3d negated), so all ranks see one
    /// consistent worst case and take identical degradation decisions.
    /// Allocation-free (fixed-width `allreduce_into`).
    pub fn reduce_global(&self, coll: &Collectives) -> StepHealth {
        let contrib = [
            self.checked as u64 as f64,
            self.nonfinite as f64,
            -self.min_dp3d,
            self.max_wind,
            self.cfl,
            self.degraded as u64 as f64,
        ];
        let mut out = [0.0; 6];
        coll.allreduce_into(&contrib, ReduceOp::Max, &mut out);
        StepHealth {
            checked: out[0] > 0.0,
            nonfinite: out[1] as u64,
            min_dp3d: -out[2],
            max_wind: out[3],
            cfl: out[4],
            degraded: out[5] > 0.0,
        }
    }
}

/// Typed guard failure — the step's output is unusable and must not be
/// committed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthError {
    /// NaN or infinity in a prognostic field after an RK stage.
    NonFinite {
        /// RK stage index (0-based) that produced the value.
        stage: usize,
        /// How many non-finite values the scan saw.
        count: u64,
    },
    /// Layer thickness at or below the configured floor.
    ThinLayer {
        /// RK stage index (0-based).
        stage: usize,
        /// The offending minimum `dp3d`.
        min_dp3d: f64,
    },
    /// NaN or infinity in the tracer-mass arena after a scanned stage.
    TracerNonFinite {
        /// Stage index (see [`TRACER_STAGE`]).
        stage: usize,
        /// How many non-finite tracer values the scan saw.
        count: u64,
    },
    /// The vertical remap rejected a column (collapsed Lagrangian layer or
    /// mass-inconsistent totals).
    Remap(RemapError),
    /// The hyperviscosity plan rejected the step (corrupt element metric
    /// or non-finite step coefficient).
    Hypervis(HypervisError),
    /// A physics column scheme produced (or was handed) an unusable
    /// column. The dycore never raises this itself — the coupling layer
    /// converts its typed physics error into this variant so a bad column
    /// routes through the same rollback machinery as [`RemapError`]
    /// instead of being silently inserted next to healthy neighbors.
    Physics {
        /// Element index of the rejected column.
        elem: usize,
        /// GLL point index within the element.
        point: usize,
        /// What was wrong with the column.
        fault: PhysicsFault,
    },
}

/// What a physics column validation found (the dycore-side mirror of the
/// physics crate's typed error — kept payload-free so [`HealthError`] stays
/// `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicsFault {
    /// NaN or infinity in a column field.
    NonFinite,
    /// Moisture below the corruption threshold (beyond numerical noise).
    NegativeMoisture,
}

impl From<RemapError> for HealthError {
    fn from(e: RemapError) -> Self {
        HealthError::Remap(e)
    }
}

impl From<HypervisError> for HealthError {
    fn from(e: HypervisError) -> Self {
        HealthError::Hypervis(e)
    }
}

impl std::fmt::Display for HealthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthError::NonFinite { stage, count } => {
                write!(f, "{count} non-finite prognostic values after RK stage {stage}")
            }
            HealthError::ThinLayer { stage, min_dp3d } => {
                write!(f, "dp3d collapsed to {min_dp3d:.3e} Pa after RK stage {stage}")
            }
            HealthError::TracerNonFinite { stage, count } => {
                write!(f, "{count} non-finite tracer values after stage {stage}")
            }
            HealthError::Remap(e) => write!(f, "vertical remap rejected: {e}"),
            HealthError::Hypervis(e) => write!(f, "hyperviscosity rejected: {e}"),
            HealthError::Physics { elem, point, fault } => {
                let what = match fault {
                    PhysicsFault::NonFinite => "non-finite column",
                    PhysicsFault::NegativeMoisture => "negative moisture",
                };
                write!(f, "physics rejected element {elem} point {point}: {what}")
            }
        }
    }
}

impl std::error::Error for HealthError {}

/// Result of one stage scan.
#[derive(Debug, Clone, Copy)]
pub struct StageScan {
    /// Non-finite values across the scanned dynamics arenas.
    pub nonfinite: u64,
    /// Minimum `dp3d` seen.
    pub min_dp3d: f64,
    /// Maximum `u^2 + v^2` seen.
    pub max_speed2: f64,
    /// Non-finite values across the scanned tracer arena.
    pub tracer_nonfinite: u64,
}

/// Scan one stage's prognostics, *including* the tracer-mass arena — a NaN
/// born in `qdp` must trip the guards before DSS spreads it, exactly like
/// one in the dynamics fields. Pass an empty `qdp` for RK stages where the
/// tracers have not been touched. Pure reads, no allocation.
pub fn scan_stage(u: &[f64], v: &[f64], t: &[f64], dp3d: &[f64], qdp: &[f64]) -> StageScan {
    let mut nonfinite = 0u64;
    let mut min_dp = f64::INFINITY;
    let mut max_speed2 = 0.0f64;
    for ((&ui, &vi), (&ti, &di)) in u.iter().zip(v).zip(t.iter().zip(dp3d)) {
        if !(ui.is_finite() && vi.is_finite() && ti.is_finite() && di.is_finite()) {
            nonfinite += 1;
        }
        if di < min_dp {
            min_dp = di;
        }
        let s2 = ui * ui + vi * vi;
        if s2 > max_speed2 {
            max_speed2 = s2;
        }
    }
    let mut tracer_nonfinite = 0u64;
    for &qi in qdp {
        if !qi.is_finite() {
            tracer_nonfinite += 1;
        }
    }
    StageScan { nonfinite, min_dp3d: min_dp, max_speed2, tracer_nonfinite }
}

/// Fold one stage scan into the step report, failing fast on hard errors.
pub fn commit_scan(
    health: &mut StepHealth,
    cfg: &HealthConfig,
    stage: usize,
    scan: StageScan,
) -> Result<(), HealthError> {
    health.checked = true;
    if scan.nonfinite > 0 {
        health.nonfinite += scan.nonfinite;
        return Err(HealthError::NonFinite { stage, count: scan.nonfinite });
    }
    if scan.tracer_nonfinite > 0 {
        health.nonfinite += scan.tracer_nonfinite;
        return Err(HealthError::TracerNonFinite { stage, count: scan.tracer_nonfinite });
    }
    health.min_dp3d = health.min_dp3d.min(scan.min_dp3d);
    if scan.min_dp3d <= cfg.min_dp3d {
        return Err(HealthError::ThinLayer { stage, min_dp3d: scan.min_dp3d });
    }
    let wind = scan.max_speed2.sqrt();
    if wind > health.max_wind {
        health.max_wind = wind;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fields_pass() {
        let u = [1.0; 8];
        let v = [2.0; 8];
        let t = [300.0; 8];
        let dp = [50.0; 8];
        let scan = scan_stage(&u, &v, &t, &dp, &[]);
        assert_eq!(scan.nonfinite, 0);
        assert_eq!(scan.min_dp3d, 50.0);
        assert_eq!(scan.max_speed2, 5.0);
        let mut health = StepHealth { min_dp3d: f64::INFINITY, ..StepHealth::default() };
        commit_scan(&mut health, &HealthConfig::on(), 0, scan).expect("healthy");
        assert_eq!(health.max_wind, 5.0f64.sqrt());
        assert_eq!(health.min_dp3d, 50.0);
    }

    #[test]
    fn nan_is_a_hard_error() {
        let u = [1.0, f64::NAN, 3.0];
        let v = [0.0; 3];
        let t = [300.0; 3];
        let dp = [50.0; 3];
        let scan = scan_stage(&u, &v, &t, &dp, &[]);
        assert_eq!(scan.nonfinite, 1);
        let mut health = StepHealth::default();
        let err = commit_scan(&mut health, &HealthConfig::on(), 2, scan).unwrap_err();
        assert_eq!(err, HealthError::NonFinite { stage: 2, count: 1 });
    }

    #[test]
    fn collapsed_layer_is_a_hard_error() {
        let u = [0.0; 4];
        let v = [0.0; 4];
        let t = [300.0; 4];
        let dp = [50.0, -2.0, 50.0, 50.0];
        let scan = scan_stage(&u, &v, &t, &dp, &[]);
        let mut health = StepHealth { min_dp3d: f64::INFINITY, ..StepHealth::default() };
        let err = commit_scan(&mut health, &HealthConfig::on(), 1, scan).unwrap_err();
        assert_eq!(err, HealthError::ThinLayer { stage: 1, min_dp3d: -2.0 });
    }

    #[test]
    fn tracer_nan_is_a_hard_error() {
        let u = [1.0; 4];
        let v = [0.0; 4];
        let t = [300.0; 4];
        let dp = [50.0; 4];
        let qdp = [0.5, f64::NAN, 0.25, f64::INFINITY];
        let scan = scan_stage(&u, &v, &t, &dp, &qdp);
        assert_eq!(scan.nonfinite, 0);
        assert_eq!(scan.tracer_nonfinite, 2);
        let mut health = StepHealth::begin();
        let err = commit_scan(&mut health, &HealthConfig::on(), TRACER_STAGE, scan).unwrap_err();
        assert_eq!(err, HealthError::TracerNonFinite { stage: TRACER_STAGE, count: 2 });
        // The verdict reduce must carry the poison so every rank rolls back.
        assert_eq!(health.nonfinite, 2);
    }

    #[test]
    fn remap_error_converts_to_health_error() {
        let e = RemapError::NonPositiveSource { layer: 3, dp: -1.0 };
        let h: HealthError = e.into();
        assert_eq!(h, HealthError::Remap(e));
        assert!(format!("{h}").contains("non-positive source thickness"));
    }

    #[test]
    fn global_reduce_takes_worst_case() {
        use swmpi::run_ranks;
        let verdicts = run_ranks(3, |ctx| {
            let local = StepHealth {
                checked: true,
                nonfinite: 0,
                min_dp3d: 40.0 + ctx.rank() as f64,
                max_wind: 10.0 * (ctx.rank() + 1) as f64,
                cfl: 0.1 * (ctx.rank() + 1) as f64,
                degraded: ctx.rank() == 1,
            };
            local.reduce_global(&ctx.coll)
        });
        for g in verdicts {
            assert!(g.checked);
            assert_eq!(g.min_dp3d, 40.0);
            assert_eq!(g.max_wind, 30.0);
            assert!((g.cfl - 0.3).abs() < 1e-12);
            assert!(g.degraded);
        }
    }
}
