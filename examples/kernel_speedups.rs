//! Drive the simulated SW26010 directly: run one kernel in all four
//! implementation generations and print what the chip's PERF counters saw —
//! the miniature version of the paper's whole redesign story.
//!
//! ```text
//! cargo run --release -p swcam-core --example kernel_speedups
//! ```

use swcam_core::homme::kernels::{verify, KernelData, KernelId, Variant};

fn main() {
    let env = verify::KernelEnv::default();
    let kernel = KernelId::EulerStep;
    println!("kernel: {} (16 elements, 32 levels, 25 tracers)\n", kernel.name());

    let mut base = None;
    for variant in [Variant::Reference, Variant::Mpe, Variant::OpenAcc, Variant::Athread] {
        let mut data = KernelData::synth(16, 32, 25, 2024);
        let res = verify::run(kernel, variant, &mut data, &env);
        let t = res.seconds;
        let speedup = match base {
            None => {
                base = Some(t);
                1.0
            }
            Some(b) => b / t,
        };
        println!(
            "{:10}: {:10.3} ms  ({:5.2}x vs Intel) | flops: {:>12} | DMA in: {:>11} B | regcomm: {:>6} | shuffles: {:>5}",
            format!("{variant:?}"),
            t * 1e3,
            speedup,
            res.counters.flops(),
            res.counters.dma_bytes_in,
            res.counters.reg_sends,
            res.counters.shuffles,
        );
    }

    println!("\nThe OpenACC schedule re-reads the tracer-invariant arrays every");
    println!("iteration (Algorithm 1); the Athread redesign keeps them resident in");
    println!("the 64 KB LDM (Algorithm 2) and vectorizes the arithmetic — the");
    println!("paper's Section 7.3 in one run.");
}
