//! Sweep the full-machine scaling model over a user-chosen configuration.
//!
//! ```text
//! cargo run --release -p perfmodel --example scaling_sweep [ne] [qsize]
//! ```

use perfmodel::report::table;
use perfmodel::scaling::{figure_model, strong_scaling, HommeWorkload};
use perfmodel::Machine;

fn main() {
    let ne: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let qsize: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    println!("calibrating the machine model on the simulated SW26010...");
    let machine = Machine::taihulight();
    let model = figure_model(&machine);
    let ranks: Vec<usize> =
        (0..8).map(|i| 1024usize << i).filter(|&n| n <= 6 * ne * ne).collect();
    let points =
        strong_scaling(&model, HommeWorkload { ne, nlev: 128, qsize }, &ranks);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.nranks),
                format!("{}", p.cores),
                format!("{:.1}", p.elems_per_rank),
                format!("{:.4} s", p.step_seconds),
                format!("{:.3}", p.pflops),
                format!("{:.1}%", p.efficiency * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &format!("Strong scaling, ne{ne}, {qsize} tracers"),
            &["processes", "cores", "elem/proc", "s/step", "PFlops", "efficiency"],
            &rows
        )
    );
}
