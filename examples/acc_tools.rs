//! The paper's source-to-source refactoring tools at work: describe a
//! kernel's loop nest, let the loop-transformation and footprint-analysis
//! tools plan its CPE-cluster execution, and print the decisions.
//!
//! ```text
//! cargo run -p swcam-core --example acc_tools
//! ```

use swcam_core::swacc::{AccRegion, ArrayRef, Intent, Loop, LoopNest};

fn main() {
    // The euler_step nest of the paper's Algorithm 1.
    let euler = LoopNest::euler_step_example(64, 25, 128);
    let region = AccRegion::compile(euler).expect("parallelizable");
    println!("{}", region.explain());

    // A physics-style column loop: plenty of parallelism, tiny footprint.
    let physics = LoopNest {
        name: "kessler_microphysics".into(),
        loops: vec![Loop::parallel("col", 1024), Loop::sequential("k", 30)],
        arrays: vec![
            ArrayRef {
                name: "t".into(),
                elem_bytes: 8,
                indexed_by: vec![0, 1],
                elems_per_point: 1,
                intent: Intent::InOut,
            },
            ArrayRef {
                name: "qv".into(),
                elem_bytes: 8,
                indexed_by: vec![0, 1],
                elems_per_point: 1,
                intent: Intent::InOut,
            },
            ArrayRef {
                name: "qc".into(),
                elem_bytes: 8,
                indexed_by: vec![0, 1],
                elems_per_point: 1,
                intent: Intent::InOut,
            },
        ],
        flops_per_point: 60,
    };
    let region = AccRegion::compile(physics).expect("parallelizable");
    println!("{}", region.explain());

    // A vertical scan: the case the directive approach cannot handle and
    // the paper solves with register communication (Section 7.4).
    let scan = LoopNest {
        name: "hydrostatic_integral".into(),
        loops: vec![Loop::sequential("k", 128)],
        arrays: vec![],
        flops_per_point: 3,
    };
    match AccRegion::compile(scan) {
        Ok(_) => unreachable!("a scan must not be parallelized naively"),
        Err(e) => println!("region `hydrostatic_integral`: REJECTED — {e}"),
    }
    println!("\n(the Athread redesign handles this case with the 3-stage");
    println!("register-communication scan; see homme::kernels::athread)");
}
