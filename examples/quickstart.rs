//! Quickstart: build a small moist model, run a few hours, read
//! diagnostics.
//!
//! ```text
//! cargo run --release -p swcam-core --example quickstart
//! ```

use swcam_core::{ModelConfig, SuiteChoice, Swcam};

fn main() {
    // An ne4 (750 km-class) aquaplanet with 8 levels and simple physics.
    let mut cfg = ModelConfig::for_ne(4);
    cfg.nlev = 8;
    cfg.suite = SuiteChoice::Simple;
    cfg.sst = 300.0;
    let mut model = Swcam::new(cfg);

    // Initialize: warm moist tropics, zonal jet.
    model.init_with(
        |_, _| cubesphere::P0,
        |lat, _lon, _k, pm| {
            let sigma = pm / cubesphere::P0;
            let t = (300.0 - 50.0 * (1.0 - sigma)) - 20.0 * lat.sin() * lat.sin();
            let qv = 0.015 * sigma.powi(3) * lat.cos();
            (10.0 * lat.cos(), 0.0, t, qv)
        },
    );

    println!("stepping 6 simulated hours (dt = {} s)...", model.dycore.cfg.dt);
    let steps = (6.0 * 3600.0 / model.dycore.cfg.dt) as usize;
    for s in 0..steps {
        model.step();
        if s % 4 == 0 {
            let ps = model.surface_pressure();
            let ps_min = ps.iter().cloned().fold(f64::MAX, f64::min);
            println!(
                "  t = {:5.2} h  max wind = {:6.2} m/s  min ps = {:8.0} Pa",
                model.time / 3600.0,
                model.max_surface_wind(),
                ps_min
            );
        }
    }

    let total_precip: f64 = model.precip_accum.iter().sum();
    println!("done: {:.2} simulated days", model.sim_days());
    println!("accumulated precipitation (domain sum): {:.3} kg/m^2", total_precip);
    let b = swcam_core::homme::budgets(&model.dycore, &model.state);
    println!("global budgets:");
    println!("  dry-air mass    {:.4e} kg (Earth's atmosphere ~ 5.2e18 kg)", b.dry_mass);
    println!("  total energy    {:.4e} J", b.total_energy);
    println!("  kinetic energy  {:.4e} J", b.kinetic_energy);
    println!("  vapour mass     {:.4e} kg", b.tracer_mass);
}
