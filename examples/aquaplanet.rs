//! Aquaplanet climate demo: the "full CAM-like" physics suite (gray
//! radiation + Betts–Miller convection + Kessler microphysics + surface
//! fluxes) over a uniform warm ocean, with history output and an ASCII
//! surface-temperature map — the configuration class behind the paper's
//! Figure-4 climatology.
//!
//! ```text
//! cargo run --release -p swcam-core --example aquaplanet [days]
//! ```

use cubesphere::{ascii_map, NPTS};
use swcam_core::{surface_temperature_raster, History, ModelConfig, SuiteChoice, Swcam};

fn main() {
    let days: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let mut cfg = ModelConfig::for_ne(3);
    cfg.nlev = 10;
    cfg.suite = SuiteChoice::Full;
    cfg.sst = 300.0;
    cfg.dt = 900.0;
    let mut model = Swcam::new(cfg);
    model.init_with(
        |_, _| cubesphere::P0,
        |lat, _lon, _k, pm| {
            let sigma = pm / cubesphere::P0;
            let t = (300.0 - 60.0 * (1.0 - sigma) - 25.0 * lat.sin() * lat.sin()).max(200.0);
            let qv = 0.016 * sigma.powi(3) * lat.cos().max(0.2);
            (6.0 * lat.cos(), 0.0, t, qv)
        },
    );

    let mut history = History::new();
    history.sample(&model);
    let steps_per_day = (86_400.0 / model.dycore.cfg.dt) as usize;
    println!("running {days} days of aquaplanet climate (ne3, full physics)...");
    for d in 0..(days * steps_per_day as f64) as usize {
        model.step();
        if d % (steps_per_day / 4).max(1) == 0 {
            history.sample(&model);
        }
    }
    history.sample(&model);

    println!("\ntime series (CSV):\n{}", history.to_csv());
    println!("dry-mass drift over the run: {:.2e} (relative)", history.mass_drift());

    let (_raster, vals) = surface_temperature_raster(&model, 18, 48);
    println!("surface temperature (north at top; darker = warmer):");
    println!("{}", ascii_map(&vals, 18, 48, " .:-=+*#%@"));

    let precip_total: f64 = model.precip_accum.iter().sum::<f64>()
        / (model.state.nelem() * NPTS) as f64;
    println!("mean accumulated precipitation: {precip_total:.2} kg/m^2");
}
