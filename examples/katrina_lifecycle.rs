//! The hurricane-Katrina experiment (paper Section 9) as a runnable
//! example: simulate the storm at 25 km-class effective resolution, track
//! it, and compare with the observed best track.
//!
//! ```text
//! cargo run --release -p katrina --example katrina_lifecycle [earth_hours]
//! ```

use katrina::{observed_position, run, KatrinaConfig, OBSERVED};

fn main() {
    let hours: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12.0);
    let mut cfg = KatrinaConfig::ne120_class();
    cfg.earth_hours = hours;
    println!(
        "ne{} on a 1/{:.1} planet = {:.0} km effective resolution; {hours} Earth-hours",
        cfg.ne,
        cfg.reduction,
        cfg.effective_resolution_km()
    );
    let result = run(cfg);
    println!("\n  hour |    observed      |    simulated     |  obs MSW | sim MSW");
    println!("  -----+------------------+------------------+----------+--------");
    for fix in &result.earth_track {
        let (olat, olon) = observed_position(fix.hours);
        let obs_msw = OBSERVED
            .iter()
            .min_by(|a, b| {
                (a.hours - fix.hours).abs().partial_cmp(&(b.hours - fix.hours).abs()).unwrap()
            })
            .map(|p| p.msw_kt)
            .unwrap_or(0.0);
        println!(
            "  {:4.0} | {:5.1}N {:6.1}W   | {:5.1}N {:6.1}W   | {:5.0} kt | {:4.0} kt",
            fix.hours, olat, -olon, fix.lat_deg, -fix.lon_deg, obs_msw, fix.msw_kt
        );
    }
    println!(
        "\npeak simulated MSW: {:.0} kt; min central pressure: {:.0} hPa",
        result.peak_msw_kt, result.min_ps_hpa
    );
    println!("(observed lifecycle peak: 145 kt / 902 hPa)");
}
